//! The WSMED mediator facade: import WSDL, pose SQL, execute plans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wsmed_netsim::SimConfig;
use wsmed_services::ServiceRegistry;
use wsmed_sql::CalculusExpr;
use wsmed_store::FunctionRegistry;

use crate::cache::{CachePolicy, CallCache};
use crate::catalog::OwfCatalog;
use crate::central::create_central_plan;
use crate::costs::{CostModel, PlannerStats};
use crate::exec::pool::{PoolPolicy, ProcessPool};
use crate::exec::ExecContext;
use crate::obs::{TraceLog, TracePolicy};
use crate::parallel::{parallel_level_count, parallelize, parallelize_adaptive, FanoutVector};
use crate::plan::{AdaptiveConfig, QueryPlan};
use crate::planner::{self, PlanExplanation, PlannerPolicy};
use crate::resilience::{AdmissionControl, BreakerTotals, Breakers, QuotaPolicy};
use crate::stats::ExecutionReport;
use crate::transport::{SimTransport, WsTransport};
use crate::CoreResult;

/// The default tenant name for executions posed without a session.
pub const DEFAULT_TENANT: &str = "default";

/// The mediator: owns the OWF catalog and the connection to the (simulated)
/// web-service world.
///
/// ```no_run
/// use std::sync::Arc;
/// use wsmed_core::Wsmed;
/// use wsmed_netsim::{Network, SimConfig};
/// use wsmed_services::{install_paper_services, Dataset, DatasetConfig};
///
/// let network = Network::new(SimConfig::new(0.001, 42));
/// let dataset = Arc::new(Dataset::generate(DatasetConfig::small()));
/// let registry = install_paper_services(network, dataset);
/// let mut wsmed = Wsmed::new(registry);
/// wsmed.import_all_wsdl().unwrap();
/// let report = wsmed
///     .run_parallel("select gs.State from GetAllStates gs", &vec![])
///     .unwrap_err(); // GetAllStates alone has nothing to parallelize
/// # let _ = report;
/// ```
pub struct Wsmed {
    transport: Arc<SimTransport>,
    owfs: OwfCatalog,
    sim: SimConfig,
    resilience: crate::resilience::ResiliencePolicy,
    dispatch: crate::transport::DispatchPolicy,
    batch: crate::transport::BatchPolicy,
    cache_policy: Option<CachePolicy>,
    /// The live cache instance for the current policy, shared by every
    /// execution. Busy-period semantics inside the cache clear per-run
    /// state on the idle→busy edge, so sequential runs under a
    /// non-cross-run policy still see a fresh cache while overlapping
    /// runs share entries and in-flight latches.
    cache: Option<Arc<CallCache>>,
    pool_policy: Option<PoolPolicy>,
    /// The warm process pool for the current policy; parked query
    /// processes live here between executions — and, since warm attach
    /// re-homes a parked subtree into the acquiring run's context, across
    /// concurrent queries too.
    pool: Option<Arc<ProcessPool>>,
    /// Mediator-global circuit-breaker table: every execution context
    /// shares it, so one query tripping a provider's breaker sheds load
    /// for all concurrent queries.
    breakers: Arc<Breakers>,
    /// Admission control: query-concurrency and per-tenant in-flight call
    /// quotas ([`QuotaPolicy`]; the default admits everything).
    admission: Arc<AdmissionControl>,
    /// Monotone query-id source for cross-query cache attribution
    /// (starts at 1; id 0 is the standalone-context sentinel).
    next_query_id: AtomicU64,
    trace_policy: TracePolicy,
    /// Planning policy for [`Wsmed::plan_query`] — interior-mutable so the
    /// shell (and concurrent sessions) can toggle it on a shared mediator.
    planner_policy: parking_lot::RwLock<PlannerPolicy>,
    /// Calibrated + learned provider statistics feeding the cost model:
    /// warm-started from the transport's provider profiles at WSDL import,
    /// refined from execution observations under a cost-based policy.
    planner_stats: Arc<PlannerStats>,
    /// Client-side cost model parameters (startup and default estimates).
    cost_model: CostModel,
    /// Mediator-global client-side replica router (`None` = direct calls).
    /// Shared across per-query contexts so the deterministic round-robin
    /// rotation stays coherent; interior-mutable so the shell can switch
    /// policies on a shared mediator.
    router: parking_lot::RwLock<Option<Arc<crate::router::Router>>>,
}

impl Wsmed {
    /// Creates a mediator over a service registry. The simulation config is
    /// taken from the registry's network.
    pub fn new(registry: ServiceRegistry) -> Self {
        let sim = registry.network().config().clone();
        Wsmed {
            transport: Arc::new(SimTransport::new(registry)),
            owfs: OwfCatalog::new(),
            sim,
            resilience: crate::resilience::ResiliencePolicy::default(),
            dispatch: crate::transport::DispatchPolicy::default(),
            batch: crate::transport::BatchPolicy::default(),
            cache_policy: None,
            cache: None,
            pool_policy: None,
            pool: None,
            breakers: Arc::new(Breakers::default()),
            admission: Arc::new(AdmissionControl::default()),
            next_query_id: AtomicU64::new(1),
            trace_policy: TracePolicy::default(),
            planner_policy: parking_lot::RwLock::new(PlannerPolicy::default()),
            planner_stats: PlannerStats::new(),
            cost_model: CostModel::default(),
            router: parking_lot::RwLock::new(None),
        }
    }

    /// Installs (or clears, with `None`) the client-side replica routing
    /// policy for subsequent executions. Routing only engages for OWFs
    /// whose provider was scaled out into a
    /// [`wsmed_netsim::ReplicaGroup`]; single-provider calls keep the
    /// direct path bit for bit.
    pub fn set_router_policy(&self, policy: Option<crate::router::RouterPolicy>) {
        *self.router.write() =
            policy.map(|policy| Arc::new(crate::router::Router::new(policy, self.sim.seed)));
    }

    /// The currently installed routing policy, if any.
    pub fn router_policy(&self) -> Option<crate::router::RouterPolicy> {
        self.router.read().as_ref().map(|r| r.policy())
    }

    /// Re-warms the planner's provider statistics from the transport's
    /// current profiles. Call after reshaping the replica topology
    /// ([`wsmed_netsim::Network::replicate`]) so the cost model prices
    /// fanout against the group's pooled effective capacity instead of
    /// the single seed provider's.
    pub fn reseed_profiles(&self) {
        for name in self.owfs.names() {
            if let Ok(owf) = self.owfs.get(name) {
                if let Some(profile) = self.transport.provider_profile(owf) {
                    self.planner_stats.seed_profile(&owf.name, profile);
                }
            }
        }
    }

    /// Installs the structured-trace policy for subsequent executions.
    /// Tracing is off by default; the disabled path costs one atomic load
    /// per hook site.
    pub fn set_trace_policy(&mut self, policy: TracePolicy) {
        self.trace_policy = policy;
    }

    /// The current structured-trace policy.
    pub fn trace_policy(&self) -> TracePolicy {
        self.trace_policy
    }

    /// Installs the planning policy used by [`Wsmed::plan_query`] and
    /// [`Wsmed::run_planned`]. The default ([`PlannerPolicy::Heuristic`])
    /// reproduces the paper's plans exactly; takes `&self` so the shell and
    /// concurrent sessions can toggle it on a shared mediator.
    pub fn set_planner_policy(&self, policy: PlannerPolicy) {
        *self.planner_policy.write() = policy;
    }

    /// The current planning policy.
    pub fn planner_policy(&self) -> PlannerPolicy {
        *self.planner_policy.read()
    }

    /// The mediator's provider-statistics store: calibrated profiles seeded
    /// at WSDL import plus per-operator observations harvested from runs
    /// executed under a cost-based policy.
    pub fn planner_stats(&self) -> &Arc<PlannerStats> {
        &self.planner_stats
    }

    /// The client-side cost model the planner estimates with.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Installs the admission-control quota policy (max concurrent
    /// queries, global and per-tenant in-flight call budgets). Takes
    /// effect for subsequent admissions; work already admitted keeps its
    /// reservations.
    pub fn set_quota_policy(&self, policy: QuotaPolicy) {
        self.admission.set_policy(policy);
    }

    /// The mediator's admission controller, for quota inspection
    /// ([`AdmissionControl::stats`]).
    pub fn admission(&self) -> &Arc<AdmissionControl> {
        &self.admission
    }

    /// Lifetime transition totals of the mediator-global breaker table.
    pub fn breaker_totals(&self) -> BreakerTotals {
        self.breakers.totals()
    }

    /// Enables the warm process pool with the default [`PoolPolicy`]:
    /// idle query processes are parked at end of run and reused (plan
    /// function already installed — no modeled startup or plan-ship cost)
    /// by later executions of the same plan function. A thin wrapper over
    /// [`Wsmed::set_pool_policy`].
    pub fn enable_process_pool(&mut self, enabled: bool) {
        self.set_pool_policy(enabled.then(PoolPolicy::default));
    }

    /// Installs a process-pool policy (`None` removes the pool and joins
    /// any parked processes). Note that a policy with `enabled: false`
    /// still installs a pool — nothing parks and every spawn is cold, but
    /// cold spawns are counted in [`crate::ExecutionReport::pool`], which
    /// is what the warm-vs-cold ablation baseline measures.
    pub fn set_pool_policy(&mut self, policy: Option<PoolPolicy>) {
        self.pool_policy = policy;
        // A policy change rebuilds the pool: parked processes of the old
        // pool are joined.
        self.pool = policy.map(|p| Arc::new(ProcessPool::new(p, self.sim.time_scale)));
    }

    /// The installed pool policy, if any.
    pub fn pool_policy(&self) -> Option<PoolPolicy> {
        self.pool_policy
    }

    /// The live process pool, if one is installed — for inspecting
    /// [`ProcessPool::stats`] and the parked-process census across runs.
    pub fn process_pool(&self) -> Option<&Arc<ProcessPool>> {
        self.pool.as_ref()
    }

    /// Joins every parked process and drops the warm execution context.
    /// Called when the OWF catalog changes: warm children compiled their
    /// plan functions against the old catalog.
    fn invalidate_warm_state(&mut self) {
        if let Some(pool) = &self.pool {
            pool.clear();
        }
    }

    /// Enables memoization of web service calls with the default
    /// [`CachePolicy`] (per-run scope, 16 shards, single-flight dedup):
    /// repeated calls with identical arguments are answered from memory
    /// (sound for side-effect-free data providing services). A thin
    /// wrapper over [`Wsmed::set_cache_policy`].
    pub fn enable_call_cache(&mut self, enabled: bool) {
        self.set_cache_policy(enabled.then(CachePolicy::default));
    }

    /// Installs a call-cache policy (`None` disables caching). With
    /// [`CachePolicy::cross_run`] the cache instance lives on the
    /// mediator and later queries reuse earlier answers; otherwise a
    /// fresh instance is built per execution.
    pub fn set_cache_policy(&mut self, policy: Option<CachePolicy>) {
        self.cache_policy = policy;
        self.cache = policy.map(|p| Arc::new(CallCache::new(p, self.sim.time_scale)));
    }

    /// The installed cache policy, if any.
    pub fn cache_policy(&self) -> Option<CachePolicy> {
        self.cache_policy
    }

    /// The live cache instance, if caching is enabled — for inspecting
    /// [`CallCache::stats`] and resident entries across runs.
    pub fn call_cache(&self) -> Option<&Arc<CallCache>> {
        self.cache.as_ref()
    }

    /// The cache instance an execution should use. Always the mediator's
    /// shared instance: the cache's busy-period accounting clears per-run
    /// state (and, under a non-cross-run policy, resident entries) when a
    /// run begins with no other run active, so sequential runs keep the
    /// old per-run semantics while concurrent runs share entries and
    /// single-flight latches.
    fn cache_for_run(&self) -> Option<Arc<CallCache>> {
        self.cache.clone()
    }

    /// Sets the `FF_APPLYP` parameter dispatch policy for subsequent
    /// executions (the ablation knob; defaults to first-finished).
    pub fn set_dispatch_policy(&mut self, policy: crate::transport::DispatchPolicy) {
        self.dispatch = policy;
    }

    /// Sets the tuple-shipping batch policy for subsequent executions
    /// (vectorized `Call`/`ResultBatch` frames; the default of one tuple
    /// per frame reproduces the paper's streaming semantics exactly).
    pub fn set_batch_policy(&mut self, policy: crate::transport::BatchPolicy) {
        self.batch = policy;
    }

    /// Sets the retry policy used for transient web-service faults on all
    /// subsequent executions. Compatibility shim over
    /// [`set_resilience_policy`](Self::set_resilience_policy): overwrites
    /// the attempt count and backoff base while leaving any richer
    /// resilience knobs (deadline, breaker, hedging, failure mode) as
    /// previously configured.
    pub fn set_retry_policy(&mut self, policy: crate::transport::RetryPolicy) {
        self.resilience.max_attempts = policy.max_attempts.max(1);
        self.resilience.backoff_model_secs = policy.backoff_model_secs;
        self.resilience.backoff_multiplier = 1.0;
        self.resilience.backoff_jitter_frac = 0.0;
    }

    /// Sets the full resilience policy (retries with backoff and jitter,
    /// per-call deadline, circuit breaker, hedging, failure mode) for all
    /// subsequent executions.
    pub fn set_resilience_policy(&mut self, policy: crate::resilience::ResiliencePolicy) {
        self.resilience = policy;
    }

    /// The currently configured resilience policy.
    pub fn resilience_policy(&self) -> crate::resilience::ResiliencePolicy {
        self.resilience
    }

    /// Sets only the failure mode (abort vs partial degradation), leaving
    /// the rest of the resilience policy untouched.
    pub fn set_failure_mode(&mut self, mode: crate::resilience::FailureMode) {
        self.resilience.failure_mode = mode;
    }

    /// Imports one WSDL document by URI, generating OWFs for its
    /// operations. Returns the generated OWF (= view) names.
    pub fn import_wsdl(&mut self, wsdl_uri: &str) -> CoreResult<Vec<String>> {
        let xml = self.transport.registry().wsdl_xml(wsdl_uri)?;
        let doc = wsmed_wsdl::parse_wsdl(&xml)?;
        let names = self.owfs.import(&doc, wsdl_uri)?;
        // Warm-start the planner's provider statistics from the transport's
        // calibrated profiles (latency model + capacity) for the new OWFs.
        for name in &names {
            if let Ok(owf) = self.owfs.get(name) {
                if let Some(profile) = self.transport.provider_profile(owf) {
                    self.planner_stats.seed_profile(&owf.name, profile);
                }
            }
        }
        // Warm processes hold plans compiled against the old catalog.
        self.invalidate_warm_state();
        Ok(names)
    }

    /// Imports every WSDL the registry knows about.
    pub fn import_all_wsdl(&mut self) -> CoreResult<Vec<String>> {
        let uris: Vec<String> = self
            .transport
            .registry()
            .wsdl_uris()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut names = Vec::new();
        for uri in uris {
            names.extend(self.import_wsdl(&uri)?);
        }
        Ok(names)
    }

    /// The imported OWF names, sorted.
    pub fn owf_names(&self) -> Vec<&str> {
        self.owfs.names()
    }

    /// The OWF catalog.
    pub fn owfs(&self) -> &OwfCatalog {
        &self.owfs
    }

    /// The service registry (for metrics and fault injection in tests).
    pub fn registry(&self) -> &ServiceRegistry {
        self.transport.registry()
    }

    /// Generates the calculus expression for a query (paper §IV).
    pub fn calculus(&self, sql: &str) -> CoreResult<CalculusExpr> {
        let stmt = wsmed_sql::parse_select(sql)?;
        let catalog = self.owfs.sql_catalog();
        Ok(wsmed_sql::generate_calculus(&stmt, &catalog)?)
    }

    /// Compiles the naïve central plan (Fig. 6 / Fig. 10).
    pub fn compile_central(&self, sql: &str) -> CoreResult<QueryPlan> {
        let calc = self.calculus(sql)?;
        create_central_plan(&calc, &self.owfs, &FunctionRegistry::with_builtins())
    }

    /// Number of parallelizable levels in a query — the length the fanout
    /// vector must have.
    pub fn parallel_levels(&self, sql: &str) -> CoreResult<usize> {
        Ok(parallel_level_count(&self.compile_central(sql)?))
    }

    /// Compiles a manually parallelized plan with the given fanout vector
    /// (Fig. 9 / Fig. 13).
    pub fn compile_parallel(&self, sql: &str, fanouts: &FanoutVector) -> CoreResult<QueryPlan> {
        parallelize(&self.compile_central(sql)?, fanouts)
    }

    /// Compiles a parallel plan *without* the parameter-projection
    /// optimization (full prefix tuples are shipped). For the shipping-cost
    /// ablation; results are identical to [`Wsmed::compile_parallel`].
    pub fn compile_parallel_unprojected(
        &self,
        sql: &str,
        fanouts: &FanoutVector,
    ) -> CoreResult<QueryPlan> {
        crate::parallel::parallelize_unprojected(&self.compile_central(sql)?, fanouts)
    }

    /// Compiles an adaptive plan using `AFF_APPLYP` (§V.A).
    pub fn compile_adaptive(&self, sql: &str, config: &AdaptiveConfig) -> CoreResult<QueryPlan> {
        parallelize_adaptive(&self.compile_central(sql)?, config)
    }

    /// Plans a query under the installed [`PlannerPolicy`] and returns the
    /// plan together with the planner's decision record.
    ///
    /// Under [`PlannerPolicy::Heuristic`] this is byte-identical to
    /// [`Wsmed::compile_parallel`] with a fanout vector of 2s. Under
    /// [`PlannerPolicy::CostBased`] the planner searches binding-valid join
    /// orderings, section merges, and fanouts for the estimated-makespan
    /// argmin; with `prune: true` it additionally annotates plan functions
    /// with learned empty-parameter drop lists (semi-join pruning).
    pub fn plan_query_explained(&self, sql: &str) -> CoreResult<(QueryPlan, PlanExplanation)> {
        let policy = self.planner_policy();
        let calc = self.calculus(sql)?;
        let planned = planner::plan_with_policy(
            policy,
            &calc,
            &self.owfs,
            &FunctionRegistry::with_builtins(),
            &self.planner_stats,
            &self.cost_model,
        )?;
        let mut plan = planned.parallel;
        let mut explanation = planned.explanation;
        if let PlannerPolicy::CostBased { prune: true } = policy {
            explanation.prune_sections = planner::annotate_prune(&mut plan, &self.planner_stats);
        }
        Ok((plan, explanation))
    }

    /// Plans a query under the installed [`PlannerPolicy`]; see
    /// [`Wsmed::plan_query_explained`].
    pub fn plan_query(&self, sql: &str) -> CoreResult<QueryPlan> {
        Ok(self.plan_query_explained(sql)?.0)
    }

    /// The planner's decision record for a query — join order, section
    /// splits, per-level estimated cost, and pushed-down semi-join filters —
    /// without executing anything.
    pub fn plan_explain(&self, sql: &str) -> CoreResult<PlanExplanation> {
        Ok(self.plan_query_explained(sql)?.1)
    }

    /// Compile + execute under the installed [`PlannerPolicy`].
    pub fn run_planned(&self, sql: &str) -> CoreResult<ExecutionReport> {
        let plan = self.plan_query(sql)?;
        self.execute(&plan)
    }

    /// Executes any compiled plan as the coordinator, attributed to the
    /// default tenant. Takes `&self`: concurrent executions from many
    /// threads over one mediator are supported and share the call cache,
    /// process pool, breaker table, and admission controller.
    pub fn execute(&self, plan: &QueryPlan) -> CoreResult<ExecutionReport> {
        self.execute_for(DEFAULT_TENANT, plan)
    }

    /// Executes any compiled plan on behalf of `tenant`. The run is gated
    /// by the mediator's [`QuotaPolicy`]: over-quota executions fail fast
    /// with [`crate::CoreError::Admission`] without compiling a context.
    pub fn execute_for(&self, tenant: &str, plan: &QueryPlan) -> CoreResult<ExecutionReport> {
        self.execute_traced_for(tenant, plan).0
    }

    /// Executes a plan as the default tenant, returning the run's trace log
    /// alongside the result — also when the run itself failed, so failed
    /// runs can be post-mortemed (successful runs additionally surface the
    /// same log on [`ExecutionReport::trace`]).
    pub fn execute_traced(
        &self,
        plan: &QueryPlan,
    ) -> (CoreResult<ExecutionReport>, Option<Arc<TraceLog>>) {
        self.execute_traced_for(DEFAULT_TENANT, plan)
    }

    /// Executes a plan on behalf of `tenant`, returning the run's trace log
    /// alongside the result (see [`Wsmed::execute_traced`]). Unlike the
    /// removed mediator-global `last_trace` stash, the returned log belongs
    /// to *this* run — nothing races it under concurrent executions.
    pub fn execute_traced_for(
        &self,
        tenant: &str,
        plan: &QueryPlan,
    ) -> (CoreResult<ExecutionReport>, Option<Arc<TraceLog>>) {
        let _guard = match self.admission.admit_query(tenant) {
            Ok(guard) => guard,
            Err(e) => return (Err(e), None),
        };
        let ctx = self.context_for_run();
        ctx.set_query_id(self.next_query_id.fetch_add(1, Ordering::Relaxed));
        ctx.set_resilience_policy(self.resilience);
        ctx.set_dispatch_policy(self.dispatch);
        ctx.set_batch_policy(self.batch);
        ctx.install_call_cache(self.cache_for_run());
        ctx.install_breakers(Arc::clone(&self.breakers));
        ctx.install_admission(Some(self.admission.gate(tenant)));
        ctx.install_router(self.router.read().clone());
        ctx.set_trace_policy(self.trace_policy);
        // Under a cost-based policy, harvest per-operator latencies,
        // cardinalities, and empty-parameter sets into the planner's stats
        // so later plans of the same shapes improve.
        let observing = matches!(self.planner_policy(), PlannerPolicy::CostBased { .. });
        ctx.install_planner_obs(observing.then(|| Arc::clone(&self.planner_stats)));
        let result = ctx.run_plan(plan);
        let trace = ctx.trace_handle();
        (result, trace)
    }

    /// Executes a plan on behalf of `tenant`, attributing every terminal
    /// outcome to a recorded arrival instant — the open-loop hookpoint.
    ///
    /// Closed-loop timing starts the clock when execution starts; under
    /// load, that hides queueing delay. Here the caller passes the moment
    /// the query *arrived* (which may lie in the past if the dispatcher
    /// lagged), and the outcome carries wall time from that arrival to the
    /// terminal event:
    ///
    /// * admission rejection ([`crate::CoreError::Admission`], from the
    ///   query quota up front or a call quota mid-run) terminates as
    ///   [`ArrivalOutcome::Shed`] with an arrival→reject latency — shed
    ///   work is *never* reported as a completion;
    /// * any other error terminates as [`ArrivalOutcome::Failed`];
    /// * success terminates as [`ArrivalOutcome::Completed`] with the
    ///   arrival→last-row latency next to the report's own run-scoped
    ///   [`ExecutionReport::wall`].
    pub fn execute_arrival_for(
        &self,
        tenant: &str,
        plan: &QueryPlan,
        arrival: std::time::Instant,
    ) -> ArrivalOutcome {
        let (result, _) = self.execute_traced_for(tenant, plan);
        let latency_wall = arrival.elapsed();
        match result {
            Ok(report) => ArrivalOutcome::Completed {
                report: Box::new(report),
                latency_wall,
            },
            Err(crate::CoreError::Admission { reason, .. }) => ArrivalOutcome::Shed {
                latency_wall,
                reason,
            },
            Err(error) => ArrivalOutcome::Failed {
                latency_wall,
                error,
            },
        }
    }

    /// The execution context for one run: always fresh. Warm pool
    /// processes re-home into the acquiring run's context on attach, so
    /// no persistent context is needed for pooling.
    fn context_for_run(&self) -> Arc<ExecContext> {
        let ctx = self.fresh_context();
        if let Some(pool) = &self.pool {
            ctx.install_process_pool(Some(pool));
        }
        ctx
    }

    fn fresh_context(&self) -> Arc<ExecContext> {
        ExecContext::new(
            Arc::clone(&self.transport) as Arc<dyn crate::transport::WsTransport>,
            Arc::new(self.owfs.clone()),
            self.sim.clone(),
        )
    }

    /// Compile + execute the central plan.
    pub fn run_central(&self, sql: &str) -> CoreResult<ExecutionReport> {
        let plan = self.compile_central(sql)?;
        self.execute(&plan)
    }

    /// Compile + execute with the WSQ/DSQ-style baseline (§VI): level-at-a-
    /// time materialization with unbounded asynchronous calls per level.
    /// Returns only the rows (the baseline has no process tree to report).
    pub fn run_materialized(&self, sql: &str) -> CoreResult<Vec<wsmed_store::Tuple>> {
        let plan = self.compile_central(sql)?;
        let ctx = self.fresh_context(); // no process tree: nothing to pool
        ctx.set_resilience_policy(self.resilience);
        ctx.install_call_cache(self.cache_for_run());
        crate::materialized::run_materialized(&ctx, &plan)
    }

    /// Compile + execute with explicit fanouts.
    pub fn run_parallel(&self, sql: &str, fanouts: &FanoutVector) -> CoreResult<ExecutionReport> {
        let plan = self.compile_parallel(sql, fanouts)?;
        self.execute(&plan)
    }

    /// Compile + execute adaptively.
    pub fn run_adaptive(&self, sql: &str, config: &AdaptiveConfig) -> CoreResult<ExecutionReport> {
        let plan = self.compile_adaptive(sql, config)?;
        self.execute(&plan)
    }

    /// Opens a tenant-scoped handle for concurrent execution: every run
    /// posed through the session is admitted and metered under `tenant`.
    pub fn session(self: &Arc<Self>, tenant: &str) -> QuerySession {
        QuerySession {
            med: Arc::clone(self),
            tenant: tenant.to_owned(),
        }
    }

    /// Human-readable compilation trace: calculus, central plan and (when a
    /// fanout vector is given) the parallel plan.
    pub fn explain(&self, sql: &str, fanouts: Option<&FanoutVector>) -> CoreResult<String> {
        use std::fmt::Write as _;
        let mut out = String::new();
        let calc = self.calculus(sql)?;
        writeln!(out, "== calculus ==\n{calc}\n").expect("write to string");
        let central = self.compile_central(sql)?;
        writeln!(out, "== central plan ==\n{central}").expect("write to string");
        if let Some(fanouts) = fanouts {
            let parallel = parallelize(&central, fanouts)?;
            writeln!(out, "== parallel plan (fanouts {fanouts:?}) ==\n{parallel}")
                .expect("write to string");
        }
        Ok(out)
    }
}

/// Terminal outcome of an arrival-attributed execution
/// ([`Wsmed::execute_arrival_for`]). Every variant carries the wall time
/// from the recorded arrival instant to the terminal event, so open-loop
/// harnesses measure queueing delay plus service time, and a shed query
/// contributes an (arrival → reject) sample instead of vanishing.
#[derive(Debug)]
pub enum ArrivalOutcome {
    /// The query ran to completion.
    Completed {
        /// The run's report (boxed: the variant dwarfs the others).
        report: Box<ExecutionReport>,
        /// Arrival → last result row, in wall time.
        latency_wall: std::time::Duration,
    },
    /// Admission control shed the query (query quota at admission, or a
    /// call quota mid-run). Counted in
    /// [`crate::resilience::AdmissionStats`], never as goodput.
    Shed {
        /// Arrival → rejection, in wall time.
        latency_wall: std::time::Duration,
        /// The admission controller's reason string.
        reason: String,
    },
    /// The query failed for a non-admission reason.
    Failed {
        /// Arrival → failure, in wall time.
        latency_wall: std::time::Duration,
        /// The terminal error.
        error: crate::CoreError,
    },
}

impl ArrivalOutcome {
    /// The arrival→terminal wall latency, whatever the outcome.
    pub fn latency_wall(&self) -> std::time::Duration {
        match self {
            ArrivalOutcome::Completed { latency_wall, .. }
            | ArrivalOutcome::Shed { latency_wall, .. }
            | ArrivalOutcome::Failed { latency_wall, .. } => *latency_wall,
        }
    }

    /// The completed report, if the query ran to completion.
    pub fn report(&self) -> Option<&ExecutionReport> {
        match self {
            ArrivalOutcome::Completed { report, .. } => Some(report),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Wsmed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wsmed")
            .field("owfs", &self.owfs.names())
            .finish()
    }
}

/// A tenant-scoped execution handle over a shared mediator, cheap to
/// clone and send to worker threads. All sessions over one [`Wsmed`]
/// share its call cache, process pool, breaker table, and admission
/// controller; each execution still gets its own [`ExecutionReport`]
/// with per-query attribution.
#[derive(Clone)]
pub struct QuerySession {
    med: Arc<Wsmed>,
    tenant: String,
}

impl QuerySession {
    /// The tenant this session executes as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The shared mediator behind this session.
    pub fn mediator(&self) -> &Arc<Wsmed> {
        &self.med
    }

    /// Executes a compiled plan as this session's tenant
    /// (see [`Wsmed::execute_for`]).
    pub fn execute(&self, plan: &QueryPlan) -> CoreResult<ExecutionReport> {
        self.med.execute_for(&self.tenant, plan)
    }

    /// Compile + execute the central plan as this session's tenant.
    pub fn run_central(&self, sql: &str) -> CoreResult<ExecutionReport> {
        let plan = self.med.compile_central(sql)?;
        self.execute(&plan)
    }

    /// Compile + execute with explicit fanouts as this session's tenant.
    pub fn run_parallel(&self, sql: &str, fanouts: &FanoutVector) -> CoreResult<ExecutionReport> {
        let plan = self.med.compile_parallel(sql, fanouts)?;
        self.execute(&plan)
    }

    /// Compile + execute adaptively as this session's tenant.
    pub fn run_adaptive(&self, sql: &str, config: &AdaptiveConfig) -> CoreResult<ExecutionReport> {
        let plan = self.med.compile_adaptive(sql, config)?;
        self.execute(&plan)
    }
}

impl std::fmt::Debug for QuerySession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySession")
            .field("tenant", &self.tenant)
            .finish()
    }
}

/// The paper's experimental workload: queries, setup helper, and the SQL
/// text of Fig. 1 and Fig. 3.
pub mod paper {
    use super::*;
    use wsmed_netsim::Network;
    use wsmed_services::{install_paper_services, Dataset, DatasetConfig};

    /// Query1 (paper Fig. 1): places within 15 km of each Atlanta.
    pub const QUERY1_SQL: &str = "\
        Select gl.placename, gl.state \
        From GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl \
        Where gs.State=gp.state and gp.distance=15.0 \
          and gp.placeTypeToFind='City' and gp.place='Atlanta' \
          and gl.placeName=gp.ToPlace+', '+gp.ToState \
          and gl.MaxItems=100 and gl.imagePresence='true'";

    /// Query2 (paper Fig. 3): the zip code and state of 'USAF Academy'.
    pub const QUERY2_SQL: &str = "\
        select gp.ToState, gp.zip \
        From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
        Where gs.State=gi.USState and gi.GetInfoByStateResult=gc.zipstr \
          and gc.zipcode=gp.zip and gp.ToPlace='USAF Academy'";

    /// Query3 (this repository's extension workload): every delayed
    /// departure in the country — a *three*-level dependent chain
    /// (`GetAirports` → `GetDepartures` → `GetFlightStatus`), exercising
    /// §VII's "any number of dependent joins" against simulated services.
    pub const QUERY3_SQL: &str = "\
        select d.FlightNo, a.Code, fs.DelayMinutes \
        From GetAllStates gs, GetAirports a, GetDepartures d, GetFlightStatus fs \
        Where gs.State = a.stateAbbr and a.Code = d.airportCode \
          and d.FlightNo = fs.flightNo and fs.Status = 'Delayed' \
        order by d.FlightNo";

    /// A fully wired mediator over the paper's four simulated services.
    pub struct PaperSetup {
        /// The mediator, with all four WSDLs imported.
        pub wsmed: Wsmed,
        /// The simulated network (for metrics and fault injection).
        pub network: Arc<Network>,
        /// The synthetic dataset behind the services.
        pub dataset: Arc<Dataset>,
    }

    /// Builds the paper's world: network at `time_scale`, the four
    /// services over `dataset_config`, WSDLs imported.
    pub fn setup(time_scale: f64, dataset_config: DatasetConfig) -> PaperSetup {
        let network = Network::new(SimConfig::new(time_scale, 0x5EED_1CDE));
        let dataset = Arc::new(Dataset::generate(dataset_config));
        let registry = install_paper_services(Arc::clone(&network), Arc::clone(&dataset));
        let mut wsmed = Wsmed::new(registry);
        wsmed
            .import_all_wsdl()
            .expect("paper services import cleanly");
        PaperSetup {
            wsmed,
            network,
            dataset,
        }
    }
}
