//! Regenerates **Fig. 17**: Query2 execution time over fanout vectors
//! `{fo1, fo2}`.
//!
//! Paper findings this sweep must reproduce:
//! * best execution at `{4,3}` (1243.89 s), speedup ≈ 2 over the central
//!   plan (2412.95 s);
//! * the optimum is near-balanced and small — Query2's bottom-level
//!   provider (codebump ZipCodes) saturates at low concurrency, so extra
//!   processes stop helping much earlier than Query1.
//!
//! The full dataset issues > 5000 calls per run, so the default grid is
//! coarser than Fig. 16's; `--verbose` prints each cell as it lands.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin fig17_query2_sweep -- --full
//! ```

use wsmed_bench::{
    best_cell, compare, csv_row, csv_writer, print_matrix, run_central, run_parallel, HarnessOpts,
};
use wsmed_core::paper;
use wsmed_services::calibration;

fn main() {
    let opts = HarnessOpts::parse(0.0015, true);
    println!(
        "== Fig. 17: Query2 fanout sweep (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let setup = opts.setup();
    let (path, mut csv) = csv_writer("fig17_query2.csv", "fo1,fo2,processes,model_secs,rows");

    let central = run_central(&setup.wsmed, paper::QUERY2_SQL, opts.scale);
    println!(
        "central plan: {:.1} model-s (paper {:.1}), {} calls\n",
        central.model_secs,
        calibration::PAPER_Q2_CENTRAL_SECS,
        central.report.ws_calls
    );

    // A coarse grid over the same region as Fig. 17, N ≤ 60.
    let fo1s = [1usize, 2, 3, 4, 5, 6, 8, 10];
    let fo2s = [0usize, 1, 2, 3, 4, 6, 8];
    let mut rows = Vec::new();
    for fo1 in fo1s {
        for fo2 in fo2s {
            if fo1 + fo1 * fo2 > 60 {
                continue;
            }
            let t = run_parallel(&setup.wsmed, paper::QUERY2_SQL, &vec![fo1, fo2], opts.scale);
            assert_eq!(t.report.row_count(), 1, "{{{fo1},{fo2}}} lost USAF Academy");
            if opts.verbose {
                println!("  {{{fo1},{fo2}}}: {:.1} model-s", t.model_secs);
            }
            csv_row(
                &mut csv,
                &format!("{fo1},{fo2},{},{:.2},1", fo1 + fo1 * fo2, t.model_secs),
            );
            rows.push((fo1, fo2, t.model_secs));
        }
    }

    println!("execution time (model seconds), fo2 = 0 is the flat tree:");
    print_matrix(&rows);

    let (b1, b2, best) = best_cell(&rows);
    println!("\nbest cell: {{{b1},{b2}}} at {best:.1} model-s");
    compare("best parallel time", best, calibration::PAPER_Q2_BEST_SECS);
    compare(
        "speedup over central",
        central.model_secs / best,
        calibration::PAPER_Q2_CENTRAL_SECS / calibration::PAPER_Q2_BEST_SECS,
    );
    let (p1, p2) = calibration::PAPER_Q2_BEST_FANOUT;
    if let Some(paper_cell) = rows.iter().find(|r| r.0 == p1 && r.1 == p2) {
        println!(
            "paper's best cell {{{p1},{p2}}}: {:.1} model-s ({:.0}% of our best)",
            paper_cell.2,
            100.0 * best / paper_cell.2
        );
    }

    // Shape assertions.
    let tiny = rows
        .iter()
        .find(|r| r.0 == 1 && r.1 == 1)
        .expect("{1,1} in grid")
        .2;
    assert!(
        tiny > 1.5 * best,
        "{{1,1}} ({tiny:.1}s) should be far worse than {best:.1}s"
    );
    assert!(
        central.model_secs > 1.5 * best,
        "parallel must beat central: {:.1} vs {best:.1}",
        central.model_secs
    );
    assert!(
        (2..=6).contains(&b1) && (1..=6).contains(&b2),
        "optimum {{{b1},{b2}}} should be a small near-balanced cell"
    );
    println!("shape checks passed; CSV written to {}", path.display());
}
