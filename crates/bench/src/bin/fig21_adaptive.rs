//! Regenerates **Fig. 21**: `AFF_APPLYP` execution time for both queries
//! with `p ∈ {1..4}`, drop stage on/off, 25% threshold, compared to the
//! best manually specified process tree.
//!
//! Paper findings this harness must reproduce:
//! * the adaptive operator lands close to the best manual tree
//!   (paper: Query1 within 80%, Query2 within 96%, for p=2 / no drop);
//! * average fanouts converge near the manual optimum;
//! * dropping processes makes insignificant further changes.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin fig21_adaptive -- --full
//! ```

use wsmed_bench::{csv_row, csv_writer, run_adaptive, run_parallel, HarnessOpts};
use wsmed_core::{paper, AdaptiveConfig};
use wsmed_services::calibration;

fn main() {
    let opts = HarnessOpts::parse(0.002, true);
    println!(
        "== Fig. 21: AFF_APPLYP vs best manual tree (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let setup = opts.setup();
    let (path, mut csv) = csv_writer(
        "fig21_adaptive.csv",
        "query,p,drop,model_secs,best_manual_secs,pct_of_best,fo1_avg,fo2_avg,adds,drops",
    );

    let queries = [
        (
            "Query1",
            paper::QUERY1_SQL,
            calibration::PAPER_Q1_BEST_FANOUT,
        ),
        (
            "Query2",
            paper::QUERY2_SQL,
            calibration::PAPER_Q2_BEST_FANOUT,
        ),
    ];

    for (name, sql, (bf1, bf2)) in queries {
        let manual = run_parallel(&setup.wsmed, sql, &vec![bf1, bf2], opts.scale);
        println!(
            "\n{name}: best manual tree {{{bf1},{bf2}}} = {:.1} model-s",
            manual.model_secs
        );
        println!(
            "{:>4} {:>6} {:>12} {:>10} {:>14} {:>6} {:>6}",
            "p", "drop", "model-s", "% of best", "avg fanouts", "adds", "drops"
        );

        let mut best_seen = f64::INFINITY;
        for p in 1..=4usize {
            for drop_enabled in [false, true] {
                let config = AdaptiveConfig {
                    add_step: p,
                    drop_enabled,
                    threshold: calibration::PAPER_AFF_THRESHOLD,
                    ..Default::default()
                };
                let t = run_adaptive(&setup.wsmed, sql, &config, opts.scale);
                assert_eq!(
                    t.report.row_count(),
                    manual.report.row_count(),
                    "{name} adaptive p={p} lost tuples"
                );
                let pct = 100.0 * manual.model_secs / t.model_secs;
                let fo1 = t.report.tree.fanout_at(0).unwrap_or(0.0);
                let fo2 = t.report.tree.fanout_at(1).unwrap_or(0.0);
                println!(
                    "{:>4} {:>6} {:>12.1} {:>9.0}% {:>8.1}/{:<5.1} {:>6} {:>6}",
                    p,
                    drop_enabled,
                    t.model_secs,
                    pct,
                    fo1,
                    fo2,
                    t.report.tree.adds,
                    t.report.tree.drops
                );
                csv_row(
                    &mut csv,
                    &format!(
                        "{name},{p},{drop_enabled},{:.2},{:.2},{pct:.1},{fo1:.2},{fo2:.2},{},{}",
                        t.model_secs, manual.model_secs, t.report.tree.adds, t.report.tree.drops
                    ),
                );
                best_seen = best_seen.min(t.model_secs);
                if drop_enabled {
                    assert!(
                        t.report.tree.drops > 0 || t.report.tree.adds <= 4,
                        "{name} p={p}: drop stage enabled but tree only grew \
                         (adds {}, drops {})",
                        t.report.tree.adds,
                        t.report.tree.drops
                    );
                }
            }
        }
        // The paper's headline claim: adaptive execution comes close to the
        // best manual tree (80–96%). Accept ≥ 60% to absorb simulator noise.
        let best_pct = 100.0 * manual.model_secs / best_seen;
        println!("best adaptive configuration reaches {best_pct:.0}% of best manual");
        assert!(
            best_pct > 60.0,
            "{name}: adaptive should come close to manual (got {best_pct:.0}%)"
        );
    }
    println!("\nshape checks passed; CSV written to {}", path.display());
}
