//! Regenerates **Fig. 16**: Query1 execution time over fanout vectors
//! `{fo1, fo2}` with up to 60 query processes.
//!
//! Paper findings this sweep must reproduce:
//! * the fastest region sits at small, near-balanced fanouts;
//! * the best cell is `{5,4}` at 56.4 s — speedup 4.3 over the central
//!   plan's 244.8 s;
//! * tiny trees (`{1,1}`) are no better than the central plan, very wide
//!   trees degrade again.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin fig16_query1_sweep -- --full
//! ```

use wsmed_bench::{
    best_cell, compare, csv_row, csv_writer, fanout_grid, print_matrix, run_central, run_parallel,
    HarnessOpts,
};
use wsmed_core::paper;
use wsmed_services::calibration;

fn main() {
    let opts = HarnessOpts::parse(0.002, true);
    println!(
        "== Fig. 16: Query1 fanout sweep (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let setup = opts.setup();
    let (path, mut csv) = csv_writer("fig16_query1.csv", "fo1,fo2,processes,model_secs,rows");

    let central = run_central(&setup.wsmed, paper::QUERY1_SQL, opts.scale);
    println!(
        "central plan: {:.1} model-s (paper {:.1})\n",
        central.model_secs,
        calibration::PAPER_Q1_CENTRAL_SECS
    );

    let expected_rows = central.report.row_count();
    let mut rows = Vec::new();
    for (fo1, fo2) in fanout_grid(10, 10, 60) {
        let t = run_parallel(&setup.wsmed, paper::QUERY1_SQL, &vec![fo1, fo2], opts.scale);
        assert_eq!(
            t.report.row_count(),
            expected_rows,
            "{{{fo1},{fo2}}} lost result tuples"
        );
        if opts.verbose {
            println!("  {{{fo1},{fo2}}}: {:.1} model-s", t.model_secs);
        }
        csv_row(
            &mut csv,
            &format!(
                "{fo1},{fo2},{},{:.2},{}",
                fo1 + fo1 * fo2,
                t.model_secs,
                expected_rows
            ),
        );
        rows.push((fo1, fo2, t.model_secs));
    }

    println!("execution time (model seconds), fo2 = 0 is the flat tree:");
    print_matrix(&rows);

    let (b1, b2, best) = best_cell(&rows);
    println!("\nbest cell: {{{b1},{b2}}} at {best:.1} model-s");
    compare("best parallel time", best, calibration::PAPER_Q1_BEST_SECS);
    compare(
        "speedup over central",
        central.model_secs / best,
        calibration::PAPER_Q1_CENTRAL_SECS / calibration::PAPER_Q1_BEST_SECS,
    );
    let (p1, p2) = calibration::PAPER_Q1_BEST_FANOUT;
    let paper_cell = rows
        .iter()
        .find(|r| r.0 == p1 && r.1 == p2)
        .expect("paper's best cell is in the grid");
    println!(
        "paper's best cell {{{p1},{p2}}}: {:.1} model-s ({:.0}% of our best)",
        paper_cell.2,
        100.0 * best / paper_cell.2
    );

    // Shape assertions (the figure's qualitative claims).
    let tiny = rows
        .iter()
        .find(|r| r.0 == 1 && r.1 == 1)
        .expect("{1,1} in grid")
        .2;
    assert!(
        tiny > 2.0 * best,
        "{{1,1}} ({tiny:.1}s) should be far worse than the optimum ({best:.1}s)"
    );
    assert!(
        central.model_secs > 3.0 * best,
        "parallelization should win big: central {:.1}s vs best {best:.1}s",
        central.model_secs
    );
    assert!(
        (2..=8).contains(&b1) && (1..=8).contains(&b2),
        "optimum {{{b1},{b2}}} should be an interior near-balanced cell"
    );
    println!("shape checks passed; CSV written to {}", path.display());
}
