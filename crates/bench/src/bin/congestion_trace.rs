//! Exports the per-call latency time series behind the Fig. 16/17 story:
//! how the bottleneck provider's in-flight count and per-call latency
//! evolve under three strategies — central (sequential), WSMED's bounded
//! tree, and the WSQ/DSQ unbounded burst.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin congestion_trace
//! ```
//!
//! Produces `target/experiments/congestion_<strategy>.csv`, each row
//! `seq,operation,model_offset_secs,in_flight,model_latency`, ready to
//! plot. Offsets are deterministic model time (cumulative recorded
//! latency), so identically-seeded runs emit identical CSVs on any
//! machine and at any `--scale`, including 0.

use std::io::Write as _;

use wsmed_bench::HarnessOpts;
use wsmed_core::paper;
use wsmed_services::ZipCodesService;

fn main() {
    let opts = HarnessOpts::parse(0.002, false);
    println!(
        "== congestion traces at the ZipCodes provider (scale {}, {} dataset) ==\n",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    std::fs::create_dir_all("target/experiments").expect("create experiments dir");

    type Strategy = Box<dyn Fn(&paper::PaperSetup)>;
    let strategies: [(&str, Strategy); 3] = [
        (
            "central",
            Box::new(|s: &paper::PaperSetup| {
                s.wsmed.run_central(paper::QUERY2_SQL).expect("central");
            }),
        ),
        (
            "wsmed_tree",
            Box::new(|s: &paper::PaperSetup| {
                s.wsmed
                    .run_parallel(paper::QUERY2_SQL, &vec![4, 3])
                    .expect("tree");
            }),
        ),
        (
            "wsq_burst",
            Box::new(|s: &paper::PaperSetup| {
                s.wsmed.run_materialized(paper::QUERY2_SQL).expect("wsq");
            }),
        ),
    ];

    println!(
        "{:<12} {:>7} {:>14} {:>14} {:>12}",
        "strategy", "calls", "peak in-flight", "mean latency", "p95 latency"
    );
    for (name, run) in strategies {
        let setup = opts.setup();
        let provider = setup
            .network
            .provider(ZipCodesService::PROVIDER)
            .expect("zip");
        let trace = provider.start_trace(100_000);
        run(&setup);
        provider.stop_trace();

        let records = trace.records();
        let peak = records.iter().map(|r| r.in_flight).max().unwrap_or(0);
        let mut latencies: Vec<f64> = records.iter().map(|r| r.model_latency).collect();
        latencies.sort_by(f64::total_cmp);
        let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        let p95 = latencies
            .get((latencies.len() as f64 * 0.95) as usize)
            .copied()
            .unwrap_or(0.0);
        println!(
            "{name:<12} {:>7} {peak:>14} {mean:>14.2} {p95:>12.2}",
            records.len()
        );

        let path = format!("target/experiments/congestion_{name}.csv");
        let mut file = std::fs::File::create(&path).expect("create CSV");
        file.write_all(trace.to_csv().as_bytes())
            .expect("write CSV");
    }
    println!("\nCSV traces written to target/experiments/congestion_*.csv");
}
