//! Open-loop load ablation: the traffic harness poses a seeded,
//! Zipf-skewed query population at the mediator under three arrival
//! profiles (Poisson, diurnal, square-wave bursts) and two mediator
//! configurations, and gates on the latency percentiles:
//!
//! * **bare** — no call cache, no process pool, heuristic planner;
//! * **full** — cross-run single-flight cache, warm process pool,
//!   cost-based planner with semi-join pruning.
//!
//! Both arms run the *same* workload (same seed ⇒ byte-identical
//! transcript) under the same admission quota, so any difference in the
//! percentile table is the configuration's doing. In-binary asserts:
//!
//! * same-seed generation is byte-identical and same-seed quota-free
//!   replays produce identical deterministic projections;
//! * accounting sums exactly (injected = completed + shed + failed);
//! * at a positive time scale, `full` strictly beats `bare` on p95
//!   latency and on goodput at the fixed arrival rate.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin load_ablation -- --small
//! ```

use wsmed_bench::{csv_row, csv_writer, emit_bench_section};
use wsmed_core::{paper, CachePolicy, PlannerPolicy, QuotaPolicy, Wsmed};
use wsmed_services::DatasetConfig;
use wsmed_trafficgen::{
    replay, ArrivalProfile, LoadReport, SubsystemCounters, Workload, WorkloadSpec,
};

/// Tuned harness knobs for one invocation size.
struct Knobs {
    /// Wall seconds per model second.
    time_scale: f64,
    /// Run length, model seconds.
    duration: f64,
    /// Mean Poisson arrival rate, queries per model second.
    rate: f64,
    /// Concurrent-query quota both arms run under.
    quota: usize,
    /// Dataset behind the simulated services.
    dataset: DatasetConfig,
}

impl Knobs {
    fn parse() -> Knobs {
        let mut small = false;
        let mut scale_override = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--small" => small = true,
                "--full" => small = false,
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    scale_override = Some(v.parse::<f64>().expect("--scale parses as f64"));
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!(
                        "usage: load_ablation [--small|--full] [--scale <wall-s-per-model-s>]"
                    );
                    std::process::exit(2);
                }
            }
        }
        let mut knobs = if small {
            Knobs {
                time_scale: 0.002,
                duration: 30.0,
                rate: 1.2,
                quota: 4,
                dataset: DatasetConfig::tiny(),
            }
        } else {
            Knobs {
                time_scale: 0.005,
                duration: 60.0,
                rate: 1.5,
                quota: 6,
                dataset: DatasetConfig::small(),
            }
        };
        if let Some(s) = scale_override {
            knobs.time_scale = s;
        }
        knobs
    }

    fn profile(&self, name: &str) -> ArrivalProfile {
        match name {
            "poisson" => ArrivalProfile::Poisson { rate: self.rate },
            "diurnal" => ArrivalProfile::Diurnal {
                trough_rate: 0.3 * self.rate,
                peak_rate: 1.7 * self.rate,
                period_model_secs: self.duration / 2.0,
            },
            "square" => ArrivalProfile::SquareWave {
                quiet_rate: 0.4 * self.rate,
                burst_rate: 3.0 * self.rate,
                period_model_secs: self.duration / 4.0,
                burst_fraction: 0.25,
            },
            other => panic!("unknown profile {other}"),
        }
    }
}

/// Configures one mediator arm. `full` turns on every shared-infrastructure
/// subsystem; `bare` leaves the mediator as imported.
fn configure(med: &mut Wsmed, full: bool, quota: usize) {
    if full {
        med.set_cache_policy(Some(CachePolicy {
            cross_run: true,
            single_flight: true,
            ..Default::default()
        }));
        med.enable_process_pool(true);
        med.set_planner_policy(PlannerPolicy::CostBased { prune: true });
    }
    med.set_quota_policy(QuotaPolicy {
        max_concurrent_queries: Some(quota),
        ..Default::default()
    });
}

/// Runs one (config × workload) arm on a fresh mediator and reports it.
fn run_arm(config: &str, knobs: &Knobs, workload: &Workload) -> LoadReport {
    let mut setup = paper::setup(knobs.time_scale, knobs.dataset.clone());
    configure(&mut setup.wsmed, config == "full", knobs.quota);
    let before = SubsystemCounters::collect(&setup.wsmed, &setup.network);
    let outcomes = replay(&setup.wsmed, workload, knobs.time_scale).expect("replay runs");
    let after = SubsystemCounters::collect(&setup.wsmed, &setup.network);
    LoadReport::build(
        config,
        workload,
        &outcomes,
        knobs.time_scale,
        after.since(&before),
    )
}

/// Same-seed determinism check: regeneration is byte-identical, and two
/// quota-free replays on fresh identically-configured mediators project to
/// the same outcomes (run at time scale 0 — only result bags matter).
fn assert_determinism(knobs: &Knobs, states: &[String]) {
    let spec = || WorkloadSpec::standard(0x10AD, knobs.profile("poisson"), 10.0);
    let a = Workload::generate(spec(), states);
    let b = Workload::generate(spec(), states);
    assert_eq!(
        a.transcript(),
        b.transcript(),
        "same-seed workload generation must be byte-identical"
    );
    let replay_once = |w: &Workload| {
        let mut setup = paper::setup(0.0, knobs.dataset.clone());
        setup.wsmed.set_cache_policy(Some(CachePolicy {
            cross_run: true,
            single_flight: true,
            ..Default::default()
        }));
        let before = SubsystemCounters::collect(&setup.wsmed, &setup.network);
        let outcomes = replay(&setup.wsmed, w, 0.0).expect("replay runs");
        let after = SubsystemCounters::collect(&setup.wsmed, &setup.network);
        LoadReport::build("det", w, &outcomes, 0.0, after.since(&before)).deterministic_json()
    };
    let first = replay_once(&a);
    let second = replay_once(&b);
    assert_eq!(
        first, second,
        "same-seed quota-free replays must project identically"
    );
    println!("determinism: transcripts and replay projections identical\n");
}

fn main() {
    let knobs = Knobs::parse();
    let dataset_states: Vec<String> = {
        // One throwaway generation to learn the state population.
        let setup = paper::setup(0.0, knobs.dataset.clone());
        setup
            .dataset
            .states()
            .iter()
            .map(|s| s.abbr.clone())
            .collect()
    };

    assert_determinism(&knobs, &dataset_states);

    let (csv_path, mut csv) = csv_writer(
        "load_ablation.csv",
        "profile,config,phase,injected,completed,shed,failed,p50_model_s,p95_model_s,\
         p99_model_s,p999_model_s,goodput_qps,shed_rate",
    );

    let mut arms_json = Vec::new();
    let mut gate: Option<(LoadReport, LoadReport)> = None;
    for profile_name in ["poisson", "diurnal", "square"] {
        let spec = WorkloadSpec::standard(0x7AF1C, knobs.profile(profile_name), knobs.duration);
        let workload = Workload::generate(spec, &dataset_states);
        println!(
            "== {profile_name}: {} injections over {} model s ==",
            workload.injections.len(),
            knobs.duration
        );
        let mut pair = Vec::new();
        for config in ["bare", "full"] {
            let report = run_arm(config, &knobs, &workload);
            print!("[{config}]\n{}", report.table());
            let o = &report.overall;
            assert_eq!(
                o.completed + o.shed + o.failed,
                o.injected,
                "accounting must sum exactly"
            );
            for phase in std::iter::once(&report.overall).chain(report.phases.iter()) {
                csv_row(
                    &mut csv,
                    &format!(
                        "{profile_name},{config},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.4},{:.4}",
                        phase.phase,
                        phase.injected,
                        phase.completed,
                        phase.shed,
                        phase.failed,
                        phase.p50,
                        phase.p95,
                        phase.p99,
                        phase.p999,
                        phase.goodput_qps,
                        phase.shed_rate,
                    ),
                );
            }
            arms_json.push(report.json());
            pair.push(report);
        }
        println!();
        let full = pair.pop().expect("full arm");
        let bare = pair.pop().expect("bare arm");
        if profile_name == "poisson" {
            gate = Some((bare, full));
        }
    }

    // The regression gate: at a positive time scale (wall sleeps enabled,
    // so model latency is observable), the full configuration must
    // strictly beat bare on p95 latency and on goodput at the same
    // arrival schedule.
    let (bare, full) = gate.expect("poisson arms ran");
    if knobs.time_scale > 0.0 {
        assert!(
            full.overall.p95 < bare.overall.p95,
            "full p95 {:.3} must beat bare p95 {:.3}",
            full.overall.p95,
            bare.overall.p95
        );
        assert!(
            full.overall.goodput_qps > bare.overall.goodput_qps,
            "full goodput {:.3} must beat bare goodput {:.3}",
            full.overall.goodput_qps,
            bare.overall.goodput_qps
        );
        println!(
            "gate: full p95 {:.3} < bare p95 {:.3}; full goodput {:.2} > bare {:.2}",
            full.overall.p95, bare.overall.p95, full.overall.goodput_qps, bare.overall.goodput_qps
        );
    } else {
        println!("gate: skipped (time scale 0 — model latency unobservable)");
    }

    let body = format!(
        "{{\"duration_model_s\": {}, \"rate_qps\": {}, \"quota\": {}, \"arms\": [{}]}}",
        knobs.duration,
        knobs.rate,
        knobs.quota,
        arms_json.join(", ")
    );
    let json_path = emit_bench_section("BENCH_load.json", "load", Some(knobs.time_scale), &body);
    println!("wrote {} and {}", csv_path.display(), json_path.display());
}
