//! Ablation: **elastic replicated provider topology** on the paper's
//! Query2 chain.
//!
//! The paper's §V optimum-fanout argument assumes a *static* provider.
//! This harness scales the chaos-targeted leaf (`GetPlacesInside`) out
//! into a three-replica [`wsmed_netsim::ReplicaGroup`], scripts membership
//! churn against the charged model clock, and checks that the client-side
//! router plus the re-arming `AFF_APPLYP` track the **moving** optimum.
//!
//! Claims asserted in-binary:
//!
//! * **moving optimum** — with a scripted flap (both extra replicas leave
//!   at ~30% of the calibrated charged model time and rejoin at ~60%), a
//!   re-arming adaptive run (`rearm_factor`) records at least one `rearm`
//!   cycle verdict, the adapting node's fanout shrinks after the first
//!   re-arm, and the tree grows again after the last one — all read from
//!   the trace's cycle-decision projection. No rows are lost to the churn.
//! * **breaker scope** — under a sustained outage on one replica only, a
//!   hair-trigger per-replica breaker opens on that replica and on no
//!   other, routed retries fail over to healthy replicas
//!   (`RouterStats::failovers`), and the run returns the full fault-free
//!   row multiset with zero skipped parameters: one replica's open breaker
//!   never sheds the group.
//! * **routing policy** — on a heterogeneous group (two slow, small
//!   extras), least-in-flight routing strictly beats uniform random
//!   routing on open-loop p95 latency at the same seeded workload.
//! * **determinism** — two same-seed scale-0 runs of the routed central
//!   plan under the same topology scenario produce byte-identical
//!   routing/membership trace projections and row counts.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin topology_ablation -- --small
//! ```

use std::sync::Arc;

use wsmed_bench::{csv_row, csv_writer, emit_bench_section, json_num, HarnessOpts};
use wsmed_core::{
    obs, paper, AdaptEvent, AdaptiveConfig, BreakerPolicy, ExecutionReport, FailureMode,
    FanoutVector, QuotaPolicy, ResiliencePolicy, RouterPolicy, TraceEventKind, TracePolicy, Wsmed,
};
use wsmed_netsim::{FaultSpec, ProviderSpec, ReplicaGroup, TopologyAction, TopologyScenario};
use wsmed_services::{calibration, DatasetConfig};
use wsmed_store::canonicalize;
use wsmed_trafficgen::{
    replay, ArrivalProfile, LoadReport, SubsystemCounters, Workload, WorkloadSpec,
};

/// The replicated provider: Query2's leaf, one call per zip code.
const LEAF: &str = "codebump.com/zip";

/// Query2 without its final filter (same dependent chain, every place row
/// survives), as in the chaos ablation: row counts stay meaningful.
const TOPOLOGY_SQL: &str = "\
    select gp.ToState, gp.zip \
    From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
    Where gs.State=gi.USState and gi.GetInfoByStateResult=gc.zipstr \
      and gc.zipcode=gp.zip";

/// An extra leaf replica: the calibrated spec, renamed, with capacity and
/// a latency slowdown factor chosen per experiment.
fn extra_spec(i: usize, capacity: usize, slow: f64) -> ProviderSpec {
    let base = calibration::zipcodes_spec();
    let mut latency = base.default_latency;
    latency.setup *= slow;
    latency.server_mean *= slow;
    ProviderSpec::new(format!("{LEAF}#{i}"), capacity, latency)
        .with_congestion_exponent(base.congestion_exponent)
}

/// Two healthy extras, bigger than the primary (capacity 4 each vs 3):
/// the elastic pool whose departure visibly moves the optimum.
fn healthy_extras() -> Vec<ProviderSpec> {
    vec![extra_spec(1, 4, 1.0), extra_spec(2, 4, 1.0)]
}

/// Two slow, small extras for the routing-policy arm: random routing
/// sends two thirds of the leaf traffic into 4×-slower replicas.
fn slow_extras() -> Vec<ProviderSpec> {
    vec![extra_spec(1, 2, 4.0), extra_spec(2, 2, 4.0)]
}

/// Builds the paper world, scales the leaf out into a replica group, and
/// installs the client-side router (reseeding planner profiles so the
/// cost model sees the pooled capacity).
fn routed_setup(
    scale: f64,
    dataset: DatasetConfig,
    extras: Vec<ProviderSpec>,
    policy: RouterPolicy,
) -> (paper::PaperSetup, Arc<ReplicaGroup>) {
    let setup = paper::setup(scale, dataset);
    let group = setup
        .network
        .replicate(LEAF, extras)
        .expect("leaf provider replicates");
    setup.wsmed.set_router_policy(Some(policy));
    setup.wsmed.reseed_profiles();
    (setup, group)
}

fn discover_fanouts(w: &Wsmed, sql: &str, per_level: usize) -> Option<FanoutVector> {
    for levels in 1..=4 {
        let candidate: FanoutVector = vec![per_level; levels];
        if w.explain(sql, Some(&candidate)).is_ok() {
            return Some(candidate);
        }
    }
    None
}

// ---- claim 1: the adaptive operator tracks a moving optimum ------------

fn moving_optimum(opts: &HarnessOpts, csv: &mut std::fs::File) -> String {
    println!("-- moving optimum: flap both extra replicas mid-run --");
    if opts.scale <= 0.0 {
        println!("  skipped: AFF_APPLYP monitors wall time; needs --scale > 0\n");
        return "null".to_owned();
    }
    let config = AdaptiveConfig {
        drop_enabled: true,
        rearm_factor: Some(0.5),
        ..Default::default()
    };

    // Calibration pass on the healthy elastic pool: learn the total
    // charged model time T, so scenario instants can be placed at work
    // fractions (the charged clock advances with calls, not wall time).
    let (setup, _group) = routed_setup(
        opts.scale,
        opts.dataset(),
        healthy_extras(),
        RouterPolicy::LeastInFlight,
    );
    let plan = setup
        .wsmed
        .compile_adaptive(TOPOLOGY_SQL, &config)
        .expect("adaptive plan compiles");
    let charged_before = setup.network.model_time();
    let (result, _) = setup.wsmed.execute_traced(&plan);
    let baseline = result.expect("calibration run completes");
    let total_charged = setup.network.model_time() - charged_before;
    let reference = canonicalize(baseline.rows.clone());
    println!(
        "  calibration: {} rows, {:.1} charged model-s on the healthy pool",
        reference.len(),
        total_charged
    );

    // Scenario pass: both extras leave at 30% of the charged total and
    // rejoin at 60% — capacity 11 → 3 → 11.
    let leave_at = 0.30 * total_charged;
    let rejoin_at = 0.60 * total_charged;
    let scenario = TopologyScenario::new("elastic-flap")
        .at(
            leave_at,
            TopologyAction::Leave {
                replica: format!("{LEAF}#1"),
            },
        )
        .at(
            leave_at,
            TopologyAction::Leave {
                replica: format!("{LEAF}#2"),
            },
        )
        .at(
            rejoin_at,
            TopologyAction::Rejoin {
                replica: format!("{LEAF}#1"),
            },
        )
        .at(
            rejoin_at,
            TopologyAction::Rejoin {
                replica: format!("{LEAF}#2"),
            },
        );
    let (mut setup, group) = routed_setup(
        opts.scale,
        opts.dataset(),
        healthy_extras(),
        RouterPolicy::LeastInFlight,
    );
    setup.wsmed.set_trace_policy(TracePolicy::enabled());
    group.install_scenario(scenario);
    let plan = setup
        .wsmed
        .compile_adaptive(TOPOLOGY_SQL, &config)
        .expect("adaptive plan compiles");
    let (result, trace) = setup.wsmed.execute_traced(&plan);
    let report = result.expect("scenario run completes");
    let trace = trace.expect("traced run yields a log");
    let events = trace.events();
    let violations = obs::validate(&events);
    assert!(
        violations.is_empty(),
        "topology trace violates invariants: {violations:?}"
    );

    // Rows survive the churn: leave is a graceful drain, not an outage.
    assert_eq!(
        canonicalize(report.rows.clone()),
        reference,
        "membership churn must not change the result multiset"
    );
    assert!(
        report.router.membership_events >= 2,
        "the flap must surface membership events while routing (saw {})",
        report.router.membership_events
    );

    // The headline: read the moving-optimum story out of the trace's
    // cycle-decision projection.
    let cycles = obs::cycle_decisions(&events);
    for (i, c) in cycles.iter().enumerate() {
        csv_row(
            csv,
            &format!(
                "moving_optimum,node{}:cycle{i},alive={} verdict={} per_tuple_model_s={:.4}",
                c.process,
                c.alive,
                c.decision,
                c.per_tuple_secs / opts.scale
            ),
        );
        if opts.verbose {
            println!(
                "    cycle {i:>3} node {:>2} alive {:>2} per-tuple {:>8.4} model-s  {}",
                c.process,
                c.alive,
                c.per_tuple_secs / opts.scale,
                c.decision
            );
        }
    }
    let rearm_idx: Vec<usize> = cycles
        .iter()
        .enumerate()
        .filter(|(_, c)| c.decision == "rearm")
        .map(|(i, _)| i)
        .collect();
    assert!(
        !rearm_idx.is_empty(),
        "the flap must re-arm at least one converged AFF_APPLYP \
         ({} cycles, none re-armed)",
        cycles.len()
    );
    let first = rearm_idx[0];
    let node = cycles[first].process;
    fn node_cycles(range: &[AdaptEvent], node: u64) -> Vec<&AdaptEvent> {
        range.iter().filter(|c| c.process == node).collect()
    }
    let pre_peak = node_cycles(&cycles[..=first], node)
        .iter()
        .map(|c| c.alive)
        .max()
        .expect("the re-arming node has cycles");
    let post = node_cycles(&cycles[first + 1..], node);
    let post_trough = post.iter().map(|c| c.alive).min().unwrap_or(pre_peak);
    assert!(
        post_trough < pre_peak,
        "fanout must shrink after the re-arm (peak {pre_peak} before, \
         trough {post_trough} after)"
    );
    // After the *last* re-arm on that node, the tree must grow again —
    // the recovered pool supports a wider optimum than the reset width.
    let last = *rearm_idx
        .iter()
        .rfind(|&&i| cycles[i].process == node)
        .expect("first re-arm is on this node");
    let tail = node_cycles(&cycles[last + 1..], node);
    let regrew = tail.iter().any(|c| c.decision.starts_with("add:"));
    assert!(
        regrew,
        "the tree must grow again after the last re-arm \
         ({} tail cycles on node {node}, no add stage)",
        tail.len()
    );
    println!(
        "  {} cycle(s), {} re-arm(s) on node {node}; alive peak {pre_peak} \
         -> trough {post_trough} -> re-grown; {} membership event(s)\n",
        cycles.len(),
        rearm_idx.len(),
        report.router.membership_events
    );
    format!(
        "{{\"charged_model_secs_calibration\": {}, \"leave_at\": {}, \
         \"rejoin_at\": {}, \"cycles\": {}, \"rearms\": {}, \
         \"pre_rearm_peak_alive\": {pre_peak}, \
         \"post_rearm_trough_alive\": {post_trough}, \"regrew\": true, \
         \"membership_events\": {}}}",
        json_num(total_charged),
        json_num(leave_at),
        json_num(rejoin_at),
        cycles.len(),
        rearm_idx.len(),
        report.router.membership_events
    )
}

// ---- claim 2: per-replica breakers never shed the group ----------------

/// A sustained outage on one replica: down from the first call onward.
fn replica_outage() -> FaultSpec {
    FaultSpec {
        down_between: vec![(0.0, 1.0e9)],
        ..FaultSpec::default()
    }
}

/// Hair-trigger per-replica breaker under `Partial`: if the breaker were
/// group-scoped, this policy would shed most of the leaf calls.
fn failover_policy() -> ResiliencePolicy {
    ResiliencePolicy {
        max_attempts: 3,
        backoff_model_secs: 0.25,
        backoff_multiplier: 2.0,
        backoff_jitter_frac: 0.25,
        deadline_model_secs: Some(10.0),
        breaker: Some(BreakerPolicy {
            failure_threshold: 2,
            cooldown_model_secs: 50.0,
            half_open_probes: 1,
            probe_after_rejections: 64,
        }),
        hedge: None,
        failure_mode: FailureMode::Partial,
    }
}

fn breaker_scope(opts: &HarnessOpts, csv: &mut std::fs::File) -> String {
    println!("-- breaker scope: sustained outage on one replica of three --");
    let fanouts = {
        let setup = paper::setup(0.0, opts.dataset());
        discover_fanouts(&setup.wsmed, TOPOLOGY_SQL, 4).expect("Query2 parallelizes")
    };

    let run = |faulty: bool| -> ExecutionReport {
        // Weighted routing: at scale 0 calls are instantaneous, so the
        // queue-depth signal least-in-flight keys on never builds up; the
        // capacity-strip walk spreads calls deterministically instead.
        let (mut setup, _group) = routed_setup(
            0.0,
            opts.dataset(),
            vec![extra_spec(1, 3, 1.0), extra_spec(2, 3, 1.0)],
            RouterPolicy::Weighted,
        );
        if faulty {
            setup
                .network
                .provider(&format!("{LEAF}#1"))
                .expect("extra replica registered")
                .set_fault(replica_outage());
            setup.wsmed.set_resilience_policy(failover_policy());
        }
        setup
            .wsmed
            .run_parallel(TOPOLOGY_SQL, &fanouts)
            .expect("routed parallel run completes")
    };

    let reference = run(false);
    let reference_rows = canonicalize(reference.rows.clone());
    let spread = reference
        .router
        .per_replica
        .iter()
        .filter(|(_, n)| *n > 0)
        .count();
    assert!(
        reference.router.decisions > 0 && spread >= 2,
        "routing must spread leaf calls over the group \
         ({} decisions over {spread} replica(s))",
        reference.router.decisions
    );

    let outage = run(true);
    let outage_rows = canonicalize(outage.rows.clone());
    assert_eq!(
        outage_rows, reference_rows,
        "failover must recover every row despite the dead replica"
    );
    assert_eq!(
        outage.resilience.skipped_params, 0,
        "no parameter may be skipped while healthy replicas remain"
    );
    let faulty_replica = format!("{LEAF}#1");
    let mut opens_faulty = 0;
    let mut opens_healthy = 0;
    for ((group, replica), res) in &outage.resilience.per_replica {
        if group == LEAF {
            if *replica == faulty_replica {
                opens_faulty += res.breaker_opens;
            } else {
                opens_healthy += res.breaker_opens;
            }
        }
    }
    assert!(
        opens_faulty >= 1,
        "the dead replica's breaker must trip ({opens_faulty} opens)"
    );
    assert_eq!(
        opens_healthy, 0,
        "healthy replicas' breakers must stay closed"
    );
    assert!(
        outage.router.failovers > 0,
        "breaker rejections must fail over to healthy replicas"
    );
    // Satellite check: the group rollup equals the sum of its replicas.
    let rollup = outage
        .resilience
        .per_provider
        .iter()
        .find(|(name, _)| name == LEAF)
        .map(|(_, res)| res.breaker_opens)
        .unwrap_or(0);
    let replica_sum: u64 = outage
        .resilience
        .per_replica
        .iter()
        .filter(|((group, _), _)| group == LEAF)
        .map(|(_, res)| res.breaker_opens)
        .sum();
    assert_eq!(
        rollup, replica_sum,
        "group rollup must sum its replicas' breaker opens"
    );
    println!(
        "  {} rows recovered, {} retries, {} opens on {faulty_replica} \
         (0 elsewhere), {} failover(s)\n",
        outage_rows.len(),
        outage.resilience.retries,
        opens_faulty,
        outage.router.failovers
    );
    csv_row(
        csv,
        &format!(
            "breaker_scope,rows={} retries={} opens_faulty={opens_faulty} failovers={}",
            outage_rows.len(),
            outage.resilience.retries,
            outage.router.failovers
        ),
    );
    format!(
        "{{\"rows\": {}, \"retries\": {}, \"opens_faulty\": {opens_faulty}, \
         \"opens_healthy\": 0, \"failovers\": {}, \"skipped_params\": 0}}",
        outage_rows.len(),
        outage.resilience.retries,
        outage.router.failovers
    )
}

// ---- claim 3: least-in-flight beats random on p95 ----------------------

fn routing_p95(opts: &HarnessOpts, csv: &mut std::fs::File) -> String {
    println!("-- routing policy: open-loop p95 on a heterogeneous group --");
    if opts.scale <= 0.0 {
        println!("  skipped: percentiles need observable latency (--scale > 0)\n");
        return "null".to_owned();
    }
    let dataset = DatasetConfig::tiny();
    let states: Vec<String> = {
        let setup = paper::setup(0.0, dataset.clone());
        setup
            .dataset
            .states()
            .iter()
            .map(|s| s.abbr.clone())
            .collect()
    };
    let duration = 20.0;
    let rate = 1.2;
    let workload = Workload::generate(
        WorkloadSpec::standard(0x7090, ArrivalProfile::Poisson { rate }, duration),
        &states,
    );
    println!(
        "  {} injections over {duration} model s, two slow extras (4x)",
        workload.injections.len()
    );

    let run_arm = |policy: RouterPolicy| -> LoadReport {
        let (setup, _group) = routed_setup(opts.scale, dataset.clone(), slow_extras(), policy);
        setup.wsmed.set_quota_policy(QuotaPolicy {
            max_concurrent_queries: Some(6),
            ..Default::default()
        });
        let before = SubsystemCounters::collect(&setup.wsmed, &setup.network);
        let outcomes = replay(&setup.wsmed, &workload, opts.scale).expect("replay runs");
        let after = SubsystemCounters::collect(&setup.wsmed, &setup.network);
        LoadReport::build(
            policy.name(),
            &workload,
            &outcomes,
            opts.scale,
            after.since(&before),
        )
    };

    let mut arm_json = Vec::new();
    let mut p95 = std::collections::BTreeMap::new();
    for policy in [
        RouterPolicy::Random,
        RouterPolicy::Weighted,
        RouterPolicy::LeastInFlight,
        RouterPolicy::LocalityAware,
    ] {
        let report = run_arm(policy);
        let o = &report.overall;
        println!(
            "  {:>15}: p50 {:>7.3}  p95 {:>7.3}  goodput {:>5.2} q/s  ({} completed)",
            policy.name(),
            o.p50,
            o.p95,
            o.goodput_qps,
            o.completed
        );
        csv_row(
            csv,
            &format!(
                "routing_p95,{},p50={:.4} p95={:.4} goodput={:.3}",
                policy.name(),
                o.p50,
                o.p95,
                o.goodput_qps
            ),
        );
        arm_json.push(format!(
            "{{\"policy\": \"{}\", \"p50\": {}, \"p95\": {}, \"goodput_qps\": {}}}",
            policy.name(),
            json_num(o.p50),
            json_num(o.p95),
            json_num(o.goodput_qps)
        ));
        p95.insert(policy.name().to_owned(), o.p95);
    }
    let random = p95["random"];
    let least = p95["least-in-flight"];
    assert!(
        least < random,
        "least-in-flight p95 {least:.3} must strictly beat random p95 {random:.3} \
         on a heterogeneous group"
    );
    println!("  gate: least-in-flight p95 {least:.3} < random p95 {random:.3}\n");
    format!("{{\"arms\": [{}]}}", arm_json.join(", "))
}

// ---- claim 4: same-seed scenario runs are byte-identical ---------------

fn determinism(opts: &HarnessOpts) -> String {
    println!("-- determinism: same-seed routed runs under the same scenario --");
    // Calibrate the central plan's charged total so the scenario fires
    // mid-run, then project two identical runs at scale 0.
    let total_charged = {
        let (setup, _group) = routed_setup(
            0.0,
            opts.dataset(),
            healthy_extras(),
            RouterPolicy::Weighted,
        );
        let before = setup.network.model_time();
        setup
            .wsmed
            .run_central(TOPOLOGY_SQL)
            .expect("central calibration completes");
        setup.network.model_time() - before
    };
    let project = || -> String {
        let (mut setup, group) = routed_setup(
            0.0,
            opts.dataset(),
            healthy_extras(),
            RouterPolicy::Weighted,
        );
        setup.wsmed.set_trace_policy(TracePolicy::enabled());
        group.install_scenario(
            TopologyScenario::new("det-mix")
                .at(
                    0.25 * total_charged,
                    TopologyAction::Leave {
                        replica: format!("{LEAF}#1"),
                    },
                )
                .at(
                    0.40 * total_charged,
                    TopologyAction::Leave {
                        replica: format!("{LEAF}#2"),
                    },
                )
                .at(
                    0.60 * total_charged,
                    TopologyAction::Rejoin {
                        replica: format!("{LEAF}#1"),
                    },
                ),
        );
        let plan = setup
            .wsmed
            .compile_central(TOPOLOGY_SQL)
            .expect("central plan compiles");
        let (result, trace) = setup.wsmed.execute_traced(&plan);
        let report = result.expect("routed central run completes");
        let trace = trace.expect("traced run yields a log");
        let mut lines = Vec::new();
        for e in trace.events() {
            match &e.kind {
                TraceEventKind::RouteDecision {
                    group,
                    replica,
                    alternatives,
                } => lines.push(format!("route {group} {replica} {alternatives}")),
                TraceEventKind::Membership {
                    group,
                    replica,
                    joined,
                } => lines.push(format!("membership {group} {replica} {joined}")),
                TraceEventKind::ReplicaSkipped {
                    group,
                    replica,
                    reason,
                } => lines.push(format!("skipped {group} {replica} {reason}")),
                _ => {}
            }
        }
        lines.push(format!("rows {}", report.rows.len()));
        for ((group, replica), n) in &report.router.per_replica {
            lines.push(format!("decisions {group} {replica} {n}"));
        }
        lines.join("\n")
    };
    let first = project();
    let second = project();
    assert_eq!(
        first, second,
        "same-seed scenario runs must project byte-identically"
    );
    let lines = first.lines().count();
    println!("  two runs, {lines} projection line(s), byte-identical\n");
    format!("{{\"runs\": 2, \"identical\": true, \"projection_lines\": {lines}}}")
}

fn main() {
    let opts = HarnessOpts::parse(0.002, false);
    println!(
        "== topology ablation: elastic {LEAF} replica group \
         (scale {}, {} dataset) ==\n",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let (csv_path, mut csv) = csv_writer("topology_ablation.csv", "arm,label,detail");

    let mo = moving_optimum(&opts, &mut csv);
    let bs = breaker_scope(&opts, &mut csv);
    let rp = routing_p95(&opts, &mut csv);
    let det = determinism(&opts);

    let body = format!(
        "{{\"group\": \"{LEAF}\", \"replicas\": 3, \"moving_optimum\": {mo}, \
         \"breaker_scope\": {bs}, \"routing_p95\": {rp}, \"determinism\": {det}}}"
    );
    let json_path = emit_bench_section("BENCH_topology.json", "topology", Some(opts.scale), &body);
    println!(
        "all topology claims hold; CSV written to {}, summary merged into {}",
        csv_path.display(),
        json_path.display()
    );
}
