//! The extension workload **Query3**: a three-level dependent chain
//! (`GetAirports` → `GetDepartures` → `GetFlightStatus`) swept over
//! three-dimensional fanout vectors — §VII's "any number of dependent
//! joins" measured, not just claimed.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin query3_chain
//! ```

use wsmed_bench::{csv_row, csv_writer, run_adaptive, run_central, run_parallel, HarnessOpts};
use wsmed_core::{paper, AdaptiveConfig};

fn main() {
    let opts = HarnessOpts::parse(0.002, false);
    println!(
        "== Query3: three-level dependent chain (scale {}) ==\n",
        opts.scale
    );
    let setup = opts.setup();
    let w = &setup.wsmed;
    let (path, mut csv) = csv_writer("query3_chain.csv", "fo1,fo2,fo3,processes,model_secs");

    let central = run_central(w, paper::QUERY3_SQL, opts.scale);
    println!(
        "central: {:.1} model-s, {} calls, {} delayed flights\n",
        central.model_secs,
        central.report.ws_calls,
        central.report.row_count()
    );
    csv_row(&mut csv, &format!("0,0,0,1,{:.2}", central.model_secs));

    println!(
        "{:>12} {:>10} {:>12} {:>9}",
        "fanouts", "processes", "model-s", "speedup"
    );
    let mut best = (vec![0usize; 3], f64::INFINITY);
    for fanouts in [
        vec![1usize, 1, 1],
        vec![2, 1, 1],
        vec![2, 2, 1],
        vec![2, 2, 2],
        vec![3, 2, 2],
        vec![4, 2, 2],
        vec![3, 3, 2],
        vec![4, 3, 2],
        vec![2, 2, 0],
        vec![4, 0, 2],
    ] {
        let t = run_parallel(w, paper::QUERY3_SQL, &fanouts, opts.scale);
        assert_eq!(t.report.row_count(), central.report.row_count());
        let processes: usize = t.report.tree.levels.iter().map(|l| l.alive).sum();
        println!(
            "{:>12} {processes:>10} {:>12.1} {:>8.1}x",
            format!("{fanouts:?}"),
            t.model_secs,
            central.model_secs / t.model_secs
        );
        csv_row(
            &mut csv,
            &format!(
                "{},{},{},{processes},{:.2}",
                fanouts[0], fanouts[1], fanouts[2], t.model_secs
            ),
        );
        if t.model_secs < best.1 {
            best = (fanouts.clone(), t.model_secs);
        }
    }

    let adaptive = run_adaptive(w, paper::QUERY3_SQL, &AdaptiveConfig::default(), opts.scale);
    println!(
        "\nAFF_APPLYP (p=2): {:.1} model-s ({:.0}% of best manual), tree {}",
        adaptive.model_secs,
        100.0 * best.1 / adaptive.model_secs,
        adaptive.report.tree.describe()
    );
    assert_eq!(adaptive.report.row_count(), central.report.row_count());
    assert!(
        central.model_secs / best.1 > 2.0,
        "three-level parallelization should win clearly"
    );
    println!("best manual: {:?} at {:.1} model-s", best.0, best.1);
    println!("CSV written to {}", path.display());
}
