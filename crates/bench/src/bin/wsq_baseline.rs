//! Related-work baseline (§VI): WSQ/DSQ-style asynchronous *materialized*
//! dependent joins vs WSMED's bounded process trees.
//!
//! WSQ/DSQ launches every call of a level at once and materializes between
//! levels. Against providers that saturate at single-digit concurrency
//! (the reality the paper measured), the unbounded burst drives the
//! congestion model far past capacity; WSMED's near-balanced bounded tree
//! keeps the providers at their sweet spot and pipelines across levels.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin wsq_baseline
//! ```

use wsmed_bench::{csv_row, csv_writer, run_parallel, HarnessOpts};
use wsmed_core::paper;
use wsmed_services::calibration;

fn main() {
    let opts = HarnessOpts::parse(0.002, false);
    println!(
        "== WSQ/DSQ materialized baseline vs WSMED trees (scale {}, {} dataset) ==\n",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let setup = opts.setup();
    let w = &setup.wsmed;
    let (path, mut csv) = csv_writer("wsq_baseline.csv", "query,strategy,model_secs");

    println!("{:<8} {:<26} {:>12}", "query", "strategy", "model-s");
    for (name, sql, best) in [
        (
            "Query1",
            paper::QUERY1_SQL,
            calibration::PAPER_Q1_BEST_FANOUT,
        ),
        (
            "Query2",
            paper::QUERY2_SQL,
            calibration::PAPER_Q2_BEST_FANOUT,
        ),
    ] {
        let t0 = std::time::Instant::now();
        let rows = w.run_materialized(sql).expect("materialized run");
        let wsq = t0.elapsed().as_secs_f64() / opts.scale;
        println!("{name:<8} {:<26} {wsq:>12.1}", "WSQ/DSQ (unbounded)");
        csv_row(&mut csv, &format!("{name},wsq,{wsq:.2}"));

        let tree = run_parallel(w, sql, &vec![best.0, best.1], opts.scale);
        println!(
            "{name:<8} {:<26} {:>12.1}",
            format!("WSMED tree {{{},{}}}", best.0, best.1),
            tree.model_secs
        );
        csv_row(&mut csv, &format!("{name},wsmed,{:.2}", tree.model_secs));
        assert_eq!(
            rows.len(),
            tree.report.row_count(),
            "{name}: strategies disagree on results"
        );
        println!(
            "{name:<8} {:<26} {:>11.1}x\n",
            "WSMED advantage",
            wsq / tree.model_secs
        );
    }
    println!("CSV written to {}", path.display());
}
