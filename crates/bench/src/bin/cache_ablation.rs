//! Ablation: the **sharded single-flight call cache** on a skewed
//! dependent-join workload.
//!
//! The paper's Query2 chain calls every zip exactly once, so memoization
//! saves nothing there. Real parameter streams are skewed: the same
//! downstream call recurs many times. This harness builds that skew with a
//! Query2-style chain whose state binding is a constant (`gi.USState='CO'`)
//! — every `GetAllStates` row re-issues the *same* `GetInfoByState` call
//! and the same zip→place chain below it — and sweeps the cache modes:
//!
//! * `off`        — no cache (paper semantics);
//! * `no-flight`  — per-run cache, single-flight dedup disabled;
//! * `per-run`    — per-run cache with single-flight (the default policy);
//! * `cross-run`  — entries survive runs of the same mediator.
//!
//! Each mode runs the query twice. Claims asserted in-binary:
//! * every mode and run returns the uncached result multiset;
//! * the cache cuts real web service calls ≥ 2× on the skewed workload;
//! * single-flight never issues more calls than its disabled baseline;
//! * a cross-run second execution issues **zero** web service calls and
//!   answers every plan-function parameter parent-side (dedup-aware
//!   dispatch short-circuits).
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin cache_ablation -- --full
//! ```

use wsmed_bench::{csv_row, csv_writer, HarnessOpts, Timed};
use wsmed_core::{CachePolicy, CacheStats, FanoutVector, Wsmed};
use wsmed_store::{canonicalize, Tuple};

/// Query2's chain with the state binding replaced by a constant: a
/// cartesian dependent join in which all 51 states share one downstream
/// chain — maximal skew with unchanged query shape.
const SKEWED_SQL: &str = "\
    select gp.ToState, gp.zip \
    From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
    Where gi.USState='CO' and gi.GetInfoByStateResult=gc.zipstr \
      and gc.zipcode=gp.zip and gp.ToPlace='USAF Academy'";

const MODES: [(&str, Option<CachePolicy>); 4] = [
    ("off", None),
    (
        "no-flight",
        Some(CachePolicy {
            capacity: 100_000,
            ttl_model_secs: None,
            shards: 16,
            cross_run: false,
            single_flight: false,
        }),
    ),
    (
        "per-run",
        Some(CachePolicy {
            capacity: 100_000,
            ttl_model_secs: None,
            shards: 16,
            cross_run: false,
            single_flight: true,
        }),
    ),
    (
        "cross-run",
        Some(CachePolicy {
            capacity: 100_000,
            ttl_model_secs: None,
            shards: 16,
            cross_run: true,
            single_flight: true,
        }),
    ),
];

/// Finds the fanout vector length the parallelizer expects for `sql` by
/// compiling (not executing) with growing vectors.
fn discover_fanouts(w: &Wsmed, sql: &str, per_level: usize) -> Option<FanoutVector> {
    for levels in 1..=4 {
        let candidate: FanoutVector = vec![per_level; levels];
        if w.explain(sql, Some(&candidate)).is_ok() {
            return Some(candidate);
        }
    }
    None
}

struct Cell {
    mode: &'static str,
    run: usize,
    ws_calls: u64,
    model_secs: f64,
    stats: CacheStats,
    rows: Vec<Tuple>,
}

fn run_mode(
    opts: &HarnessOpts,
    mode: &'static str,
    policy: Option<CachePolicy>,
    fanouts: &FanoutVector,
    csv: &mut std::fs::File,
) -> Vec<Cell> {
    let mut setup = opts.setup();
    setup.wsmed.set_cache_policy(policy);
    (1..=2)
        .map(|run| {
            let t: Timed = wsmed_bench::run_parallel(&setup.wsmed, SKEWED_SQL, fanouts, opts.scale);
            let cell = Cell {
                mode,
                run,
                ws_calls: t.report.ws_calls,
                model_secs: t.model_secs,
                stats: t.report.cache,
                rows: t.report.rows,
            };
            println!(
                "  {mode:>9} run {run}: {:>4} ws calls, {:>6.1} model-s, \
                 {:>3} hits, {:>2} dedup waits, {:>3} short-circuits",
                cell.ws_calls,
                cell.model_secs,
                cell.stats.hits,
                cell.stats.dedup_waits,
                cell.stats.short_circuits,
            );
            csv_row(
                csv,
                &format!(
                    "{mode},{run},{},{:.2},{},{},{},{},{},{},{}",
                    cell.ws_calls,
                    cell.model_secs,
                    cell.stats.hits,
                    cell.stats.misses,
                    cell.stats.dedup_waits,
                    cell.stats.short_circuits,
                    cell.stats.evictions,
                    cell.stats.entries,
                    cell.rows.len(),
                ),
            );
            cell
        })
        .collect()
}

fn main() {
    let opts = HarnessOpts::parse(0.0015, false);
    println!(
        "== cache ablation: skewed Query2-style chain (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let setup = opts.setup();
    let fanouts = discover_fanouts(&setup.wsmed, SKEWED_SQL, 4)
        .expect("skewed chain must have parallelizable sections");
    println!(
        "fanout vector {fanouts:?} ({} parallel level(s))\n",
        fanouts.len()
    );
    drop(setup);

    let (path, mut csv) = csv_writer(
        "cache_ablation.csv",
        "mode,run,ws_calls,model_secs,hits,misses,dedup_waits,short_circuits,evictions,entries,rows",
    );

    let mut results: Vec<Vec<Cell>> = Vec::new();
    for (mode, policy) in MODES {
        results.push(run_mode(&opts, mode, policy, &fanouts, &mut csv));
    }

    // ---- claims -----------------------------------------------------------
    let baseline = &results[0][0];
    let reference = canonicalize(baseline.rows.clone());
    for cells in &results {
        for cell in cells {
            assert_eq!(
                canonicalize(cell.rows.clone()),
                reference,
                "{} run {} changed the result multiset",
                cell.mode,
                cell.run
            );
        }
    }

    let per_run = &results[2][0];
    let call_ratio = baseline.ws_calls as f64 / per_run.ws_calls.max(1) as f64;
    println!(
        "\nskew: cache off {} calls, per-run cache {} calls (÷{call_ratio:.1})",
        baseline.ws_calls, per_run.ws_calls
    );
    assert!(
        call_ratio >= 2.0,
        "cache must cut ws calls ≥2× on the skewed workload (got {call_ratio:.1}×)"
    );

    let no_flight = &results[1][0];
    assert!(
        per_run.ws_calls <= no_flight.ws_calls,
        "single-flight issued more calls ({}) than its disabled baseline ({})",
        per_run.ws_calls,
        no_flight.ws_calls
    );

    let cross_second = &results[3][1];
    println!(
        "cross-run second execution: {} ws calls, {} short-circuits, {} hits",
        cross_second.ws_calls, cross_second.stats.short_circuits, cross_second.stats.hits
    );
    assert_eq!(
        cross_second.ws_calls, 0,
        "cross-run second execution must be answered entirely from memory"
    );
    assert!(
        cross_second.stats.short_circuits > 0,
        "dedup-aware dispatch must answer repeated parameters parent-side"
    );

    println!("\nall cache claims hold; CSV written to {}", path.display());
}
