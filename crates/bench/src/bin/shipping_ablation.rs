//! Ablation: what parameter projection saves in inter-process shipping.
//!
//! §III.A's design ships the plan function once and then streams *minimal*
//! parameter tuples (`PF1(Charstring st1)`). This harness compares the
//! projected rewrite (the default) against shipping full prefix tuples,
//! for both paper queries, in message bytes and model time.
//!
//! A second section compares the row and columnar wire paths directly
//! (real wall-clock micro-measurements, independent of `--scale`) and
//! asserts the columnar engine's claims in-binary:
//! * columnar decode is ≥ 2× the row-path decode throughput at both 64
//!   and 512 tuples per frame;
//! * the columnar frame is strictly denser (fewer bytes per tuple);
//! * decoding copies no string values — every string column's heap stays
//!   a shared slice of the received frame.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin shipping_ablation
//! ```

use wsmed_bench::{
    assert_columnar_zero_copy, csv_row, csv_writer, emit_bench_section, measure_wire_micro, timed,
    wire_micro_json, HarnessOpts,
};
use wsmed_core::paper;

fn main() {
    let opts = HarnessOpts::parse(0.002, true);
    println!(
        "== shipping ablation: parameter projection on/off (scale {}) ==\n",
        opts.scale
    );
    let setup = opts.setup();
    let w = &setup.wsmed;
    let (path, mut csv) = csv_writer(
        "shipping_ablation.csv",
        "query,mode,shipped_bytes,model_secs",
    );

    println!(
        "{:<8} {:<12} {:>14} {:>12} {:>10}",
        "query", "mode", "shipped bytes", "model-s", "saving"
    );
    for (name, sql, fanouts) in [
        ("Query1", paper::QUERY1_SQL, vec![5usize, 4]),
        ("Query2", paper::QUERY2_SQL, vec![4usize, 3]),
    ] {
        let projected_plan = w.compile_parallel(sql, &fanouts).expect("compile");
        let unprojected_plan = w
            .compile_parallel_unprojected(sql, &fanouts)
            .expect("compile");

        let unprojected = timed(opts.scale, || w.execute(&unprojected_plan));
        let projected = timed(opts.scale, || w.execute(&projected_plan));

        let saving = 100.0
            * (1.0
                - projected.report.shipped_bytes as f64 / unprojected.report.shipped_bytes as f64);
        println!(
            "{name:<8} {:<12} {:>14} {:>12.1} {:>10}",
            "full", unprojected.report.shipped_bytes, unprojected.model_secs, "-"
        );
        println!(
            "{name:<8} {:<12} {:>14} {:>12.1} {:>9.0}%",
            "projected", projected.report.shipped_bytes, projected.model_secs, saving
        );
        csv_row(
            &mut csv,
            &format!(
                "{name},full,{},{:.2}",
                unprojected.report.shipped_bytes, unprojected.model_secs
            ),
        );
        csv_row(
            &mut csv,
            &format!(
                "{name},projected,{},{:.2}",
                projected.report.shipped_bytes, projected.model_secs
            ),
        );
        assert!(
            projected.report.shipped_bytes < unprojected.report.shipped_bytes,
            "{name}: projection must reduce shipped bytes"
        );
    }
    println!("\nCSV written to {}", path.display());

    // ---- row vs columnar wire path ---------------------------------------
    println!("\n== wire path: row vs columnar (wall-clock micro) ==\n");
    println!(
        "{:<6} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "tuples", "row dec t/s", "col dec t/s", "speedup", "row B/t", "col B/t"
    );
    let mut micros = Vec::new();
    for size in [64usize, 512] {
        let m = measure_wire_micro(size);
        println!(
            "{:<6} {:>14.0} {:>14.0} {:>7.1}x {:>10.1} {:>10.1}",
            m.size,
            m.row_decode_tps,
            m.col_decode_tps,
            m.decode_speedup(),
            m.row_bytes_per_tuple(),
            m.col_bytes_per_tuple(),
        );
        assert!(
            m.decode_speedup() >= 2.0,
            "columnar decode must be ≥2× row decode at {size} tuples \
             (got {:.2}×)",
            m.decode_speedup()
        );
        assert!(
            m.col_bytes_per_tuple() < m.row_bytes_per_tuple(),
            "columnar frames must be denser at {size} tuples: {:.1} vs {:.1} B/tuple",
            m.col_bytes_per_tuple(),
            m.row_bytes_per_tuple()
        );
        let shared = assert_columnar_zero_copy(size);
        println!("       zero-copy: all {shared} string heaps borrow the received frame");
        micros.push(m);
    }
    let json_path = emit_bench_section(
        "BENCH_wire.json",
        "shipping_wire",
        None,
        &wire_micro_json(&micros),
    );
    println!(
        "\nall wire-path claims hold; summary merged into {}",
        json_path.display()
    );
}
