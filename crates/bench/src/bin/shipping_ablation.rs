//! Ablation: what parameter projection saves in inter-process shipping.
//!
//! §III.A's design ships the plan function once and then streams *minimal*
//! parameter tuples (`PF1(Charstring st1)`). This harness compares the
//! projected rewrite (the default) against shipping full prefix tuples,
//! for both paper queries, in message bytes and model time.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin shipping_ablation
//! ```

use wsmed_bench::{csv_row, csv_writer, timed, HarnessOpts};
use wsmed_core::paper;

fn main() {
    let opts = HarnessOpts::parse(0.002, true);
    println!(
        "== shipping ablation: parameter projection on/off (scale {}) ==\n",
        opts.scale
    );
    let setup = opts.setup();
    let w = &setup.wsmed;
    let (path, mut csv) = csv_writer(
        "shipping_ablation.csv",
        "query,mode,shipped_bytes,model_secs",
    );

    println!(
        "{:<8} {:<12} {:>14} {:>12} {:>10}",
        "query", "mode", "shipped bytes", "model-s", "saving"
    );
    for (name, sql, fanouts) in [
        ("Query1", paper::QUERY1_SQL, vec![5usize, 4]),
        ("Query2", paper::QUERY2_SQL, vec![4usize, 3]),
    ] {
        let projected_plan = w.compile_parallel(sql, &fanouts).expect("compile");
        let unprojected_plan = w
            .compile_parallel_unprojected(sql, &fanouts)
            .expect("compile");

        let unprojected = timed(opts.scale, || w.execute(&unprojected_plan));
        let projected = timed(opts.scale, || w.execute(&projected_plan));

        let saving = 100.0
            * (1.0
                - projected.report.shipped_bytes as f64 / unprojected.report.shipped_bytes as f64);
        println!(
            "{name:<8} {:<12} {:>14} {:>12.1} {:>10}",
            "full", unprojected.report.shipped_bytes, unprojected.model_secs, "-"
        );
        println!(
            "{name:<8} {:<12} {:>14} {:>12.1} {:>9.0}%",
            "projected", projected.report.shipped_bytes, projected.model_secs, saving
        );
        csv_row(
            &mut csv,
            &format!(
                "{name},full,{},{:.2}",
                unprojected.report.shipped_bytes, unprojected.model_secs
            ),
        );
        csv_row(
            &mut csv,
            &format!(
                "{name},projected,{},{:.2}",
                projected.report.shipped_bytes, projected.model_secs
            ),
        );
        assert!(
            projected.report.shipped_bytes < unprojected.report.shipped_bytes,
            "{name}: projection must reduce shipped bytes"
        );
    }
    println!("\nCSV written to {}", path.display());
}
