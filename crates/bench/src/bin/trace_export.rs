//! Exports structured execution traces (`wsmed_core::obs`) for one
//! manually parallelized and one adaptive run of the paper's Query2, as
//! JSONL and Chrome `trace_event` JSON under `target/experiments/`.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin trace_export
//! cargo run --release -p wsmed-bench --bin trace_export -- --check <file.jsonl>
//! ```
//!
//! The default mode also *proves* the trace is faithful: the event stream
//! must pass `obs::validate`, the per-process adaptation decision
//! sequence reconstructed from `cycle` events must equal the report's
//! `adapt_events`, and the level-1 fanout replayed from lifecycle events
//! must equal the report's final tree snapshot. `--check` re-validates a
//! previously exported JSONL file (the CI smoke path) and exits non-zero
//! on any parse error or invariant violation.

use std::io::Write as _;

use wsmed_bench::HarnessOpts;
use wsmed_core::{obs, paper, AdaptEvent, AdaptiveConfig, ExecutionReport, TracePolicy};

fn main() {
    // `--check <file>` is not a harness option; intercept it before
    // HarnessOpts::parse rejects it.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let file = args
            .get(pos + 1)
            .unwrap_or_else(|| {
                eprintln!("--check needs a JSONL file path");
                std::process::exit(2);
            })
            .clone();
        std::process::exit(check_file(&file));
    }

    let opts = HarnessOpts::parse(0.0005, false);
    println!(
        "== structured traces of Query2 (scale {}, {} dataset) ==\n",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    std::fs::create_dir_all("target/experiments").expect("create experiments dir");

    let setup = opts.setup();
    let mut wsmed = setup.wsmed;
    wsmed.set_trace_policy(TracePolicy::enabled());

    // One manually parallelized run at the paper's near-optimal {4,3}…
    let ff = wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![4, 3])
        .expect("parallel Query2");
    export_and_verify("trace_ff_4x3", &ff, opts.verbose);

    // …and one adaptive run (§V.A local adaptation; drops enabled so the
    // trace can exercise every verdict kind the controller can emit).
    let config = AdaptiveConfig {
        drop_enabled: true,
        ..AdaptiveConfig::default()
    };
    let aff = wsmed
        .run_adaptive(paper::QUERY2_SQL, &config)
        .expect("adaptive Query2");
    export_and_verify("trace_aff", &aff, opts.verbose);

    println!("\ntraces written to target/experiments/trace_*.{{jsonl,json}}");
}

/// Writes one run's trace as JSONL + Chrome JSON, validates it, and
/// asserts the adaptation story reconstructs exactly from the events.
fn export_and_verify(name: &str, report: &ExecutionReport, verbose: bool) {
    let trace = report
        .trace
        .as_ref()
        .expect("tracing was enabled, report must carry a trace");
    let events = trace.events();

    let violations = obs::validate(&events);
    assert!(
        violations.is_empty(),
        "{name}: trace invariant violations: {violations:?}"
    );
    assert_eq!(trace.dropped(), 0, "{name}: trace overflowed its capacity");

    // The decision sequence in the trace must be *exactly* the report's,
    // per adapting process (global order may interleave across threads).
    let from_trace = obs::cycle_decisions(&events);
    let mut processes: Vec<u64> = report.tree.adapt_events.iter().map(|e| e.process).collect();
    processes.sort_unstable();
    processes.dedup();
    for process in processes {
        let traced: Vec<&AdaptEvent> = from_trace.iter().filter(|e| e.process == process).collect();
        let reported: Vec<&AdaptEvent> = report
            .tree
            .adapt_events
            .iter()
            .filter(|e| e.process == process)
            .collect();
        assert_eq!(
            traced, reported,
            "{name}: node {process} adaptation sequence diverges from report"
        );
    }

    // Final fanout replays from lifecycle events alone.
    if let Some(level1) = report.tree.levels.get(1) {
        assert_eq!(
            obs::final_alive_at_level(&events, 1),
            level1.alive,
            "{name}: level-1 fanout replay diverges from snapshot"
        );
    }

    let jsonl_path = format!("target/experiments/{name}.jsonl");
    std::fs::File::create(&jsonl_path)
        .and_then(|mut f| f.write_all(trace.to_jsonl().as_bytes()))
        .expect("write JSONL");
    let chrome_path = format!("target/experiments/{name}.json");
    std::fs::File::create(&chrome_path)
        .and_then(|mut f| f.write_all(trace.to_chrome_json().as_bytes()))
        .expect("write Chrome JSON");

    let cycles = from_trace.len();
    let calls = events
        .iter()
        .filter(|e| matches!(e.kind, wsmed_core::TraceEventKind::CallDispatched { .. }))
        .count();
    println!(
        "{name:<14} {:>6} events ({cycles} cycles, {calls} dispatches)  rows {:>4}  -> {jsonl_path}",
        events.len(),
        report.rows.len()
    );
    if verbose {
        for line in obs::replay_transcript(&events).lines() {
            println!("    {line}");
        }
    }
}

/// `--check`: parse + validate a JSONL trace file; returns the exit code.
fn check_file(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let violations = obs::validate_jsonl(&text);
    if violations.is_empty() {
        let events = text.lines().filter(|l| !l.trim().is_empty()).count();
        println!("{path}: {events} events, stream well-formed");
        0
    } else {
        eprintln!("{path}: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        1
    }
}
