//! Regenerates the paper's central-plan baselines (§I, §II, §V):
//!
//! * Query1: > 300 sequential web service calls, 244.8 s (Fig. 16 text);
//! * Query2: > 5000 sequential web service calls, 2412.95 s (Fig. 17 text);
//! * Query1 returns ≈ 360 result tuples; Query2 finds USAF Academy's zip.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin central_baseline -- --full
//! ```

use wsmed_bench::{compare, csv_row, csv_writer, run_central, HarnessOpts};
use wsmed_core::paper;
use wsmed_services::calibration;

fn main() {
    let opts = HarnessOpts::parse(0.002, true);
    println!(
        "== central baselines (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let setup = opts.setup();
    let (path, mut csv) = csv_writer(
        "central_baseline.csv",
        "query,model_secs,paper_secs,rows,ws_calls",
    );

    let q1 = run_central(&setup.wsmed, paper::QUERY1_SQL, opts.scale);
    println!("Query1 central plan:");
    compare(
        "execution time (model s)",
        q1.model_secs,
        calibration::PAPER_Q1_CENTRAL_SECS,
    );
    println!(
        "  web service calls: {} (paper: >300)   result tuples: {} (paper: 360)",
        q1.report.ws_calls,
        q1.report.row_count()
    );
    assert!(
        q1.report.ws_calls > 300,
        "Query1 must make >300 calls on the full dataset"
    );
    csv_row(
        &mut csv,
        &format!(
            "Query1,{:.2},{},{},{}",
            q1.model_secs,
            calibration::PAPER_Q1_CENTRAL_SECS,
            q1.report.row_count(),
            q1.report.ws_calls
        ),
    );

    let q2 = run_central(&setup.wsmed, paper::QUERY2_SQL, opts.scale);
    println!("Query2 central plan:");
    compare(
        "execution time (model s)",
        q2.model_secs,
        calibration::PAPER_Q2_CENTRAL_SECS,
    );
    println!(
        "  web service calls: {} (paper: >5000 on the full dataset)   rows: {:?}",
        q2.report.ws_calls, q2.report.rows
    );
    if opts.full {
        assert!(
            q2.report.ws_calls > 5000,
            "Query2 must make >5000 calls on the full dataset"
        );
    }
    assert_eq!(
        q2.report.row_count(),
        1,
        "Query2 finds exactly USAF Academy"
    );
    csv_row(
        &mut csv,
        &format!(
            "Query2,{:.2},{},{},{}",
            q2.model_secs,
            calibration::PAPER_Q2_CENTRAL_SECS,
            q2.report.row_count(),
            q2.report.ws_calls
        ),
    );

    println!("CSV written to {}", path.display());
}
