//! Ablation: `AFF_APPLYP` monitoring-threshold sensitivity.
//!
//! §V.A: "We experimented with different values of p and different change
//! thresholds" — the paper reports only the 25% setting. This sweep varies
//! the threshold (with the paper's recommended p=2, no drop stage) to show
//! the trade-off the 25% choice sits on:
//!
//! * a low threshold keeps adding children on marginal improvements —
//!   bigger trees, more startup cost;
//! * a high threshold stops early — smaller trees, possibly under-parallel.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin threshold_sweep
//! ```

use wsmed_bench::{csv_row, csv_writer, run_adaptive, run_parallel, HarnessOpts};
use wsmed_core::{paper, AdaptiveConfig};
use wsmed_services::calibration;

fn main() {
    let opts = HarnessOpts::parse(0.002, true);
    println!(
        "== AFF_APPLYP threshold sweep, Query1 (scale {}, p=2, no drop) ==",
        opts.scale
    );
    let setup = opts.setup();
    let (path, mut csv) = csv_writer(
        "threshold_sweep.csv",
        "threshold,model_secs,pct_of_best,processes,adds",
    );

    let (bf1, bf2) = calibration::PAPER_Q1_BEST_FANOUT;
    let manual = run_parallel(&setup.wsmed, paper::QUERY1_SQL, &vec![bf1, bf2], opts.scale);
    println!(
        "best manual {{{bf1},{bf2}}}: {:.1} model-s\n",
        manual.model_secs
    );
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>6}",
        "threshold", "model-s", "% of best", "procs", "adds"
    );

    for threshold in [0.05, 0.10, 0.25, 0.50, 0.75] {
        let config = AdaptiveConfig {
            add_step: 2,
            drop_enabled: false,
            threshold,
            ..Default::default()
        };
        let t = run_adaptive(&setup.wsmed, paper::QUERY1_SQL, &config, opts.scale);
        let pct = 100.0 * manual.model_secs / t.model_secs;
        let procs = t.report.tree.total_alive();
        println!(
            "{:>9.0}% {:>12.1} {:>9.0}% {:>10} {:>6}",
            threshold * 100.0,
            t.model_secs,
            pct,
            procs,
            t.report.tree.adds
        );
        csv_row(
            &mut csv,
            &format!(
                "{threshold},{:.2},{pct:.1},{procs},{}",
                t.model_secs, t.report.tree.adds
            ),
        );
    }
    println!("\nCSV written to {}", path.display());
}
