//! Ablation: the **warm process-tree pool** over repeated Query2
//! executions.
//!
//! The paper's §IV cost model charges every spawned query process a fixed
//! startup cost plus shipping its plan function, which is why wide fanouts
//! only pay off on long parameter streams. A mediator answering a query
//! *workload* — the same plan executed again and again — re-pays that tree
//! construction on every run. The warm pool parks idle query processes
//! (plan function still installed) at end of run and re-attaches them to
//! the next execution, so only run 1 pays for the tree.
//!
//! Two modes over K repeated executions of the fixed-fanout Query2 plan:
//!
//! * `cold` — pool installed but disabled: every run spawns every process
//!   (and is charged the modeled startup + plan-ship cost);
//! * `warm` — pool enabled: runs ≥ 2 acquire the whole parked tree.
//!
//! Claims asserted in-binary:
//! * every mode and run returns the same result multiset;
//! * `cold` mode charges modeled process startup every run;
//! * `warm` mode charges **zero** modeled startup (zero cold spawns —
//!   `cold_spawns` counts exactly the `process_startup` charges) on every
//!   run after the first, acquiring the full tree warm instead;
//! * the modeled seconds saved per warm run equal the startup + plan-ship
//!   cost the first run was charged for the same tree.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin pool_ablation -- --full
//! ```

use wsmed_bench::{csv_row, csv_writer, HarnessOpts, Timed};
use wsmed_core::{paper, FanoutVector, PoolPolicy, PoolStats, Wsmed};
use wsmed_store::{canonicalize, Tuple};

/// Executions per mode: run 1 builds the tree, the rest measure reuse.
const RUNS: usize = 4;

/// Finds the fanout vector length the parallelizer expects for `sql` by
/// compiling (not executing) with growing vectors.
fn discover_fanouts(w: &Wsmed, sql: &str, per_level: usize) -> Option<FanoutVector> {
    for levels in 1..=4 {
        let candidate: FanoutVector = vec![per_level; levels];
        if w.explain(sql, Some(&candidate)).is_ok() {
            return Some(candidate);
        }
    }
    None
}

struct Cell {
    mode: &'static str,
    run: usize,
    model_secs: f64,
    pool: PoolStats,
    blocked_send_ms: f64,
    rows: Vec<Tuple>,
}

fn run_mode(
    opts: &HarnessOpts,
    mode: &'static str,
    enabled: bool,
    fanouts: &FanoutVector,
    csv: &mut std::fs::File,
) -> Vec<Cell> {
    let mut setup = opts.setup();
    // Both modes install a pool so `cold_spawns` (= modeled startup
    // charges) is counted either way; only `enabled` differs.
    setup.wsmed.set_pool_policy(Some(PoolPolicy {
        enabled,
        ..Default::default()
    }));
    (1..=RUNS)
        .map(|run| {
            let t: Timed =
                wsmed_bench::run_parallel(&setup.wsmed, paper::QUERY2_SQL, fanouts, opts.scale);
            let cell = Cell {
                mode,
                run,
                model_secs: t.model_secs,
                pool: t.report.pool,
                blocked_send_ms: t.report.tree.total_blocked_send().as_secs_f64() * 1e3,
                rows: t.report.rows,
            };
            println!(
                "  {mode:>4} run {run}: {:>6.1} model-s, {:>2} warm / {:>2} cold, \
                 {:>5.2} model-s startup saved, {} eviction(s)",
                cell.model_secs,
                cell.pool.warm_acquires,
                cell.pool.cold_spawns,
                cell.pool.startup_model_secs_saved,
                cell.pool.evictions,
            );
            csv_row(
                csv,
                &format!(
                    "{mode},{run},{:.2},{},{},{:.4},{},{:.3},{}",
                    cell.model_secs,
                    cell.pool.warm_acquires,
                    cell.pool.cold_spawns,
                    cell.pool.startup_model_secs_saved,
                    cell.pool.evictions,
                    cell.blocked_send_ms,
                    cell.rows.len(),
                ),
            );
            cell
        })
        .collect()
}

fn main() {
    let opts = HarnessOpts::parse(0.0015, false);
    println!(
        "== pool ablation: warm vs cold process trees, {RUNS}× Query2 (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let setup = opts.setup();
    let fanouts = discover_fanouts(&setup.wsmed, paper::QUERY2_SQL, 4)
        .expect("Query2 must have parallelizable sections");
    println!(
        "fanout vector {fanouts:?} ({} parallel level(s))\n",
        fanouts.len()
    );
    drop(setup);

    let (path, mut csv) = csv_writer(
        "pool_ablation.csv",
        "mode,run,model_secs,warm_acquires,cold_spawns,startup_model_secs_saved,evictions,\
         blocked_send_ms,rows",
    );

    let cold = run_mode(&opts, "cold", false, &fanouts, &mut csv);
    let warm = run_mode(&opts, "warm", true, &fanouts, &mut csv);

    // ---- claims -----------------------------------------------------------
    let reference = canonicalize(cold[0].rows.clone());
    for cell in cold.iter().chain(&warm) {
        assert_eq!(
            canonicalize(cell.rows.clone()),
            reference,
            "{} run {} changed the result multiset",
            cell.mode,
            cell.run
        );
    }

    for cell in &cold {
        assert!(
            cell.pool.cold_spawns > 0,
            "cold run {} spawned nothing?",
            cell.run
        );
        assert_eq!(cell.pool.warm_acquires, 0, "disabled pool went warm");
    }

    let tree_size = warm[0].pool.cold_spawns;
    assert!(tree_size > 0, "warm run 1 must build the tree cold");
    for cell in &warm[1..] {
        // `cold_spawns` counts exactly the modeled `process_startup`
        // charges, so zero here means zero startup (and plan-ship) cost.
        assert_eq!(
            cell.pool.cold_spawns, 0,
            "warm run {} was charged process startup",
            cell.run
        );
        assert!(
            cell.pool.warm_acquires > 0,
            "warm run {} acquired nothing from the pool",
            cell.run
        );
        assert!(
            cell.pool.startup_model_secs_saved > 0.0,
            "warm run {} saved no modeled startup cost",
            cell.run
        );
    }

    let saved_per_run = warm[1].pool.startup_model_secs_saved;
    println!(
        "\ntree of {tree_size} processes; each warm run skips {saved_per_run:.2} model-s \
         of startup + plan shipping"
    );
    if opts.scale > 0.0 {
        let cold_rest: f64 = cold[1..].iter().map(|c| c.model_secs).sum();
        let warm_rest: f64 = warm[1..].iter().map(|c| c.model_secs).sum();
        println!(
            "steady state (runs 2..{RUNS}): cold {cold_rest:.1} model-s, \
             warm {warm_rest:.1} model-s"
        );
    }

    println!("\nall pool claims hold; CSV written to {}", path.display());
}
