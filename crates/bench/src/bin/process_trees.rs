//! Regenerates the paper's process-tree illustrations as text:
//!
//! * Fig. 4 — a two-level tree with fanouts {2, 3};
//! * Fig. 14 — the flat tree `{fo1, 0}` (both OWFs in one plan function);
//! * Fig. 15 — an unbalanced tree (`fo1 ≠ fo2`);
//! * Fig. 18–20 — the adaptive lifecycle: binary init, add stages, and
//!   (with the drop stage enabled) dropped subtrees.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin process_trees
//! ```

use wsmed_bench::{run_adaptive, run_parallel, HarnessOpts};
use wsmed_core::{paper, AdaptiveConfig};

fn main() {
    let opts = HarnessOpts::parse(0.001, false);
    let setup = opts.setup();
    let w = &setup.wsmed;

    println!("== compiled plans (paper Fig. 9) ==");
    println!(
        "{}",
        w.explain(paper::QUERY1_SQL, Some(&vec![2, 3]))
            .expect("explain Query1")
    );

    println!("== Fig. 4: balanced-ish tree {{2,3}} ==");
    let t = run_parallel(w, paper::QUERY1_SQL, &vec![2, 3], opts.scale);
    println!("final tree: {}", t.report.tree.describe());
    print!("{}", t.report.tree.render_ascii());
    println!();
    assert_eq!(t.report.tree.levels[1].alive, 2);
    assert_eq!(t.report.tree.levels[2].alive, 6);

    println!("== Fig. 14: flat tree {{4,0}} ==");
    let t = run_parallel(w, paper::QUERY1_SQL, &vec![4, 0], opts.scale);
    println!("final tree: {}\n", t.report.tree.describe());
    assert_eq!(
        t.report.tree.levels.len(),
        2,
        "flat tree has a single level"
    );

    println!("== Fig. 15: unbalanced tree {{2,6}} ==");
    let t = run_parallel(w, paper::QUERY1_SQL, &vec![2, 6], opts.scale);
    println!("final tree: {}\n", t.report.tree.describe());
    assert_eq!(t.report.tree.levels[2].alive, 12);

    println!("== Fig. 18/19: AFF init (binary) + add stages, p=1, no drop ==");
    let cfg = AdaptiveConfig {
        add_step: 1,
        drop_enabled: false,
        ..Default::default()
    };
    let t = run_adaptive(w, paper::QUERY1_SQL, &cfg, opts.scale);
    println!(
        "final tree: {} (adds {}, drops {})",
        t.report.tree.describe(),
        t.report.tree.adds,
        t.report.tree.drops
    );
    println!("adaptation trace (first 12 decisions):");
    for event in t.report.tree.adapt_events.iter().take(12) {
        println!(
            "  q{} (level {}): {:>9} at {:.4}s/tuple with {} children",
            event.process, event.level, event.decision, event.per_tuple_secs, event.alive
        );
    }
    println!();
    assert!(t.report.tree.adds >= 2, "at least the binary init happened");

    println!("== Fig. 20: AFF with drop stage, p=2 ==");
    let cfg = AdaptiveConfig {
        add_step: 2,
        drop_enabled: true,
        ..Default::default()
    };
    let t = run_adaptive(w, paper::QUERY1_SQL, &cfg, opts.scale);
    println!(
        "final tree: {} (adds {}, drops {})",
        t.report.tree.describe(),
        t.report.tree.adds,
        t.report.tree.drops
    );
}
