//! Ablation: the **concurrent multi-query mediator** — shared
//! infrastructure vs. sequential runs and vs. unshared mediators.
//!
//! A mediator serving a workload sees *overlapping* queries. This harness
//! poses K copies of a skewed dependent-join query (every parameter chain
//! collapses onto the same provider calls) three ways:
//!
//! * `sequential` — one mediator, K runs back to back;
//! * `concurrent` — one mediator, K runs on K threads sharing its call
//!   cache (cross-query single-flight), warm process pool and breaker
//!   table;
//! * `no-sharing` — K threads, each over its **own** mediator (the
//!   nothing-shared baseline).
//!
//! Claims asserted in-binary:
//! * every arm and run returns the same result multiset;
//! * the concurrent mediator issues **strictly fewer** real provider
//!   calls than the K no-sharing mediators combined (at any scale);
//! * cross-query single-flight actually fires: the K concurrent reports
//!   attribute > 0 cache hits to entries another query produced;
//! * at a non-zero time scale, the K-query concurrent makespan beats K
//!   sequential runs on model time.
//!
//! Writes `multiquery_ablation.csv` and the machine-readable
//! `BENCH_multiquery.json` under `target/experiments/`.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin multiquery_ablation -- --small
//! ```

use std::sync::{Arc, Barrier};
use std::time::Instant;

use wsmed_bench::{csv_row, csv_writer, emit_bench_section, json_num, HarnessOpts};
use wsmed_core::{paper, ExecutionReport, FanoutVector, Wsmed};
use wsmed_store::{canonicalize, Tuple};

/// Concurrent queries per arm.
const K: usize = 4;

/// A skewed Query2 variant: the state is pinned to 'CO', so all K queries
/// (and all 51 cartesian rows within each) chase the *same* dependent
/// call chain — the best case for cross-query single-flight, and the
/// worst case for mediators that share nothing.
const SKEWED_SQL: &str = "select gp.ToState, gp.zip \
    From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
    Where gi.USState='CO' and gi.GetInfoByStateResult=gc.zipstr \
      and gc.zipcode=gp.zip and gp.ToPlace='USAF Academy'";

/// Finds the fanout vector length the parallelizer expects for `sql`.
fn discover_fanouts(w: &Wsmed, sql: &str, per_level: usize) -> Option<FanoutVector> {
    for levels in 1..=4 {
        let candidate: FanoutVector = vec![per_level; levels];
        if w.explain(sql, Some(&candidate)).is_ok() {
            return Some(candidate);
        }
    }
    None
}

/// One mediator wired for the experiment: default per-run call cache
/// (sharing across queries comes only from actual concurrency) and a warm
/// process pool.
fn mediator(opts: &HarnessOpts) -> paper::PaperSetup {
    let mut setup = opts.setup();
    setup.wsmed.enable_call_cache(true);
    setup.wsmed.enable_process_pool(true);
    setup
}

struct ArmResult {
    label: &'static str,
    /// Wall seconds from first dispatch to last completion.
    makespan_wall: f64,
    /// Real calls that reached the simulated providers.
    provider_calls: u64,
    reports: Vec<ExecutionReport>,
}

impl ArmResult {
    fn makespan_model(&self, scale: f64) -> f64 {
        if scale > 0.0 {
            self.makespan_wall / scale
        } else {
            f64::NAN
        }
    }

    fn cross_query_hits(&self) -> u64 {
        self.reports.iter().map(|r| r.cache.cross_query_hits).sum()
    }
}

fn run_sequential(opts: &HarnessOpts, fanouts: &FanoutVector) -> ArmResult {
    let setup = mediator(opts);
    let plan = setup
        .wsmed
        .compile_parallel(SKEWED_SQL, fanouts)
        .expect("skewed query compiles");
    let calls_before = setup.network.total_metrics().calls;
    let t0 = Instant::now();
    let reports: Vec<ExecutionReport> = (0..K)
        .map(|_| setup.wsmed.execute(&plan).expect("sequential run"))
        .collect();
    ArmResult {
        label: "sequential",
        makespan_wall: t0.elapsed().as_secs_f64(),
        provider_calls: setup.network.total_metrics().calls - calls_before,
        reports,
    }
}

fn run_concurrent(opts: &HarnessOpts, fanouts: &FanoutVector) -> ArmResult {
    let setup = mediator(opts);
    let plan = setup
        .wsmed
        .compile_parallel(SKEWED_SQL, fanouts)
        .expect("skewed query compiles");
    let calls_before = setup.network.total_metrics().calls;
    // A loaded mediator's cache never goes idle; holding the busy period
    // open models that, so the K runs share entries even if the scheduler
    // happens to serialize them.
    let cache = Arc::clone(setup.wsmed.call_cache().expect("cache enabled"));
    cache.begin_run();
    let barrier = Barrier::new(K);
    let med = &setup.wsmed;
    let t0 = Instant::now();
    let (makespan_wall, reports) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|q| {
                let barrier = &barrier;
                let plan = &plan;
                scope.spawn(move || {
                    barrier.wait();
                    med.execute_for(&format!("tenant-{q}"), plan)
                        .expect("concurrent run")
                })
            })
            .collect();
        let reports: Vec<ExecutionReport> = handles
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect();
        (t0.elapsed().as_secs_f64(), reports)
    });
    cache.end_run();
    ArmResult {
        label: "concurrent",
        makespan_wall,
        provider_calls: setup.network.total_metrics().calls - calls_before,
        reports,
    }
}

fn run_no_sharing(opts: &HarnessOpts, fanouts: &FanoutVector) -> ArmResult {
    let setups: Vec<paper::PaperSetup> = (0..K).map(|_| mediator(opts)).collect();
    let calls_before: u64 = setups.iter().map(|s| s.network.total_metrics().calls).sum();
    let barrier = Barrier::new(K);
    let t0 = Instant::now();
    let (makespan_wall, reports) = std::thread::scope(|scope| {
        let handles: Vec<_> = setups
            .iter()
            .map(|setup| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let plan = setup
                        .wsmed
                        .compile_parallel(SKEWED_SQL, fanouts)
                        .expect("skewed query compiles");
                    barrier.wait();
                    setup.wsmed.execute(&plan).expect("no-sharing run")
                })
            })
            .collect();
        let reports: Vec<ExecutionReport> = handles
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect();
        (t0.elapsed().as_secs_f64(), reports)
    });
    let provider_calls: u64 = setups
        .iter()
        .map(|s| s.network.total_metrics().calls)
        .sum::<u64>()
        - calls_before;
    ArmResult {
        label: "no-sharing",
        makespan_wall,
        provider_calls,
        reports,
    }
}

fn main() {
    let opts = HarnessOpts::parse(0.0015, false);
    println!(
        "== multi-query ablation: {K} skewed queries, shared vs sequential vs unshared \
         (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let probe = opts.setup();
    let fanouts = discover_fanouts(&probe.wsmed, SKEWED_SQL, 2).expect("skewed query parallelizes");
    println!(
        "fanout vector {fanouts:?} ({} parallel level(s))\n",
        fanouts.len()
    );
    drop(probe);

    let arms = [
        run_sequential(&opts, &fanouts),
        run_concurrent(&opts, &fanouts),
        run_no_sharing(&opts, &fanouts),
    ];

    let (path, mut csv) = csv_writer(
        "multiquery_ablation.csv",
        "arm,makespan_model_secs,provider_calls,cross_query_hits,rows_per_query",
    );
    for arm in &arms {
        println!(
            "  {:>10}: {:>7.1} model-s makespan, {:>4} provider call(s), \
             {:>4} cross-query hit(s)",
            arm.label,
            arm.makespan_model(opts.scale),
            arm.provider_calls,
            arm.cross_query_hits(),
        );
        csv_row(
            &mut csv,
            &format!(
                "{},{:.2},{},{},{}",
                arm.label,
                arm.makespan_model(opts.scale),
                arm.provider_calls,
                arm.cross_query_hits(),
                arm.reports[0].rows.len(),
            ),
        );
    }
    let [sequential, concurrent, no_sharing] = &arms;

    // ---- claims -----------------------------------------------------------
    let reference: Vec<Tuple> = canonicalize(sequential.reports[0].rows.clone());
    for arm in &arms {
        assert_eq!(arm.reports.len(), K);
        for (q, report) in arm.reports.iter().enumerate() {
            assert_eq!(
                canonicalize(report.rows.clone()),
                reference,
                "{} query {q} changed the result multiset",
                arm.label
            );
        }
    }

    assert!(
        concurrent.provider_calls < no_sharing.provider_calls,
        "shared mediator must issue strictly fewer real calls \
         ({} vs {} unshared)",
        concurrent.provider_calls,
        no_sharing.provider_calls
    );
    assert!(
        concurrent.cross_query_hits() > 0,
        "cross-query single-flight never fired across {K} identical queries"
    );
    if opts.scale > 0.0 {
        assert!(
            concurrent.makespan_wall < sequential.makespan_wall,
            "concurrent makespan {:.2}s must beat {K} sequential runs {:.2}s",
            concurrent.makespan_wall,
            sequential.makespan_wall
        );
    }

    let json = format!(
        "{{\"k\": {K}, \"scale\": {}, \
         \"sequential_makespan_model_secs\": {}, \
         \"concurrent_makespan_model_secs\": {}, \
         \"no_sharing_makespan_model_secs\": {}, \
         \"concurrent_speedup_vs_sequential\": {}, \
         \"sequential_provider_calls\": {}, \
         \"concurrent_provider_calls\": {}, \
         \"no_sharing_provider_calls\": {}, \
         \"call_reduction_vs_no_sharing\": {}, \
         \"cross_query_hits\": {}}}",
        json_num(opts.scale),
        json_num(sequential.makespan_model(opts.scale)),
        json_num(concurrent.makespan_model(opts.scale)),
        json_num(no_sharing.makespan_model(opts.scale)),
        json_num(sequential.makespan_wall / concurrent.makespan_wall),
        sequential.provider_calls,
        concurrent.provider_calls,
        no_sharing.provider_calls,
        json_num(concurrent.provider_calls as f64 / no_sharing.provider_calls as f64),
        concurrent.cross_query_hits(),
    );
    let summary = emit_bench_section(
        "BENCH_multiquery.json",
        "multiquery",
        Some(opts.scale),
        &json,
    );

    println!(
        "\nall multi-query claims hold; CSV written to {}, summary to {}",
        path.display(),
        summary.display()
    );
}
