//! Ablation: the **cost-based parallel planner** and **semi-join parameter
//! pruning** vs. the paper's static heuristic plans.
//!
//! The paper parallelizes with a fixed recipe — calculus atom order, one
//! process-tree level per parallelizable OWF, binary fanouts. The planner
//! instead costs binding-valid join orderings × section merges × fanout
//! vectors against calibrated provider statistics, and (with pruning on)
//! pushes learned empty-parameter sets into plan functions so dependent
//! calls that cannot produce rows are never issued.
//!
//! Claims asserted in-binary:
//! * `PlannerPolicy::default()` plans **byte-identical** to the paper's
//!   heuristic (`compile_parallel` with binary fanouts) — plan equality
//!   and equal wire encodings of every shipped plan function;
//! * on two query shapes (Query1, Query2) the cost-based plan's estimated
//!   model-time makespan **strictly beats** the heuristic default's under
//!   the same calibrated statistics — and both plans return the same
//!   result multiset;
//! * on the filtered Query3 chain, semi-join pruning **strictly reduces**
//!   dependent provider calls on a repeat run (learned empties dropped
//!   parent-side, cache disabled so every shipped parameter would call)
//!   while the result multiset stays unchanged.
//!
//! Writes `plan_ablation.csv` and the machine-readable `BENCH_plan.json`
//! under `target/experiments/`.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin plan_ablation -- --small --scale 0
//! ```

use wsmed_bench::{csv_row, csv_writer, emit_bench_section, json_num, HarnessOpts};
use wsmed_core::{paper, wire, PlanExplanation, PlannerPolicy, QueryPlan};
use wsmed_store::{canonicalize, Tuple};

/// Collects the wire encodings of every plan function in `plan`, depth
/// first — the bytes the coordinator would ship to children.
fn shipped_pf_bytes(plan: &QueryPlan) -> Vec<Vec<u8>> {
    fn walk(op: &wsmed_core::PlanOp, out: &mut Vec<Vec<u8>>) {
        if let wsmed_core::PlanOp::FfApply { pf, .. } | wsmed_core::PlanOp::AffApply { pf, .. } = op
        {
            out.push(wire::encode_plan_function(pf).as_ref().to_vec());
            walk(&pf.body, out);
        }
        if let Some(input) = op.input() {
            walk(input, out);
        }
    }
    let mut out = Vec::new();
    walk(&plan.root, &mut out);
    out
}

fn sorted_bag(rows: &[Tuple]) -> Vec<Tuple> {
    canonicalize(rows.to_vec())
}

struct ShapeResult {
    query: &'static str,
    explanation: PlanExplanation,
    heuristic_secs: f64,
    cost_secs: f64,
    heuristic_calls: u64,
    cost_calls: u64,
    rows: usize,
}

/// One query shape: plan heuristically and cost-based over the same
/// calibrated statistics, execute both on fresh mediators, and assert the
/// cost-based estimate strictly improves while the result bag is equal.
fn run_shape(opts: &HarnessOpts, query: &'static str, sql: &str) -> ShapeResult {
    // Heuristic arm — also the byte-identity check against the paper's
    // manual parallelization.
    let setup = opts.setup();
    let med = &setup.wsmed;
    assert_eq!(med.planner_policy(), PlannerPolicy::Heuristic);
    let (heuristic_plan, heuristic_expl) = med
        .plan_query_explained(sql)
        .expect("heuristic planning succeeds");
    let levels = med.parallel_levels(sql).expect("level count");
    let manual = med
        .compile_parallel(sql, &vec![2; levels])
        .expect("manual binary-fanout plan compiles");
    assert_eq!(
        heuristic_plan, manual,
        "{query}: PlannerPolicy::default() must reproduce the paper's plan"
    );
    assert_eq!(
        shipped_pf_bytes(&heuristic_plan),
        shipped_pf_bytes(&manual),
        "{query}: heuristic plan functions must encode byte-identically"
    );
    let calls0 = setup.network.total_metrics().calls;
    let heuristic_report = med
        .execute(&heuristic_plan)
        .expect("heuristic run succeeds");
    let heuristic_calls = setup.network.total_metrics().calls - calls0;

    // Cost-based arm on a fresh world (same seed, same dataset) so provider
    // metrics and model time are not polluted by the heuristic run.
    let setup = opts.setup();
    let med = &setup.wsmed;
    med.set_planner_policy(PlannerPolicy::CostBased { prune: false });
    let (cost_plan, cost_expl) = med
        .plan_query_explained(sql)
        .expect("cost-based planning succeeds");
    assert!(
        cost_expl.cost.makespan_est() < cost_expl.heuristic_cost.makespan_est(),
        "{query}: cost-based estimate must strictly beat the heuristic \
         ({:.2}s vs {:.2}s)",
        cost_expl.cost.makespan_est(),
        cost_expl.heuristic_cost.makespan_est()
    );
    let calls0 = setup.network.total_metrics().calls;
    let cost_report = med.execute(&cost_plan).expect("cost-based run succeeds");
    let cost_calls = setup.network.total_metrics().calls - calls0;

    assert_eq!(
        sorted_bag(&heuristic_report.rows),
        sorted_bag(&cost_report.rows),
        "{query}: cost-based plan must return the heuristic's result bag"
    );

    ShapeResult {
        query,
        heuristic_secs: heuristic_expl.cost.makespan_est(),
        cost_secs: cost_expl.cost.makespan_est(),
        explanation: cost_expl,
        heuristic_calls,
        cost_calls,
        rows: heuristic_report.rows.len(),
    }
}

struct PruneResult {
    unpruned_calls: u64,
    pruned_calls: u64,
    pruned_params: u64,
    prune_sections: usize,
    rows: usize,
}

/// The semi-join pruning arm on Query3's filtered chain: plan **once**
/// (section keys must match between the observing and the pruned run),
/// observe an execution, fold the learned empty-parameter sets back into
/// the same plan, and re-run.
fn run_prune(opts: &HarnessOpts) -> PruneResult {
    let setup = opts.setup();
    let med = &setup.wsmed;
    // No call cache: every shipped parameter reaches a provider, so the
    // call delta below measures pruning and nothing else.
    med.set_planner_policy(PlannerPolicy::CostBased { prune: true });
    let (plan, _) = med
        .plan_query_explained(paper::QUERY3_SQL)
        .expect("query3 plans");

    // Run 1 — observe. Drop lists are empty on a cold stats store, so this
    // run prunes nothing; children report deterministically-empty
    // parameters under their section keys.
    let calls0 = setup.network.total_metrics().calls;
    let report1 = med.execute(&plan).expect("observing run succeeds");
    let unpruned_calls = setup.network.total_metrics().calls - calls0;
    assert_eq!(report1.pruned_params, 0, "cold stats must prune nothing");
    assert!(
        med.planner_stats().sections_with_empties() > 0,
        "the Status='Delayed' filter must yield empty parameter chains"
    );

    // Fold observations into the *same* plan object and re-run.
    let mut pruned_plan = plan.clone();
    let prune_sections = wsmed_core::planner::annotate_prune(&mut pruned_plan, med.planner_stats());
    let annotated: usize = prune_sections.iter().map(|(_, n)| n).sum();
    assert!(annotated > 0, "observed empties must annotate the plan");
    let calls0 = setup.network.total_metrics().calls;
    let report2 = med.execute(&pruned_plan).expect("pruned run succeeds");
    let pruned_calls = setup.network.total_metrics().calls - calls0;

    assert!(
        report2.pruned_params > 0,
        "the pruned run must drop parameters parent-side"
    );
    assert!(
        pruned_calls < unpruned_calls,
        "pruning must strictly reduce dependent provider calls \
         ({pruned_calls} vs {unpruned_calls})"
    );
    assert_eq!(
        sorted_bag(&report1.rows),
        sorted_bag(&report2.rows),
        "pruning empty parameter chains must not change the result bag"
    );

    PruneResult {
        unpruned_calls,
        pruned_calls,
        pruned_params: report2.pruned_params,
        prune_sections: prune_sections.iter().filter(|(_, n)| *n > 0).count(),
        rows: report2.rows.len(),
    }
}

fn main() {
    let opts = HarnessOpts::parse(0.0, false);
    println!(
        "== cost-based planner vs. the paper's heuristic (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );

    let (path, mut csv) = csv_writer(
        "plan_ablation.csv",
        "query,policy,est_makespan_secs,ws_calls,rows",
    );

    let mut shapes = Vec::new();
    for (query, sql) in [("query1", paper::QUERY1_SQL), ("query2", paper::QUERY2_SQL)] {
        let shape = run_shape(&opts, query, sql);
        println!(
            "{query}: est makespan {:.2}s heuristic -> {:.2}s cost-based \
             ({} orderings, {} candidates searched), {} rows",
            shape.heuristic_secs,
            shape.cost_secs,
            shape.explanation.orderings_considered,
            shape.explanation.candidates_considered,
            shape.rows
        );
        for line in shape.explanation.to_string().lines() {
            println!("    {line}");
        }
        csv_row(
            &mut csv,
            &format!(
                "{query},heuristic,{},{},{}",
                json_num(shape.heuristic_secs),
                shape.heuristic_calls,
                shape.rows
            ),
        );
        csv_row(
            &mut csv,
            &format!(
                "{query},cost,{},{},{}",
                json_num(shape.cost_secs),
                shape.cost_calls,
                shape.rows
            ),
        );
        shapes.push(shape);
    }

    let prune = run_prune(&opts);
    println!(
        "query3 pruning: {} -> {} provider calls ({} params dropped across \
         {} sections), {} rows unchanged",
        prune.unpruned_calls,
        prune.pruned_calls,
        prune.pruned_params,
        prune.prune_sections,
        prune.rows
    );
    csv_row(
        &mut csv,
        &format!(
            "query3,cost+prune,null,{},{}",
            prune.pruned_calls, prune.rows
        ),
    );

    let shapes_json: Vec<String> = shapes
        .iter()
        .map(|s| {
            format!(
                "{{\"query\": \"{}\", \"heuristic_est_secs\": {}, \"cost_est_secs\": {}, \
                 \"improvement\": {}, \"heuristic_ws_calls\": {}, \"cost_ws_calls\": {}, \
                 \"rows\": {}}}",
                s.query,
                json_num(s.heuristic_secs),
                json_num(s.cost_secs),
                json_num(s.heuristic_secs / s.cost_secs),
                s.heuristic_calls,
                s.cost_calls,
                s.rows
            )
        })
        .collect();
    let json = format!(
        "{{\"shapes\": [{}], \"prune\": {{\"unpruned_ws_calls\": {}, \
         \"pruned_ws_calls\": {}, \"pruned_params\": {}, \"sections\": {}, \"rows\": {}}}}}",
        shapes_json.join(", "),
        prune.unpruned_calls,
        prune.pruned_calls,
        prune.pruned_params,
        prune.prune_sections,
        prune.rows
    );
    let summary = emit_bench_section("BENCH_plan.json", "plan", Some(opts.scale), &json);

    println!(
        "\nall planner claims hold; CSV written to {}, summary to {}",
        path.display(),
        summary.display()
    );
}
