//! Ablation: **vectorized tuple shipping** (batch size × fanout).
//!
//! The paper ships every parameter and result tuple as its own message
//! (batch = 1). This harness sweeps the [`wsmed_core::BatchPolicy`] batch
//! size against fanout trees for Query1 and Query2 and reports, per cell:
//! parent↔child messages, bytes shipped between query processes,
//! first-row latency and total model time — each versus the batch = 1
//! baseline of the same tree.
//!
//! Claims asserted in-binary:
//! * batching is semantically invisible: every cell returns the batch = 1
//!   result multiset;
//! * at the paper's best Query2 tree `{4,3}`, batch = 64 sends ≥ 10×
//!   fewer messages than batch = 1, at no cost in total model time;
//! * the `flush_model_secs` staleness flush keeps Query1's first-row
//!   latency within 2× of the streaming (batch = 1) behaviour;
//! * the structured-trace hooks (`wsmed_core::obs`) cost nothing when
//!   `TracePolicy` is disabled (the default): re-measuring the Query2
//!   `{4,3}` batch = 1 cell with tracing explicitly disabled lands
//!   within 1% of the sweep's own measurement of the same cell.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin batch_ablation -- --full
//! ```

use wsmed_bench::{csv_row, csv_writer, emit_bench_section, json_num, HarnessOpts, Timed};
use wsmed_core::{paper, BatchPolicy};
use wsmed_services::calibration;
use wsmed_store::{canonicalize, Tuple};

const BATCH_SIZES: [usize; 3] = [1, 8, 64];

/// One measured cell of the sweep.
struct Cell {
    batch: usize,
    messages: u64,
    shipped: u64,
    first_row_model: Option<f64>,
    model_secs: f64,
    rows: Vec<Tuple>,
}

fn run_cell(
    setup: &mut paper::PaperSetup,
    sql: &str,
    fanouts: &[usize],
    batch: usize,
    scale: f64,
) -> Cell {
    setup.wsmed.set_batch_policy(BatchPolicy::uniform(batch));
    let t: Timed = wsmed_bench::run_parallel(&setup.wsmed, sql, &fanouts.to_vec(), scale);
    Cell {
        batch,
        messages: t.report.messages,
        shipped: t.report.shipped_bytes,
        first_row_model: t
            .report
            .first_row_wall
            .map(|d| d.as_secs_f64() / scale.max(f64::MIN_POSITIVE)),
        model_secs: t.model_secs,
        rows: t.report.rows,
    }
}

fn sweep(
    setup: &mut paper::PaperSetup,
    query: &str,
    sql: &str,
    trees: &[(usize, usize)],
    scale: f64,
    verbose: bool,
    csv: &mut std::fs::File,
) -> Vec<((usize, usize), Vec<Cell>)> {
    let mut out = Vec::new();
    for &(fo1, fo2) in trees {
        let mut cells: Vec<Cell> = Vec::new();
        for batch in BATCH_SIZES {
            let cell = run_cell(setup, sql, &[fo1, fo2], batch, scale);
            let base = cells.first();
            let msg_ratio = base.map_or(1.0, |b| b.messages as f64 / cell.messages as f64);
            if verbose || batch != 1 {
                println!(
                    "  {query} {{{fo1},{fo2}}} batch {batch:>3}: {:>6} msgs (÷{msg_ratio:.1}), \
                     {:>8} B shipped, first row {}, {:.1} model-s",
                    cell.messages,
                    cell.shipped,
                    cell.first_row_model
                        .map_or("   n/a".into(), |s| format!("{s:>6.2}s")),
                    cell.model_secs,
                );
            }
            csv_row(
                csv,
                &format!(
                    "{query},{fo1},{fo2},{batch},{},{},{},{:.2},{}",
                    cell.messages,
                    cell.shipped,
                    cell.first_row_model
                        .map_or(String::new(), |s| format!("{s:.3}")),
                    cell.model_secs,
                    cell.rows.len(),
                ),
            );
            if let Some(base) = base {
                assert_eq!(
                    canonicalize(cell.rows.clone()),
                    canonicalize(base.rows.clone()),
                    "{query} {{{fo1},{fo2}}} batch {batch} changed the result multiset"
                );
            }
            cells.push(cell);
        }
        out.push(((fo1, fo2), cells));
    }
    out
}

fn main() {
    let opts = HarnessOpts::parse(0.0015, true);
    println!(
        "== batch ablation: vectorized tuple shipping (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let mut setup = opts.setup();
    let (path, mut csv) = csv_writer(
        "batch_ablation.csv",
        "query,fo1,fo2,batch,messages,shipped_bytes,first_row_model_s,model_secs,rows",
    );

    let q1_best = calibration::PAPER_Q1_BEST_FANOUT;
    let q2_best = calibration::PAPER_Q2_BEST_FANOUT;
    let q1_trees = [(2, 1), q1_best];
    let q2_trees = [(2, 1), q2_best];

    println!(
        "\nQuery1 (paper best tree {{{},{}}}):",
        q1_best.0, q1_best.1
    );
    let q1 = sweep(
        &mut setup,
        "query1",
        paper::QUERY1_SQL,
        &q1_trees,
        opts.scale,
        opts.verbose,
        &mut csv,
    );
    println!(
        "\nQuery2 (paper best tree {{{},{}}}):",
        q2_best.0, q2_best.1
    );
    let q2 = sweep(
        &mut setup,
        "query2",
        paper::QUERY2_SQL,
        &q2_trees,
        opts.scale,
        opts.verbose,
        &mut csv,
    );

    // ---- claims -----------------------------------------------------------
    let (_, q2_cells) = q2.iter().find(|(t, _)| *t == q2_best).expect("{4,3} swept");
    let base = &q2_cells[0];
    let b64 = q2_cells.iter().find(|c| c.batch == 64).expect("batch 64");
    let msg_ratio = base.messages as f64 / b64.messages as f64;
    println!(
        "\nQuery2 {{{},{}}}: batch 64 sends {:.1}× fewer messages ({} → {}), \
         model time {:.1} → {:.1} s",
        q2_best.0,
        q2_best.1,
        msg_ratio,
        base.messages,
        b64.messages,
        base.model_secs,
        b64.model_secs,
    );
    // The 10× figure is calibrated on the paper dataset; the small smoke
    // dataset has shorter parameter streams, so only require 2× there.
    let min_msg_ratio = if opts.full { 10.0 } else { 2.0 };
    assert!(
        msg_ratio >= min_msg_ratio,
        "batch 64 must cut Query2 {{4,3}} messages ≥{min_msg_ratio}× (got {msg_ratio:.1}×)"
    );
    // Timing claims need a real clock: at scale 0 nothing sleeps and model
    // time is not meaningful, so only the message/result claims apply.
    if opts.scale > 0.0 {
        assert!(
            b64.model_secs <= base.model_secs * 1.05,
            "batching must not slow Query2 {{4,3}} down: {:.1}s vs baseline {:.1}s",
            b64.model_secs,
            base.model_secs
        );

        let (_, q1_cells) = q1.iter().find(|(t, _)| *t == q1_best).expect("{5,4} swept");
        let q1_base_first = q1_cells[0].first_row_model.expect("batch 1 first row");
        for cell in &q1_cells[1..] {
            let first = cell.first_row_model.expect("batched first row");
            println!(
                "Query1 {{{},{}}} batch {}: first row {first:.2}s vs {q1_base_first:.2}s streamed",
                q1_best.0, q1_best.1, cell.batch,
            );
            assert!(
                first <= q1_base_first * 2.0,
                "staleness flush must keep first-row latency within 2× of streaming \
                 (batch {}: {first:.2}s vs {q1_base_first:.2}s)",
                cell.batch
            );
        }
    }

    // Trace hooks must be invisible while disabled: the disabled path is
    // one atomic load per hook site, so an explicit re-measure of the
    // Query2 {4,3} batch = 1 cell (best of 3, tracing force-disabled)
    // must land within 1% of the sweep's own measurement above.
    if opts.scale > 0.0 {
        setup
            .wsmed
            .set_trace_policy(wsmed_core::TracePolicy::default());
        let best = (0..3)
            .map(|_| {
                run_cell(
                    &mut setup,
                    paper::QUERY2_SQL,
                    &[q2_best.0, q2_best.1],
                    1,
                    opts.scale,
                )
                .model_secs
            })
            .fold(f64::INFINITY, f64::min);
        println!(
            "Query2 {{{},{}}} batch 1 with tracing disabled: {best:.1} model-s              vs {:.1} model-s in-sweep ({:+.2}%)",
            q2_best.0,
            q2_best.1,
            base.model_secs,
            (best / base.model_secs - 1.0) * 100.0,
        );
        assert!(
            best <= base.model_secs * 1.01,
            "disabled trace hooks must cost <1% model time              ({best:.2}s vs {:.2}s baseline)",
            base.model_secs
        );
    }

    // Machine-readable model-time section of BENCH_wire.json: one object
    // per swept cell, mirroring the CSV (model time is null at --scale 0).
    let mut cells_json = Vec::new();
    for (query, sweep) in [("query1", &q1), ("query2", &q2)] {
        for ((fo1, fo2), cells) in sweep {
            for cell in cells {
                cells_json.push(format!(
                    "{{\"query\": \"{query}\", \"fo1\": {fo1}, \"fo2\": {fo2}, \
                     \"batch\": {}, \"messages\": {}, \"shipped_bytes\": {}, \
                     \"model_secs\": {}, \"rows\": {}}}",
                    cell.batch,
                    cell.messages,
                    cell.shipped,
                    json_num(cell.model_secs),
                    cell.rows.len(),
                ));
            }
        }
    }
    let json_path = emit_bench_section(
        "BENCH_wire.json",
        "batch_model_time",
        Some(opts.scale),
        &format!("[{}]", cells_json.join(", ")),
    );

    println!(
        "\nall batching claims hold; CSV written to {}, summary merged into {}",
        path.display(),
        json_path.display()
    );
}
