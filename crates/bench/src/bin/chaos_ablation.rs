//! Ablation: **resilient transport under chaos** on the paper's Query2.
//!
//! The expanded chaos model injects, on the leaf `GetPlacesInside`
//! provider, prompt faults, hangs observable only through a deadline, and
//! an outage window on the provider's model clock. Four configurations run
//! the same parallel Query2:
//!
//! * `pristine`    — no chaos, default (plain) policy: the reference rows;
//! * `defaults`    — an explicitly installed but *inactive* fault spec and
//!   the default policy: must reproduce `pristine` exactly (the resilience
//!   layer is pay-for-what-you-use);
//! * `bare-chaos`  — chaos active, default policy: aborts on the first
//!   exhausted fault, or — if faults happen to spare it — stalls through
//!   full hang latencies;
//! * `resilient`   — chaos active; deadline, retries with jittered
//!   backoff, circuit breaker, hedged requests, and `Partial` degradation.
//!
//! Claims asserted in-binary:
//! * `defaults` returns the `pristine` row multiset with the same web
//!   service call count and an all-quiet [`wsmed_core::ResilienceStats`];
//! * `bare-chaos` errors out, or is charged ≥ 5× the resilient run's
//!   model time (hung calls pay their full stall latency);
//! * `resilient` completes, returns a subset of the `pristine` multiset
//!   with ≥ 95 % of the rows, any shortfall is accounted by
//!   `skipped_params`, and its total charged model time stays within 6×
//!   the pristine run (deadlines cap every hang);
//! * the resilient run's structured trace passes `obs::validate` and is
//!   written to `target/experiments/chaos_trace.jsonl` for
//!   `trace_export --check`.
//!
//! ```text
//! cargo run --release -p wsmed-bench --bin chaos_ablation -- --small --scale 0
//! ```

use wsmed_bench::{csv_row, csv_writer, HarnessOpts};
use wsmed_core::{
    obs, BreakerPolicy, FailureMode, FanoutVector, HedgePolicy, ResiliencePolicy, TracePolicy,
    Wsmed,
};
use wsmed_netsim::FaultSpec;
use wsmed_store::{canonicalize, Tuple};

/// The chaos-targeted provider: Query2's leaf, one call (and roughly one
/// result row) per zip code.
const LEAF: &str = "codebump.com/zip";

/// Query2 without its final `ToPlace` filter: the same dependent chain and
/// call pattern, but every place row survives into the result, so
/// "fraction of rows kept under chaos" is a meaningful measure (the
/// filtered original returns a single row).
const CHAOS_SQL: &str = "\
    select gp.ToState, gp.zip \
    From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
    Where gs.State=gi.USState and gi.GetInfoByStateResult=gc.zipstr \
      and gc.zipcode=gp.zip";

/// The chaos the resilient configuration must absorb.
fn chaos_spec() -> FaultSpec {
    FaultSpec {
        // Args-keyed rolls: the failing argument tuples are fixed, so a
        // retry of the same tuple fails (or hangs) again — only `Partial`
        // degradation gets the query past them. The outage window is the
        // retryable part: it passes on the provider's model clock.
        fail_probability: 0.015,
        hang_probability: 0.01,
        down_between: vec![(3.0, 8.0)],
        keyed_by_args: true,
        ..FaultSpec::default()
    }
}

/// The resilient policy under test. The breaker threshold is high enough
/// that the short outage window never trips it: under `Partial` every
/// breaker rejection permanently drops a parameter, so shedding load
/// during a brief blip would trade rows for nothing. The sustained-outage
/// pair below uses a hair-trigger breaker where shedding genuinely pays.
fn resilient_policy() -> ResiliencePolicy {
    ResiliencePolicy {
        max_attempts: 4,
        backoff_model_secs: 0.5,
        backoff_multiplier: 2.0,
        backoff_jitter_frac: 0.25,
        deadline_model_secs: Some(10.0),
        breaker: Some(BreakerPolicy {
            failure_threshold: 40,
            cooldown_model_secs: 10.0,
            half_open_probes: 1,
            probe_after_rejections: 16,
        }),
        hedge: Some(HedgePolicy {
            delay_model_secs: 1.5,
        }),
        failure_mode: FailureMode::Partial,
    }
}

/// A sustained outage: the provider is down for most of the run. Retrying
/// into it only burns charged set-up costs; the breaker's job is to stop
/// paying them.
fn sustained_outage() -> FaultSpec {
    FaultSpec {
        down_between: vec![(2.0, 10_000.0)],
        ..FaultSpec::default()
    }
}

/// The shed-pair policy (with and without the hair-trigger breaker).
fn shed_policy(breaker: bool) -> ResiliencePolicy {
    ResiliencePolicy {
        max_attempts: 3,
        backoff_model_secs: 0.5,
        backoff_multiplier: 2.0,
        backoff_jitter_frac: 0.25,
        deadline_model_secs: Some(10.0),
        breaker: breaker.then_some(BreakerPolicy {
            failure_threshold: 5,
            cooldown_model_secs: 20.0,
            half_open_probes: 1,
            probe_after_rejections: 32,
        }),
        hedge: None,
        failure_mode: FailureMode::Partial,
    }
}

struct Cell {
    /// `None` when the run aborted with an error.
    rows: Option<Vec<Tuple>>,
    ws_calls: u64,
    /// Total charged model seconds across all providers for this run —
    /// the scale-independent cost metric (wall time is meaningless at
    /// `--scale 0`).
    charged_model_secs: f64,
    skipped_params: u64,
    resilience: wsmed_core::ResilienceStats,
    error: Option<String>,
}

fn run_config(
    opts: &HarnessOpts,
    label: &'static str,
    fanouts: &FanoutVector,
    chaos: Option<FaultSpec>,
    policy: Option<ResiliencePolicy>,
    trace_to: Option<&str>,
    csv: &mut std::fs::File,
) -> Cell {
    let mut setup = opts.setup();
    if let Some(spec) = chaos {
        setup
            .network
            .provider(LEAF)
            .expect("leaf provider registered")
            .set_fault(spec);
    }
    if let Some(policy) = policy {
        setup.wsmed.set_resilience_policy(policy);
    }
    if trace_to.is_some() {
        setup.wsmed.set_trace_policy(TracePolicy::enabled());
    }
    let calls_before = setup.network.total_metrics().calls;
    let model_before = setup.network.model_time();
    let plan = setup
        .wsmed
        .compile_parallel(CHAOS_SQL, fanouts)
        .expect("chaos query compiles");
    // Failed chaos runs have no report to read a trace from; the traced
    // execution API returns this run's log either way.
    let (result, run_trace) = setup.wsmed.execute_traced(&plan);
    let charged_model_secs = setup.network.model_time() - model_before;
    let ws_calls = setup.network.total_metrics().calls - calls_before;

    if let Some(path) = trace_to {
        let trace = run_trace.expect("traced run yields a log");
        let events = trace.events();
        let violations = obs::validate(&events);
        assert!(
            violations.is_empty(),
            "{label}: chaos trace violates invariants: {violations:?}"
        );
        std::fs::write(path, trace.to_jsonl()).expect("write chaos trace JSONL");
        println!(
            "  {label}: {} trace event(s) written to {path}",
            events.len()
        );
    }

    let cell = match result {
        Ok(report) => Cell {
            ws_calls,
            charged_model_secs,
            skipped_params: report.resilience.skipped_params,
            resilience: report.resilience,
            error: None,
            rows: Some(report.rows),
        },
        Err(e) => Cell {
            ws_calls,
            charged_model_secs,
            skipped_params: 0,
            resilience: wsmed_core::ResilienceStats::default(),
            error: Some(e.to_string()),
            rows: None,
        },
    };
    println!(
        "  {label:>10}: {:>5} rows, {:>4} ws calls, {:>8.1} charged model-s, \
         {:>2} skipped{}",
        cell.rows.as_ref().map_or(0, Vec::len),
        cell.ws_calls,
        cell.charged_model_secs,
        cell.skipped_params,
        cell.error
            .as_ref()
            .map(|e| format!(" — aborted: {e}"))
            .unwrap_or_default(),
    );
    csv_row(
        csv,
        &format!(
            "{label},{},{},{:.2},{},{}",
            cell.rows.as_ref().map_or(0, Vec::len),
            cell.ws_calls,
            cell.charged_model_secs,
            cell.skipped_params,
            if cell.error.is_some() { "abort" } else { "ok" },
        ),
    );
    cell
}

/// Multiset-subset check on canonicalized row lists.
fn is_subset(sub: &[Tuple], sup: &[Tuple]) -> bool {
    let mut sup = sup.to_vec();
    sub.iter().all(|row| {
        sup.iter()
            .position(|s| s == row)
            .map(|i| {
                sup.swap_remove(i);
            })
            .is_some()
    })
}

fn discover_fanouts(w: &Wsmed, sql: &str, per_level: usize) -> Option<FanoutVector> {
    for levels in 1..=4 {
        let candidate: FanoutVector = vec![per_level; levels];
        if w.explain(sql, Some(&candidate)).is_ok() {
            return Some(candidate);
        }
    }
    None
}

fn main() {
    let opts = HarnessOpts::parse(0.0, false);
    println!(
        "== chaos ablation: Query2 under faults + hangs + outage on {LEAF} \
         (scale {}, {} dataset) ==",
        opts.scale,
        if opts.full { "paper" } else { "small" }
    );
    let setup = opts.setup();
    let fanouts = discover_fanouts(&setup.wsmed, CHAOS_SQL, 4).expect("Query2 parallelizes");
    println!("fanout vector {fanouts:?}\n");
    drop(setup);

    let (path, mut csv) = csv_writer(
        "chaos_ablation.csv",
        "config,rows,ws_calls,charged_model_secs,skipped_params,outcome",
    );
    std::fs::create_dir_all("target/experiments").expect("create experiments dir");

    let pristine = run_config(&opts, "pristine", &fanouts, None, None, None, &mut csv);
    let defaults = run_config(
        &opts,
        "defaults",
        &fanouts,
        Some(FaultSpec::none()),
        Some(ResiliencePolicy::default()),
        None,
        &mut csv,
    );
    let bare = run_config(
        &opts,
        "bare-chaos",
        &fanouts,
        Some(chaos_spec()),
        None,
        None,
        &mut csv,
    );
    let resilient = run_config(
        &opts,
        "resilient",
        &fanouts,
        Some(chaos_spec()),
        Some(resilient_policy()),
        Some("target/experiments/chaos_trace.jsonl"),
        &mut csv,
    );
    let shed_off = run_config(
        &opts,
        "shed-off",
        &fanouts,
        Some(sustained_outage()),
        Some(shed_policy(false)),
        None,
        &mut csv,
    );
    let shed_on = run_config(
        &opts,
        "shed-on",
        &fanouts,
        Some(sustained_outage()),
        Some(shed_policy(true)),
        None,
        &mut csv,
    );

    // ---- claims -----------------------------------------------------------
    let reference = canonicalize(pristine.rows.clone().expect("pristine run succeeds"));

    // 1. The resilience layer is pay-for-what-you-use: an inactive chaos
    //    spec plus the default policy reproduces the paper numbers.
    let defaults_rows = canonicalize(defaults.rows.clone().expect("defaults run succeeds"));
    assert_eq!(
        defaults_rows, reference,
        "defaults config changed the result multiset"
    );
    assert_eq!(
        defaults.ws_calls, pristine.ws_calls,
        "defaults config changed the web service call count"
    );

    // 2. The non-resilient config under chaos aborts — or, when the fault
    //    dice spare it, pays full hang latencies (stalls).
    let bare_stalls = bare.charged_model_secs >= 5.0 * resilient.charged_model_secs;
    assert!(
        bare.error.is_some() || bare_stalls,
        "bare-chaos must abort or stall (got {} rows at {:.1} charged model-s)",
        bare.rows.as_ref().map_or(0, Vec::len),
        bare.charged_model_secs,
    );

    // 3. The resilient config completes with ≥ 95 % of the rows, every
    //    missing row accounted by a skipped parameter, at bounded cost.
    let resilient_rows = canonicalize(
        resilient
            .rows
            .clone()
            .expect("resilient run must survive chaos"),
    );
    assert!(
        is_subset(&resilient_rows, &reference),
        "resilient rows are not a subset of the fault-free result"
    );
    let kept = resilient_rows.len() as f64 / reference.len() as f64;
    println!(
        "\nresilient kept {:.1}% of {} rows ({} skipped param(s)); \
         charged model-s: pristine {:.1}, resilient {:.1}, bare-chaos {:.1}{}",
        kept * 100.0,
        reference.len(),
        resilient.skipped_params,
        pristine.charged_model_secs,
        resilient.charged_model_secs,
        bare.charged_model_secs,
        bare.error
            .as_ref()
            .map_or(String::new(), |_| { " (aborted)".to_owned() }),
    );
    assert!(
        kept >= 0.95,
        "resilient run kept only {:.1}% of rows",
        kept * 100.0
    );
    assert!(
        resilient_rows.len() == reference.len() || resilient.skipped_params > 0,
        "rows are missing but no parameter skip was recorded"
    );
    assert!(
        resilient.charged_model_secs <= 6.0 * pristine.charged_model_secs,
        "resilient charged model time {:.1} exceeds 6× pristine {:.1}",
        resilient.charged_model_secs,
        pristine.charged_model_secs,
    );
    assert!(
        resilient.resilience.retries > 0,
        "chaos must force at least one retry"
    );
    assert!(
        resilient.resilience.deadline_exceeded > 0,
        "hangs must be observed through the deadline"
    );

    // 4. Under a sustained outage, the hair-trigger breaker trips, sheds
    //    the doomed calls, and the run is charged less than the config
    //    that keeps retrying into the dead provider. Both complete.
    assert!(shed_off.error.is_none() && shed_on.error.is_none());
    assert!(
        shed_on.resilience.breaker_opens >= 1 && shed_on.resilience.breaker_rejections > 0,
        "sustained outage must trip the breaker ({} opens, {} rejections)",
        shed_on.resilience.breaker_opens,
        shed_on.resilience.breaker_rejections,
    );
    println!(
        "sustained outage: no breaker {:.1} charged model-s, breaker {:.1}          ({} opens, {} rejections)",
        shed_off.charged_model_secs,
        shed_on.charged_model_secs,
        shed_on.resilience.breaker_opens,
        shed_on.resilience.breaker_rejections,
    );
    assert!(
        shed_on.charged_model_secs < shed_off.charged_model_secs,
        "breaker load-shedding must cost less than retrying into the outage          ({:.1} vs {:.1} charged model-s)",
        shed_on.charged_model_secs,
        shed_off.charged_model_secs,
    );

    println!("all chaos claims hold; CSV written to {}", path.display());
}
