//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's §V, prints the measured numbers next to the paper's reported
//! values, and writes a CSV under `target/experiments/` for plotting.
//!
//! Absolute numbers are **model seconds**: the simulated latency model
//! replays the paper's 2008 web services, scaled down by `--scale` so a
//! 2400-second experiment takes seconds of wall time. The claims under
//! test are about *shape* — who wins, by what rough factor, and where the
//! optimum fanout sits.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use wsmed_core::{paper, wire, AdaptiveConfig, ExecutionReport, FanoutVector, Wsmed};
use wsmed_services::DatasetConfig;
use wsmed_store::{ColumnData, Tuple, Value};

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Wall seconds per model second.
    pub scale: f64,
    /// Use the full paper-scale dataset (Query2 > 5000 calls) instead of
    /// the reduced one.
    pub full: bool,
    /// Print per-run detail.
    pub verbose: bool,
}

impl HarnessOpts {
    /// Parses `--scale <f>`, `--full`, `--small` and `--verbose` from argv,
    /// with defaults per binary.
    pub fn parse(default_scale: f64, default_full: bool) -> Self {
        let mut opts = HarnessOpts {
            scale: default_scale,
            full: default_full,
            verbose: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = v.parse().expect("--scale must be a float");
                }
                "--full" => opts.full = true,
                "--small" => opts.full = false,
                "--verbose" => opts.verbose = true,
                other => {
                    eprintln!("unknown argument {other:?}");
                    eprintln!("usage: [--scale <wall-per-model-sec>] [--full|--small] [--verbose]");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// The dataset configuration this run uses.
    pub fn dataset(&self) -> DatasetConfig {
        if self.full {
            DatasetConfig::paper()
        } else {
            DatasetConfig::small()
        }
    }

    /// Builds the paper world at the chosen scale.
    pub fn setup(&self) -> paper::PaperSetup {
        paper::setup(self.scale, self.dataset())
    }
}

/// Outcome of one timed execution, in model seconds.
#[derive(Debug, Clone)]
pub struct Timed {
    /// Model seconds ( = wall / scale ).
    pub model_secs: f64,
    /// The execution report.
    pub report: ExecutionReport,
}

/// Runs a closure and converts its wall time to model seconds.
pub fn timed(scale: f64, run: impl FnOnce() -> wsmed_core::CoreResult<ExecutionReport>) -> Timed {
    let t0 = Instant::now();
    let report = run().expect("query execution failed");
    let model_secs = t0.elapsed().as_secs_f64() / scale;
    Timed { model_secs, report }
}

/// Executes the central plan and times it.
pub fn run_central(w: &Wsmed, sql: &str, scale: f64) -> Timed {
    timed(scale, || w.run_central(sql))
}

/// Executes a manually parallelized plan and times it.
pub fn run_parallel(w: &Wsmed, sql: &str, fanouts: &FanoutVector, scale: f64) -> Timed {
    timed(scale, || w.run_parallel(sql, fanouts))
}

/// Executes an adaptive plan and times it.
pub fn run_adaptive(w: &Wsmed, sql: &str, config: &AdaptiveConfig, scale: f64) -> Timed {
    timed(scale, || w.run_adaptive(sql, config))
}

/// Opens (and creates) a CSV file under `target/experiments/`.
pub fn csv_writer(name: &str, header: &str) -> (PathBuf, fs::File) {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(name);
    let mut file = fs::File::create(&path).expect("create CSV");
    writeln!(file, "{header}").expect("write CSV header");
    (path, file)
}

/// Appends one CSV row.
pub fn csv_row(file: &mut fs::File, row: &str) {
    writeln!(file, "{row}").expect("write CSV row");
}

// ---- machine-readable benchmark summary -------------------------------

/// Formats a float as a JSON number, mapping non-finite values (e.g. model
/// time measured at `--scale 0`) to `null`.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

/// Writes one named section of `target/experiments/BENCH_wire.json` and
/// returns the merged summary's path.
///
/// `body` must be a complete JSON value. Each writer drops a fragment under
/// `target/experiments/bench_json/` and the merged summary is regenerated
/// from every fragment present, so independent binaries (the wire benches,
/// the ablation harnesses) contribute sections without clobbering each
/// other across runs.
pub fn bench_json_section(section: &str, body: &str) -> PathBuf {
    bench_json_file("BENCH_wire.json", section, body)
}

/// The one shared emission path for `BENCH_*.json` summaries: wraps `body`
/// in the common section schema — section name, the model-time `scale` the
/// measurement ran at (`None` → `null` for wall-clock-only benches), and
/// the payload under `"data"` — then merges it into `out_name`, whose
/// `_meta` header carries the schema version, a run id, and the section
/// list. Every harness binary and bench writes through here so downstream
/// tooling can parse any `BENCH_*.json` the same way.
pub fn emit_bench_section(
    out_name: &str,
    section: &str,
    scale: Option<f64>,
    body: &str,
) -> PathBuf {
    let scale_json = scale.map_or_else(|| "null".to_owned(), json_num);
    let wrapped = format!(
        "{{\"section\": \"{section}\", \"scale\": {scale_json}, \"data\": {}}}",
        body.trim()
    );
    bench_json_file(out_name, section, &wrapped)
}

/// Writes one named section of `target/experiments/<out_name>` and returns
/// the merged summary's path. Sections of different output files keep
/// separate fragment directories, so e.g. `BENCH_multiquery.json` never
/// absorbs wire-bench fragments (or vice versa).
pub fn bench_json_file(out_name: &str, section: &str, body: &str) -> PathBuf {
    // The wire summary predates multi-file output and keeps its original
    // flat fragment directory.
    let dir = if out_name == "BENCH_wire.json" {
        PathBuf::from("target/experiments/bench_json")
    } else {
        let stem = out_name.strip_suffix(".json").unwrap_or(out_name);
        PathBuf::from(format!("target/experiments/bench_json_{stem}"))
    };
    fs::create_dir_all(&dir).expect("create bench_json dir");
    fs::write(dir.join(format!("{section}.json")), body).expect("write bench_json fragment");
    merge_bench_json(&dir, out_name)
}

/// Rebuilds `<out_name>` from every fragment in `dir`, sections sorted
/// by name for a stable diffable output.
fn merge_bench_json(dir: &std::path::Path, out_name: &str) -> PathBuf {
    let mut sections: Vec<(String, String)> = fs::read_dir(dir)
        .expect("read bench_json dir")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path
                .file_name()?
                .to_str()?
                .strip_suffix(".json")?
                .to_owned();
            Some((name, fs::read_to_string(&path).ok()?))
        })
        .collect();
    sections.sort();
    // A `_meta` header leads every merged summary: schema version, a run id
    // for provenance (last merge wins — the id identifies the merge, not
    // each section's measurement), and the section list.
    let run_id = {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        format!("{secs:08x}-{:04x}", std::process::id() & 0xffff)
    };
    let names: Vec<String> = sections
        .iter()
        .map(|(name, _)| format!("\"{name}\""))
        .collect();
    let mut doc = String::from("{\n");
    doc.push_str(&format!(
        "  \"_meta\": {{\"schema\": \"wsmed-bench/v1\", \"run_id\": \"{run_id}\", \
         \"sections\": [{}]}},\n",
        names.join(", ")
    ));
    for (i, (name, body)) in sections.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str(&format!("  \"{name}\": {}", body.trim()));
    }
    doc.push_str("\n}\n");
    let out = PathBuf::from("target/experiments").join(out_name);
    fs::write(&out, &doc).expect("write merged bench JSON");
    out
}

// ---- row-vs-columnar wire micro-measurements ---------------------------

/// The 4-column parameter-tuple shape used throughout the wire benches
/// (three strings and a real, matching Query1's shipped views).
pub fn wire_bench_tuples(size: usize) -> Vec<Tuple> {
    (0..size)
        .map(|i| {
            Tuple::new(vec![
                Value::str("Atlanta Heights"),
                Value::str("GA"),
                Value::Real(i as f64 + 0.25),
                Value::str("Atlanta Heights, GA"),
            ])
        })
        .collect()
}

/// Wire-path micro-measurement over one batch of [`wire_bench_tuples`]:
/// the row message path (per-tuple encode + frame; frame split + per-tuple
/// decode) versus the columnar path (whole-column encode; typed column
/// decode that borrows string heaps from the frame).
#[derive(Debug, Clone)]
pub struct WireMicro {
    /// Tuples per frame.
    pub size: usize,
    /// Row-path frame bytes (including the 1-byte kind prefix).
    pub row_frame_bytes: usize,
    /// Columnar frame bytes (including the 1-byte kind prefix).
    pub col_frame_bytes: usize,
    /// Row-path encode throughput, tuples per wall-clock second.
    pub row_encode_tps: f64,
    /// Columnar encode throughput, tuples per wall-clock second.
    pub col_encode_tps: f64,
    /// Row-path decode throughput (frame → value-accessible tuples).
    pub row_decode_tps: f64,
    /// Columnar decode throughput (frame → value-accessible batch).
    pub col_decode_tps: f64,
}

impl WireMicro {
    /// Frame bytes per tuple on the row path.
    pub fn row_bytes_per_tuple(&self) -> f64 {
        self.row_frame_bytes as f64 / self.size as f64
    }

    /// Frame bytes per tuple on the columnar path.
    pub fn col_bytes_per_tuple(&self) -> f64 {
        self.col_frame_bytes as f64 / self.size as f64
    }

    /// Columnar decode throughput over row decode throughput.
    pub fn decode_speedup(&self) -> f64 {
        self.col_decode_tps / self.row_decode_tps
    }

    /// Renders this measurement as one JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"size\": {}, \"row_frame_bytes\": {}, \"col_frame_bytes\": {}, \
             \"row_bytes_per_tuple\": {}, \"col_bytes_per_tuple\": {}, \
             \"row_encode_tuples_per_sec\": {}, \"col_encode_tuples_per_sec\": {}, \
             \"row_decode_tuples_per_sec\": {}, \"col_decode_tuples_per_sec\": {}, \
             \"decode_speedup\": {}}}",
            self.size,
            self.row_frame_bytes,
            self.col_frame_bytes,
            json_num(self.row_bytes_per_tuple()),
            json_num(self.col_bytes_per_tuple()),
            json_num(self.row_encode_tps),
            json_num(self.col_encode_tps),
            json_num(self.row_decode_tps),
            json_num(self.col_decode_tps),
            json_num(self.decode_speedup()),
        )
    }
}

/// Renders a slice of micro-measurements as a JSON array.
pub fn wire_micro_json(micros: &[WireMicro]) -> String {
    let items: Vec<String> = micros.iter().map(WireMicro::json).collect();
    format!("[{}]", items.join(", "))
}

/// Best-of-3 throughput of `f`, where each call processes `size` tuples.
fn best_tuples_per_sec(size: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..8 {
        f();
    }
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut iters = 0u64;
        while t0.elapsed() < Duration::from_millis(120) {
            f();
            iters += 1;
        }
        let tps = (iters * size as u64) as f64 / t0.elapsed().as_secs_f64();
        best = best.max(tps);
    }
    best
}

/// Measures the row and columnar wire paths at one batch size. Wall-clock
/// (real time, independent of `--scale`), best of 3 passes per closure.
pub fn measure_wire_micro(size: usize) -> WireMicro {
    let tuples = wire_bench_tuples(size);
    let encoded: Vec<_> = tuples.iter().map(wire::encode_tuple).collect();
    let row_frame = wire::encode_rows_message(encoded.iter());
    let col_frame = wire::encode_columnar_message(&tuples);

    let row_encode_tps = best_tuples_per_sec(size, || {
        let encoded: Vec<_> = tuples.iter().map(wire::encode_tuple).collect();
        std::hint::black_box(wire::encode_rows_message(encoded.iter()));
    });
    let col_encode_tps = best_tuples_per_sec(size, || {
        std::hint::black_box(wire::encode_columnar_message(&tuples));
    });
    let row_decode_tps = best_tuples_per_sec(size, || {
        match wire::decode_message(row_frame.clone()).expect("row frame decodes") {
            wire::MessageBatch::Rows(parts) => {
                for part in parts {
                    std::hint::black_box(wire::decode_tuple(part).expect("tuple decodes"));
                }
            }
            wire::MessageBatch::Columnar(_) => unreachable!("kind-0 frame"),
        }
    });
    let col_decode_tps = best_tuples_per_sec(size, || {
        std::hint::black_box(
            wire::decode_message(col_frame.clone()).expect("columnar frame decodes"),
        );
    });

    WireMicro {
        size,
        row_frame_bytes: row_frame.len(),
        col_frame_bytes: col_frame.len(),
        row_encode_tps,
        col_encode_tps,
        row_decode_tps,
        col_decode_tps,
    }
}

/// Asserts that decoding a `size`-tuple columnar frame performs no
/// per-value heap copies: every string column's heap must be a shared
/// slice of the received frame allocation. Returns the number of string
/// columns checked.
pub fn assert_columnar_zero_copy(size: usize) -> usize {
    let tuples = wire_bench_tuples(size);
    let frame = wire::encode_columnar_message(&tuples);
    let batch = match wire::decode_message(frame.clone()).expect("columnar frame decodes") {
        wire::MessageBatch::Columnar(batch) => batch,
        wire::MessageBatch::Rows(_) => panic!("uniform batch must encode columnar"),
    };
    let frame_range = frame.as_ptr_range();
    let mut shared = 0;
    for col in batch.columns() {
        if let ColumnData::Str(scol) = col.data() {
            assert!(
                scol.heap().is_shared(),
                "string heap must share the frame allocation, not copy out of it"
            );
            let heap = scol.heap().as_bytes().as_ptr_range();
            assert!(
                heap.start >= frame_range.start && heap.end <= frame_range.end,
                "string heap must point into the received frame"
            );
            shared += 1;
        }
    }
    assert!(shared > 0, "bench tuples contain string columns");
    shared
}

/// Prints a `measured vs paper` line with a rough agreement marker:
/// `ok` within 2× either way, `≠` otherwise (absolute agreement is not the
/// goal — the substrate is a simulator).
pub fn compare(label: &str, measured: f64, paper_value: f64) {
    let ratio = measured / paper_value;
    let marker = if (0.5..=2.0).contains(&ratio) {
        "ok"
    } else {
        "≠"
    };
    println!("  {label}: measured {measured:.1}  paper {paper_value:.1}  (×{ratio:.2} {marker})");
}

/// All fanout vectors `{fo1, fo2}` with `fo1 ≥ 1`, `fo2 ≥ 0` and total
/// processes `fo1 + fo1·fo2 ≤ max_processes` — the space of Fig. 16/17.
pub fn fanout_grid(max_fo1: usize, max_fo2: usize, max_processes: usize) -> Vec<(usize, usize)> {
    let mut grid = Vec::new();
    for fo1 in 1..=max_fo1 {
        for fo2 in 0..=max_fo2 {
            if fo1 + fo1 * fo2 <= max_processes {
                grid.push((fo1, fo2));
            }
        }
    }
    grid
}

/// Renders a `fo1 × fo2` matrix of times as an aligned text table
/// (the textual analogue of the paper's Fig. 16/17 surface plots).
pub fn print_matrix(rows: &[(usize, usize, f64)]) {
    let fo1s: Vec<usize> = {
        let mut v: Vec<usize> = rows.iter().map(|r| r.0).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let fo2s: Vec<usize> = {
        let mut v: Vec<usize> = rows.iter().map(|r| r.1).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    print!("fo1\\fo2 ");
    for fo2 in &fo2s {
        print!("{fo2:>8}");
    }
    println!();
    for fo1 in &fo1s {
        print!("{fo1:>7} ");
        for fo2 in &fo2s {
            match rows.iter().find(|r| r.0 == *fo1 && r.1 == *fo2) {
                Some((_, _, secs)) => print!("{secs:>8.1}"),
                None => print!("{:>8}", "-"),
            }
        }
        println!();
    }
}

/// The argmin cell of a sweep.
pub fn best_cell(rows: &[(usize, usize, f64)]) -> (usize, usize, f64) {
    *rows
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_respects_process_budget() {
        let grid = fanout_grid(10, 10, 60);
        assert!(grid.contains(&(5, 4)));
        assert!(grid.contains(&(1, 0)));
        for (fo1, fo2) in &grid {
            assert!(fo1 + fo1 * fo2 <= 60, "({fo1},{fo2}) exceeds budget");
        }
        // The paper's corners: {10,5} fits (60), {10,6} does not (70).
        assert!(grid.contains(&(10, 5)));
        assert!(!grid.contains(&(10, 6)));
    }

    #[test]
    fn best_cell_finds_minimum() {
        let rows = vec![(1, 1, 100.0), (5, 4, 42.0), (2, 2, 77.0)];
        assert_eq!(best_cell(&rows), (5, 4, 42.0));
    }

    #[test]
    fn bench_json_merges_sections_sorted() {
        let out = bench_json_section("zz_selftest", "{\"a\": 1}");
        bench_json_section("aa_selftest", "[1, 2]");
        let doc = std::fs::read_to_string(&out).unwrap();
        let aa = doc.find("\"aa_selftest\": [1, 2]").expect("aa section");
        let zz = doc.find("\"zz_selftest\": {\"a\": 1}").expect("zz section");
        assert!(aa < zz, "sections must be sorted by name");
        assert!(doc.starts_with("{\n") && doc.ends_with("\n}\n"));
    }

    #[test]
    fn emit_bench_section_wraps_shared_schema() {
        let out = emit_bench_section("BENCH_selftest.json", "unit", Some(0.5), "{\"x\": 1}");
        let doc = std::fs::read_to_string(&out).unwrap();
        assert!(doc.contains("\"_meta\": {\"schema\": \"wsmed-bench/v1\", \"run_id\": \""));
        assert!(doc
            .contains("\"unit\": {\"section\": \"unit\", \"scale\": 0.500, \"data\": {\"x\": 1}}"));
        let out2 = emit_bench_section("BENCH_selftest.json", "wall", None, "[]");
        let doc2 = std::fs::read_to_string(&out2).unwrap();
        assert!(doc2.contains("\"scale\": null"));
        assert!(doc2.contains("\"sections\": [\"unit\", \"wall\"]"));
    }

    #[test]
    fn json_num_maps_non_finite_to_null() {
        assert_eq!(json_num(1.5), "1.500");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(f64::NAN), "null");
    }

    #[test]
    fn columnar_decode_is_zero_copy() {
        // Three of the four bench columns are strings; all must borrow.
        assert_eq!(assert_columnar_zero_copy(16), 3);
    }

    #[test]
    fn csv_writer_creates_file() {
        let (path, mut f) = csv_writer("harness_selftest.csv", "a,b");
        csv_row(&mut f, "1,2");
        drop(f);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }
}
