//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's §V, prints the measured numbers next to the paper's reported
//! values, and writes a CSV under `target/experiments/` for plotting.
//!
//! Absolute numbers are **model seconds**: the simulated latency model
//! replays the paper's 2008 web services, scaled down by `--scale` so a
//! 2400-second experiment takes seconds of wall time. The claims under
//! test are about *shape* — who wins, by what rough factor, and where the
//! optimum fanout sits.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use wsmed_core::{paper, AdaptiveConfig, ExecutionReport, FanoutVector, Wsmed};
use wsmed_services::DatasetConfig;

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Wall seconds per model second.
    pub scale: f64,
    /// Use the full paper-scale dataset (Query2 > 5000 calls) instead of
    /// the reduced one.
    pub full: bool,
    /// Print per-run detail.
    pub verbose: bool,
}

impl HarnessOpts {
    /// Parses `--scale <f>`, `--full`, `--small` and `--verbose` from argv,
    /// with defaults per binary.
    pub fn parse(default_scale: f64, default_full: bool) -> Self {
        let mut opts = HarnessOpts {
            scale: default_scale,
            full: default_full,
            verbose: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = v.parse().expect("--scale must be a float");
                }
                "--full" => opts.full = true,
                "--small" => opts.full = false,
                "--verbose" => opts.verbose = true,
                other => {
                    eprintln!("unknown argument {other:?}");
                    eprintln!("usage: [--scale <wall-per-model-sec>] [--full|--small] [--verbose]");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// The dataset configuration this run uses.
    pub fn dataset(&self) -> DatasetConfig {
        if self.full {
            DatasetConfig::paper()
        } else {
            DatasetConfig::small()
        }
    }

    /// Builds the paper world at the chosen scale.
    pub fn setup(&self) -> paper::PaperSetup {
        paper::setup(self.scale, self.dataset())
    }
}

/// Outcome of one timed execution, in model seconds.
#[derive(Debug, Clone)]
pub struct Timed {
    /// Model seconds ( = wall / scale ).
    pub model_secs: f64,
    /// The execution report.
    pub report: ExecutionReport,
}

/// Runs a closure and converts its wall time to model seconds.
pub fn timed(scale: f64, run: impl FnOnce() -> wsmed_core::CoreResult<ExecutionReport>) -> Timed {
    let t0 = Instant::now();
    let report = run().expect("query execution failed");
    let model_secs = t0.elapsed().as_secs_f64() / scale;
    Timed { model_secs, report }
}

/// Executes the central plan and times it.
pub fn run_central(w: &Wsmed, sql: &str, scale: f64) -> Timed {
    timed(scale, || w.run_central(sql))
}

/// Executes a manually parallelized plan and times it.
pub fn run_parallel(w: &Wsmed, sql: &str, fanouts: &FanoutVector, scale: f64) -> Timed {
    timed(scale, || w.run_parallel(sql, fanouts))
}

/// Executes an adaptive plan and times it.
pub fn run_adaptive(w: &Wsmed, sql: &str, config: &AdaptiveConfig, scale: f64) -> Timed {
    timed(scale, || w.run_adaptive(sql, config))
}

/// Opens (and creates) a CSV file under `target/experiments/`.
pub fn csv_writer(name: &str, header: &str) -> (PathBuf, fs::File) {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(name);
    let mut file = fs::File::create(&path).expect("create CSV");
    writeln!(file, "{header}").expect("write CSV header");
    (path, file)
}

/// Appends one CSV row.
pub fn csv_row(file: &mut fs::File, row: &str) {
    writeln!(file, "{row}").expect("write CSV row");
}

/// Prints a `measured vs paper` line with a rough agreement marker:
/// `ok` within 2× either way, `≠` otherwise (absolute agreement is not the
/// goal — the substrate is a simulator).
pub fn compare(label: &str, measured: f64, paper_value: f64) {
    let ratio = measured / paper_value;
    let marker = if (0.5..=2.0).contains(&ratio) {
        "ok"
    } else {
        "≠"
    };
    println!("  {label}: measured {measured:.1}  paper {paper_value:.1}  (×{ratio:.2} {marker})");
}

/// All fanout vectors `{fo1, fo2}` with `fo1 ≥ 1`, `fo2 ≥ 0` and total
/// processes `fo1 + fo1·fo2 ≤ max_processes` — the space of Fig. 16/17.
pub fn fanout_grid(max_fo1: usize, max_fo2: usize, max_processes: usize) -> Vec<(usize, usize)> {
    let mut grid = Vec::new();
    for fo1 in 1..=max_fo1 {
        for fo2 in 0..=max_fo2 {
            if fo1 + fo1 * fo2 <= max_processes {
                grid.push((fo1, fo2));
            }
        }
    }
    grid
}

/// Renders a `fo1 × fo2` matrix of times as an aligned text table
/// (the textual analogue of the paper's Fig. 16/17 surface plots).
pub fn print_matrix(rows: &[(usize, usize, f64)]) {
    let fo1s: Vec<usize> = {
        let mut v: Vec<usize> = rows.iter().map(|r| r.0).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let fo2s: Vec<usize> = {
        let mut v: Vec<usize> = rows.iter().map(|r| r.1).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    print!("fo1\\fo2 ");
    for fo2 in &fo2s {
        print!("{fo2:>8}");
    }
    println!();
    for fo1 in &fo1s {
        print!("{fo1:>7} ");
        for fo2 in &fo2s {
            match rows.iter().find(|r| r.0 == *fo1 && r.1 == *fo2) {
                Some((_, _, secs)) => print!("{secs:>8.1}"),
                None => print!("{:>8}", "-"),
            }
        }
        println!();
    }
}

/// The argmin cell of a sweep.
pub fn best_cell(rows: &[(usize, usize, f64)]) -> (usize, usize, f64) {
    *rows
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_respects_process_budget() {
        let grid = fanout_grid(10, 10, 60);
        assert!(grid.contains(&(5, 4)));
        assert!(grid.contains(&(1, 0)));
        for (fo1, fo2) in &grid {
            assert!(fo1 + fo1 * fo2 <= 60, "({fo1},{fo2}) exceeds budget");
        }
        // The paper's corners: {10,5} fits (60), {10,6} does not (70).
        assert!(grid.contains(&(10, 5)));
        assert!(!grid.contains(&(10, 6)));
    }

    #[test]
    fn best_cell_finds_minimum() {
        let rows = vec![(1, 1, 100.0), (5, 4, 42.0), (2, 2, 77.0)];
        assert_eq!(best_cell(&rows), (5, 4, 42.0));
    }

    #[test]
    fn csv_writer_creates_file() {
        let (path, mut f) = csv_writer("harness_selftest.csv", "a,b");
        csv_row(&mut f, "1,2");
        drop(f);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }
}
