//! Microbenchmarks for the plan-shipping wire format.
//!
//! `FF_APPLYP` ships a plan function once per child and then a tuple per
//! call; these benches quantify both costs and justify the paper's design
//! of shipping code once and streaming parameters (§III.A).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use wsmed_core::{paper, wire, PlanOp, QueryPlan};
use wsmed_services::DatasetConfig;
use wsmed_store::{Tuple, Value};

/// Extracts the first shipped plan function from a compiled parallel plan.
fn first_plan_function(plan: &QueryPlan) -> wsmed_core::PlanFunction {
    fn find(op: &PlanOp) -> Option<&wsmed_core::PlanFunction> {
        match op {
            PlanOp::FfApply { pf, .. } | PlanOp::AffApply { pf, .. } => Some(pf),
            _ => op.input().and_then(find),
        }
    }
    find(&plan.root)
        .expect("parallel plan has a plan function")
        .clone()
}

fn bench_wire(c: &mut Criterion) {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let plan = setup
        .wsmed
        .compile_parallel(paper::QUERY1_SQL, &vec![5, 4])
        .expect("compile Query1");
    let pf = first_plan_function(&plan);
    let pf_bytes = wire::encode_plan_function(&pf);
    println!("PF1 wire size: {} bytes", pf_bytes.len());

    c.bench_function("wire/encode_plan_function", |b| {
        b.iter(|| wire::encode_plan_function(std::hint::black_box(&pf)))
    });
    c.bench_function("wire/decode_plan_function", |b| {
        b.iter_batched(
            || pf_bytes.clone(),
            |bytes| wire::decode_plan_function(bytes).expect("decode"),
            BatchSize::SmallInput,
        )
    });

    let tuple = Tuple::new(vec![
        Value::str("Atlanta Heights"),
        Value::str("GA"),
        Value::Real(12.25),
        Value::str("Atlanta Heights, GA"),
    ]);
    let tuple_bytes = wire::encode_tuple(&tuple);
    c.bench_function("wire/encode_tuple", |b| {
        b.iter(|| wire::encode_tuple(std::hint::black_box(&tuple)))
    });
    c.bench_function("wire/decode_tuple", |b| {
        b.iter_batched(
            || tuple_bytes.clone(),
            |bytes| wire::decode_tuple(bytes).expect("decode"),
            BatchSize::SmallInput,
        )
    });

    // Batched frames: the vectorized-shipping fast path. Sizes span the
    // BatchPolicy sweep of the batch_ablation harness.
    let mut group = c.benchmark_group("wire/batch");
    for size in [1usize, 8, 64, 512] {
        let tuples: Vec<Tuple> = wsmed_bench::wire_bench_tuples(size);
        let frame = wire::encode_tuple_batch(&tuples);
        let encoded: Vec<bytes::Bytes> = tuples.iter().map(wire::encode_tuple).collect();
        group.bench_with_input(BenchmarkId::new("encode", size), &tuples, |b, tuples| {
            b.iter(|| wire::encode_tuple_batch(std::hint::black_box(tuples)))
        });
        group.bench_with_input(
            BenchmarkId::new("frame_encoded", size),
            &encoded,
            |b, encoded| b.iter(|| wire::frame_encoded_batch(std::hint::black_box(encoded))),
        );
        group.bench_with_input(BenchmarkId::new("decode", size), &frame, |b, frame| {
            b.iter_batched(
                || frame.clone(),
                |frame| wire::decode_tuple_batch(frame).expect("decode"),
                BatchSize::SmallInput,
            )
        });

        // The columnar message path at the same sizes: whole-column encode
        // and a decode whose string columns borrow the received frame.
        let col_frame = wire::encode_columnar_message(&tuples);
        group.bench_with_input(
            BenchmarkId::new("encode_columnar", size),
            &tuples,
            |b, tuples| b.iter(|| wire::encode_columnar_message(std::hint::black_box(tuples))),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_columnar", size),
            &col_frame,
            |b, frame| {
                b.iter_batched(
                    || frame.clone(),
                    |frame| wire::decode_message(frame).expect("decode"),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();

    // Zero-copy invariant, checked where it matters most: decoding a
    // 512-tuple columnar frame must not copy a single string value — all
    // string-column heaps stay shared slices of the frame allocation.
    let shared = wsmed_bench::assert_columnar_zero_copy(512);
    println!(
        "wire/batch 512: columnar decode borrows all {shared} string heaps \
         from the frame (no per-value copies)"
    );

    // Machine-readable summary: row vs columnar throughput and density at
    // the two batch sizes the acceptance claims are stated over.
    let micros = [
        wsmed_bench::measure_wire_micro(64),
        wsmed_bench::measure_wire_micro(512),
    ];
    for m in &micros {
        println!(
            "wire micro {:>4} tuples: decode {:>12.0} tuples/s columnar vs \
             {:>12.0} row (×{:.1}); {:.1} vs {:.1} B/tuple",
            m.size,
            m.col_decode_tps,
            m.row_decode_tps,
            m.decode_speedup(),
            m.col_bytes_per_tuple(),
            m.row_bytes_per_tuple(),
        );
    }
    let path = wsmed_bench::emit_bench_section(
        "BENCH_wire.json",
        "wire_bench",
        None,
        &wsmed_bench::wire_micro_json(&micros),
    );
    println!("wire micro summary merged into {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_wire
}
criterion_main!(benches);
