//! Compilation-pipeline benchmarks: SQL → calculus → central plan →
//! parallel rewrite, plus WSDL import. These are the paper's Fig. 5 stages
//! and establish that compilation cost is negligible next to even a single
//! web service call.

use criterion::{criterion_group, criterion_main, Criterion};

use wsmed_core::paper;
use wsmed_services::DatasetConfig;

fn bench_frontend(c: &mut Criterion) {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let w = &setup.wsmed;

    c.bench_function("frontend/calculus_query1", |b| {
        b.iter(|| {
            w.calculus(std::hint::black_box(paper::QUERY1_SQL))
                .expect("calculus")
        })
    });
    c.bench_function("frontend/central_plan_query2", |b| {
        b.iter(|| {
            w.compile_central(std::hint::black_box(paper::QUERY2_SQL))
                .expect("compile")
        })
    });
    let central = w.compile_central(paper::QUERY1_SQL).expect("compile");
    c.bench_function("frontend/parallelize_query1", |b| {
        b.iter(|| {
            wsmed_core::parallelize(std::hint::black_box(&central), &vec![5, 4]).expect("rewrite")
        })
    });

    let registry = setup.wsmed.registry();
    let wsdl_xml = registry
        .wsdl_xml(wsmed_services::GeoPlacesService::WSDL_URI)
        .expect("wsdl");
    c.bench_function("frontend/parse_wsdl_geoplaces", |b| {
        b.iter(|| wsmed_wsdl::parse_wsdl(std::hint::black_box(&wsdl_xml)).expect("parse"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_frontend
}
criterion_main!(benches);
