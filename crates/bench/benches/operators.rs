//! Operator-machinery benchmarks at time scale 0.
//!
//! With no modeled latency, these measure the *pure overhead* of the
//! query-process machinery — thread spawning, plan shipping, message
//! passing — relative to central execution. This is the cost side of the
//! trade the paper's operators make; the latency side is covered by the
//! figure binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wsmed_core::{paper, AdaptiveConfig};
use wsmed_services::DatasetConfig;

fn bench_operators(c: &mut Criterion) {
    // Tiny dataset, zero time scale: all cost is machinery.
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let w = &setup.wsmed;
    let central_plan = w.compile_central(paper::QUERY1_SQL).expect("compile");

    let mut group = c.benchmark_group("operators/query1_tiny");
    group.sample_size(20);
    group.bench_function("central", |b| {
        b.iter(|| w.execute(&central_plan).expect("run central"))
    });
    for fanouts in [vec![1usize, 1], vec![2, 2], vec![4, 4]] {
        let plan = w
            .compile_parallel(paper::QUERY1_SQL, &fanouts)
            .expect("compile");
        group.bench_with_input(
            BenchmarkId::new("ff_apply", format!("{}x{}", fanouts[0], fanouts[1])),
            &plan,
            |b, plan| b.iter(|| w.execute(plan).expect("run parallel")),
        );
    }
    let adaptive = w
        .compile_adaptive(paper::QUERY1_SQL, &AdaptiveConfig::default())
        .expect("compile adaptive");
    group.bench_function("aff_apply_p2", |b| {
        b.iter(|| w.execute(&adaptive).expect("run adaptive"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_operators
}
criterion_main!(benches);
