//! Property tests for the value model's ordering invariants — the bag
//! comparison every cross-strategy equivalence test relies on.

use proptest::prelude::*;
use wsmed_store::{canonicalize, Record, Tuple, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Real),
        "[ -~]{0,12}".prop_map(Value::from),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Value::Sequence),
            proptest::collection::vec(("[a-z]{1,4}", inner), 0..3).prop_map(|fields| {
                let mut r = Record::new();
                for (k, v) in fields {
                    r.set(k, v);
                }
                Value::Record(r)
            }),
        ]
    })
}

proptest! {
    #[test]
    fn prop_total_cmp_antisymmetric(a in value_strategy(), b in value_strategy()) {
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
    }

    #[test]
    fn prop_total_cmp_sort_is_consistent(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        use std::cmp::Ordering::Greater;
        let mut values = [a, b, c];
        values.sort_by(|x, y| x.total_cmp(y));
        for pair in values.windows(2) {
            prop_assert_ne!(pair[0].total_cmp(&pair[1]), Greater);
        }
    }

    #[test]
    fn prop_canonicalize_is_permutation_invariant(
        tuples in proptest::collection::vec(
            proptest::collection::vec(value_strategy(), 0..3).prop_map(Tuple::new),
            0..6,
        ),
        seed in any::<u64>(),
    ) {
        // Shuffle deterministically with a tiny LCG.
        let mut shuffled = tuples.clone();
        let mut state = seed;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(canonicalize(tuples), canonicalize(shuffled));
    }
}
