//! Columnar tuple batches — the batch-at-a-time representation of the
//! engine's hot path.
//!
//! A [`ValueBatch`] holds a fixed number of rows as *per-column typed
//! vectors* instead of per-row [`Value`] trees: an `Int` column is one
//! `Vec<i64>`, a string column is a flat byte heap plus an offsets
//! vector, and nulls live in a per-column validity bitmask. Compared to
//! `Vec<Tuple>` this removes the per-value enum tags, the per-string
//! `Arc` allocations and the pointer chasing that dominate the wire hot
//! path, and it gives the wire format whole-column slices to memcpy.
//!
//! The string heap is abstracted behind [`StrHeap`] so a decoded batch
//! can *borrow* the received frame (`StrHeap::Shared`, zero-copy) while a
//! batch built from tuples owns its bytes (`StrHeap::Owned`).
//!
//! **Row fallback.** A batch requires uniform arity and is most compact
//! when a column holds one scalar type (plus nulls). Mixed-type or
//! nested (record/sequence/bag) columns degrade gracefully to
//! [`ColumnData::Other`], a per-row `Value` vector; batches with
//! non-uniform arity cannot be built at all ([`ValueBatch::from_tuples`]
//! returns `None`) and callers ship the row format instead. Row-view
//! accessors ([`ValueBatch::row`], [`Column::value`]) let operator code
//! that still thinks in tuples migrate incrementally.

use bytes::Bytes;

use crate::{Tuple, Value};

/// A packed validity bitmask: bit `i` set ⇔ row `i` is non-null.
///
/// Only materialized for columns that actually contain nulls; an absent
/// mask means every row is valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validity {
    bits: Vec<u8>,
    len: usize,
}

impl Validity {
    /// Builds a mask from per-row validity flags.
    pub fn from_flags(flags: &[bool]) -> Self {
        let mut bits = vec![0u8; flags.len().div_ceil(8)];
        for (i, &ok) in flags.iter().enumerate() {
            if ok {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        Validity {
            bits,
            len: flags.len(),
        }
    }

    /// Reconstructs a mask from its packed bytes (wire decode).
    /// Returns `None` when the byte count does not match `len`.
    pub fn from_bytes(bits: Vec<u8>, len: usize) -> Option<Self> {
        (bits.len() == len.div_ceil(8)).then_some(Validity { bits, len })
    }

    /// Whether row `i` is valid (non-null).
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// The packed bytes, `ceil(len/8)` of them (wire encode).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The backing bytes of a string column: either owned by the batch or a
/// zero-copy view into a received wire frame.
#[derive(Debug, Clone)]
pub enum StrHeap {
    /// The batch owns its heap (built from tuples).
    Owned(Vec<u8>),
    /// The heap borrows a slice of the frame it was decoded from —
    /// cloning the `Bytes` bumps a refcount, never copies.
    Shared(Bytes),
}

impl StrHeap {
    /// The heap bytes, wherever they live.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            StrHeap::Owned(v) => v,
            StrHeap::Shared(b) => b,
        }
    }

    /// Whether this heap borrows a received frame (the zero-copy path).
    pub fn is_shared(&self) -> bool {
        matches!(self, StrHeap::Shared(_))
    }
}

/// A string column: a flat heap of UTF-8 bytes plus `len + 1` offsets.
/// Row `i` is `heap[offsets[i]..offsets[i+1]]`; null rows are
/// zero-length (and masked out by the column's validity).
///
/// Every offset range is guaranteed valid UTF-8 by construction:
/// [`StrColumn::new`] validates each slice once, so accessors can slice
/// without re-checking.
#[derive(Debug, Clone)]
pub struct StrColumn {
    offsets: Vec<u32>,
    heap: StrHeap,
}

impl StrColumn {
    /// Builds a column after validating every row slice as UTF-8.
    /// Returns `None` when offsets are malformed (non-monotone, wrong
    /// count, past the heap) or any slice is invalid UTF-8.
    pub fn new(offsets: Vec<u32>, heap: StrHeap) -> Option<Self> {
        let bytes = heap.as_bytes();
        if offsets.is_empty() || *offsets.last().unwrap() as usize != bytes.len() {
            return None;
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return None;
            }
            std::str::from_utf8(&bytes[w[0] as usize..w[1] as usize]).ok()?;
        }
        Some(StrColumn { offsets, heap })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` as a string slice borrowing the heap.
    pub fn get(&self, i: usize) -> &str {
        // Validated slice-by-slice in `new`; re-checking is cheap
        // insurance against construction bugs and keeps the crate free
        // of `unsafe`.
        std::str::from_utf8(self.get_bytes(i)).expect("validated at construction")
    }

    /// Row `i` as raw bytes (for wire writers that emit length + bytes).
    pub fn get_bytes(&self, i: usize) -> &[u8] {
        let (a, b) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        &self.heap.as_bytes()[a..b]
    }

    /// The backing heap.
    pub fn heap(&self) -> &StrHeap {
        &self.heap
    }

    /// The offsets vector (`len + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }
}

/// The typed vector behind one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Every row null (validity is implicitly all-invalid).
    Null,
    /// `Vec<i64>`; masked rows hold 0.
    Int(Vec<i64>),
    /// `Vec<f64>` with exact bit patterns (NaN-safe); masked rows hold 0.
    Real(Vec<f64>),
    /// Packed booleans; masked rows hold `false`.
    Bool(Vec<bool>),
    /// Flat string heap + offsets; masked rows are zero-length.
    Str(StrColumn),
    /// Row fallback: mixed-type or nested values, one `Value` per row.
    Other(Vec<Value>),
}

impl ColumnData {
    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ColumnData::Null => "null",
            ColumnData::Int(_) => "int",
            ColumnData::Real(_) => "real",
            ColumnData::Bool(_) => "bool",
            ColumnData::Str(_) => "str",
            ColumnData::Other(_) => "other",
        }
    }
}

/// One column: typed data plus an optional validity mask (absent ⇔ all
/// rows valid; [`ColumnData::Null`] columns are all-invalid without one).
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<Validity>,
}

impl Column {
    /// Assembles a column. `validity`, when present, must cover exactly
    /// the column's rows (checked by [`ValueBatch::from_parts`]).
    pub fn new(data: ColumnData, validity: Option<Validity>) -> Self {
        Column { data, validity }
    }

    /// The typed data vector.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity mask, if the column has nulls.
    pub fn validity(&self) -> Option<&Validity> {
        self.validity.as_ref()
    }

    /// Whether row `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        if matches!(self.data, ColumnData::Null) {
            return false;
        }
        self.validity.as_ref().is_none_or(|v| v.is_valid(i))
    }

    /// Materializes row `i` as a [`Value`] (row-view accessor; allocates
    /// for strings — columnar consumers should read the typed vectors).
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Null => Value::Null,
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Real(v) => Value::Real(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(col) => Value::str(col.get(i)),
            ColumnData::Other(v) => v[i].clone(),
        }
    }
}

/// A columnar batch of `len` rows across `columns.len()` columns.
#[derive(Debug, Clone, Default)]
pub struct ValueBatch {
    len: usize,
    columns: Vec<Column>,
}

impl ValueBatch {
    /// Builds a batch from row tuples.
    ///
    /// Returns `None` when the tuples do not share one arity — the
    /// caller's cue to fall back to the row wire format. A uniform batch
    /// always succeeds: columns that defy typing become
    /// [`ColumnData::Other`].
    pub fn from_tuples(tuples: &[Tuple]) -> Option<ValueBatch> {
        let Some(first) = tuples.first() else {
            return Some(ValueBatch::default());
        };
        let arity = first.arity();
        if tuples.iter().any(|t| t.arity() != arity) {
            return None;
        }
        let columns = (0..arity)
            .map(|c| build_column(tuples, c))
            .collect::<Vec<_>>();
        Some(ValueBatch {
            len: tuples.len(),
            columns,
        })
    }

    /// Assembles a batch from decoded columns (wire decode). Returns
    /// `None` when any column's row count or validity length disagrees
    /// with `len`.
    pub fn from_parts(len: usize, columns: Vec<Column>) -> Option<ValueBatch> {
        for col in &columns {
            let rows = match &col.data {
                ColumnData::Null => len,
                ColumnData::Int(v) => v.len(),
                ColumnData::Real(v) => v.len(),
                ColumnData::Bool(v) => v.len(),
                ColumnData::Str(s) => s.len(),
                ColumnData::Other(v) => v.len(),
            };
            if rows != len {
                return None;
            }
            if let Some(v) = &col.validity {
                if v.len() != len {
                    return None;
                }
            }
        }
        Some(ValueBatch { len, columns })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns. Zero-column batches with rows are legal (empty
    /// tuples flow through predicates).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column `c`.
    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// Materializes row `i` as a [`Tuple`] (row-view accessor).
    pub fn row(&self, i: usize) -> Tuple {
        assert!(i < self.len, "row {i} out of {} rows", self.len);
        self.columns.iter().map(|col| col.value(i)).collect()
    }

    /// Materializes every row — the documented row fallback for operator
    /// code that has not migrated to columnar access yet.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.len).map(|i| self.row(i)).collect()
    }
}

/// Scans column `c` of `tuples` and picks the densest representation.
fn build_column(tuples: &[Tuple], c: usize) -> Column {
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Unseen,
        Int,
        Real,
        Bool,
        Str,
        Other,
    }
    let mut kind = Kind::Unseen;
    let mut nulls = false;
    let mut str_bytes = 0usize;
    for t in tuples {
        match t.get(c) {
            Value::Null => nulls = true,
            Value::Int(_) if matches!(kind, Kind::Unseen | Kind::Int) => kind = Kind::Int,
            Value::Real(_) if matches!(kind, Kind::Unseen | Kind::Real) => kind = Kind::Real,
            Value::Bool(_) if matches!(kind, Kind::Unseen | Kind::Bool) => kind = Kind::Bool,
            Value::Str(s) if matches!(kind, Kind::Unseen | Kind::Str) => {
                kind = Kind::Str;
                str_bytes += s.len();
            }
            _ => {
                kind = Kind::Other;
                break;
            }
        }
    }
    let validity = || {
        nulls.then(|| {
            let flags: Vec<bool> = tuples
                .iter()
                .map(|t| !matches!(t.get(c), Value::Null))
                .collect();
            Validity::from_flags(&flags)
        })
    };
    let data = match kind {
        Kind::Unseen => return Column::new(ColumnData::Null, None),
        Kind::Int => ColumnData::Int(
            tuples
                .iter()
                .map(|t| match t.get(c) {
                    Value::Int(i) => *i,
                    _ => 0,
                })
                .collect(),
        ),
        Kind::Real => ColumnData::Real(
            tuples
                .iter()
                .map(|t| match t.get(c) {
                    Value::Real(r) => *r,
                    _ => 0.0,
                })
                .collect(),
        ),
        Kind::Bool => ColumnData::Bool(
            tuples
                .iter()
                .map(|t| match t.get(c) {
                    Value::Bool(b) => *b,
                    _ => false,
                })
                .collect(),
        ),
        Kind::Str => {
            let mut heap = Vec::with_capacity(str_bytes);
            let mut offsets = Vec::with_capacity(tuples.len() + 1);
            offsets.push(0u32);
            for t in tuples {
                if let Value::Str(s) = t.get(c) {
                    heap.extend_from_slice(s.as_bytes());
                }
                offsets.push(heap.len() as u32);
            }
            ColumnData::Str(
                StrColumn::new(offsets, StrHeap::Owned(heap)).expect("owned heap is valid UTF-8"),
            )
        }
        Kind::Other => ColumnData::Other(tuples.iter().map(|t| t.get(c).clone()).collect()),
    };
    Column::new(data, validity())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_batch() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![
                Value::Int(1),
                Value::str("Atlanta"),
                Value::Real(1.5),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int(2),
                Value::Null,
                Value::Real(f64::NAN),
                Value::Bool(true),
            ]),
            Tuple::new(vec![
                Value::Int(3),
                Value::str("Decatur"),
                Value::Real(-0.0),
                Value::Sequence(vec![Value::Int(9)]),
            ]),
        ]
    }

    #[test]
    fn round_trips_rows() {
        let tuples = mixed_batch();
        let batch = ValueBatch::from_tuples(&tuples).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.arity(), 4);
        for (i, t) in tuples.iter().enumerate() {
            assert_eq!(
                batch.row(i).total_cmp(t),
                std::cmp::Ordering::Equal,
                "row {i}"
            );
        }
        let back = batch.to_tuples();
        for (b, t) in back.iter().zip(&tuples) {
            assert_eq!(b.total_cmp(t), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn column_typing() {
        let batch = ValueBatch::from_tuples(&mixed_batch()).unwrap();
        assert!(matches!(batch.column(0).data(), ColumnData::Int(_)));
        assert!(matches!(batch.column(1).data(), ColumnData::Str(_)));
        assert!(matches!(batch.column(2).data(), ColumnData::Real(_)));
        assert!(matches!(batch.column(3).data(), ColumnData::Other(_)));
        assert!(batch.column(0).validity().is_none(), "no nulls, no mask");
        assert!(batch.column(1).validity().is_some());
        assert!(batch.column(1).is_valid(0));
        assert!(!batch.column(1).is_valid(1));
    }

    #[test]
    fn real_bits_survive() {
        let batch = ValueBatch::from_tuples(&mixed_batch()).unwrap();
        let ColumnData::Real(v) = batch.column(2).data() else {
            panic!("real column")
        };
        assert!(v[1].is_nan());
        assert!(v[2].is_sign_negative() && v[2] == 0.0);
    }

    #[test]
    fn non_uniform_arity_is_rejected() {
        let tuples = vec![Tuple::new(vec![Value::Int(1)]), Tuple::new(vec![])];
        assert!(ValueBatch::from_tuples(&tuples).is_none());
    }

    #[test]
    fn empty_and_all_null_columns() {
        assert_eq!(ValueBatch::from_tuples(&[]).unwrap().len(), 0);
        let tuples = vec![Tuple::new(vec![Value::Null]), Tuple::new(vec![Value::Null])];
        let batch = ValueBatch::from_tuples(&tuples).unwrap();
        assert!(matches!(batch.column(0).data(), ColumnData::Null));
        assert_eq!(batch.row(1), Tuple::new(vec![Value::Null]));
    }

    #[test]
    fn empty_tuples_keep_row_count() {
        let tuples = vec![Tuple::empty(), Tuple::empty()];
        let batch = ValueBatch::from_tuples(&tuples).unwrap();
        assert_eq!((batch.len(), batch.arity()), (2, 0));
        assert_eq!(batch.to_tuples(), tuples);
    }

    #[test]
    fn str_column_slices_share_heap() {
        let tuples = vec![
            Tuple::new(vec![Value::str("ab")]),
            Tuple::new(vec![Value::str("")]),
            Tuple::new(vec![Value::str("cde")]),
        ];
        let batch = ValueBatch::from_tuples(&tuples).unwrap();
        let ColumnData::Str(col) = batch.column(0).data() else {
            panic!("str column")
        };
        assert_eq!(col.get(0), "ab");
        assert_eq!(col.get(1), "");
        assert_eq!(col.get(2), "cde");
        assert_eq!(col.offsets(), &[0, 2, 2, 5]);
        assert!(!col.heap().is_shared());
        let heap = col.heap().as_bytes().as_ptr_range();
        assert!(heap.contains(&col.get_bytes(2).as_ptr()), "slice in heap");
    }

    #[test]
    fn shared_heap_validates_utf8_per_slice() {
        // 0xC3 0xA9 is 'é'; splitting it across an offset boundary makes
        // both halves invalid even though the whole heap is valid UTF-8.
        let heap = Bytes::from(vec![0xC3, 0xA9]);
        assert!(StrColumn::new(vec![0, 1, 2], StrHeap::Shared(heap.clone())).is_none());
        assert!(StrColumn::new(vec![0, 2], StrHeap::Shared(heap)).is_some());
    }

    #[test]
    fn from_parts_checks_lengths() {
        let col = Column::new(ColumnData::Int(vec![1, 2]), None);
        assert!(ValueBatch::from_parts(2, vec![col.clone()]).is_some());
        assert!(ValueBatch::from_parts(3, vec![col]).is_none());
        let bad_mask = Column::new(
            ColumnData::Int(vec![1, 2]),
            Some(Validity::from_flags(&[true])),
        );
        assert!(ValueBatch::from_parts(2, vec![bad_mask]).is_none());
    }

    #[test]
    fn validity_bit_packing() {
        let flags: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let v = Validity::from_flags(&flags);
        assert_eq!(v.as_bytes().len(), 3);
        for (i, &f) in flags.iter().enumerate() {
            assert_eq!(v.is_valid(i), f, "bit {i}");
        }
        assert_eq!(
            Validity::from_bytes(v.as_bytes().to_vec(), 19)
                .unwrap()
                .as_bytes(),
            v.as_bytes()
        );
        assert!(Validity::from_bytes(vec![0], 19).is_none());
    }
}
