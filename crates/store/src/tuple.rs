//! Flat tuples and schemas — the rows flowing through execution plans.

use std::fmt;
use std::sync::Arc;

use crate::{SqlType, Value};

/// A flat row of values. Cloning is cheap-ish (values are mostly `Arc`s).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The empty tuple (used by predicates that act as filters).
    pub fn empty() -> Self {
        Tuple::default()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Column access by position.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenates two tuples (parent columns ⊕ function result columns,
    /// as the γ apply operator does).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Projects the tuple onto the given column positions.
    pub fn project(&self, columns: &[usize]) -> Tuple {
        Tuple::new(columns.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Deterministic ordering for result comparison in tests.
    pub fn total_cmp(&self, other: &Tuple) -> std::cmp::Ordering {
        for (a, b) in self.values.iter().zip(other.values.iter()) {
            match a.total_cmp(b) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.values.len().cmp(&other.values.len())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

/// Sorts a bag of tuples into a canonical order (testing helper: parallel
/// plans produce results in nondeterministic order but the *bag* must match
/// the central plan's).
pub fn canonicalize(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by(|a, b| a.total_cmp(b));
    tuples
}

/// Column names and types of a tuple stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<(Arc<str>, SqlType)>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<(Arc<str>, SqlType)>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `&str` names.
    pub fn of(columns: &[(&str, SqlType)]) -> Self {
        Schema {
            columns: columns.iter().map(|(n, t)| (Arc::from(*n), *t)).collect(),
        }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema::default()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column name at position `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.columns[i].0
    }

    /// Column type at position `i`.
    pub fn sql_type(&self, i: usize) -> SqlType {
        self.columns[i].1
    }

    /// Position of the column with the given name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| &**n == name)
    }

    /// All columns.
    pub fn columns(&self) -> &[(Arc<str>, SqlType)] {
        &self.columns
    }

    /// Concatenates two schemas (mirrors [`Tuple::concat`]).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Projects onto the given positions (mirrors [`Tuple::project`]).
    pub fn project(&self, positions: &[usize]) -> Schema {
        Schema {
            columns: positions.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Checks that a tuple inhabits this schema.
    pub fn admits(&self, tuple: &Tuple) -> bool {
        tuple.arity() == self.arity()
            && tuple
                .values()
                .iter()
                .zip(self.columns.iter())
                .all(|(v, (_, t))| t.admits(v))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (n, t)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn concat_and_project() {
        let a = t(&[1, 2]);
        let b = t(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[2, 0]), t(&[3, 1]));
    }

    #[test]
    fn display_tuple() {
        let tup = Tuple::new(vec![Value::str("CO"), Value::Real(1.5)]);
        assert_eq!(tup.to_string(), "<\"CO\", 1.5>");
        assert_eq!(Tuple::empty().to_string(), "<>");
    }

    #[test]
    fn canonicalize_sorts() {
        let bag = vec![t(&[3]), t(&[1]), t(&[2])];
        let sorted = canonicalize(bag);
        assert_eq!(sorted, vec![t(&[1]), t(&[2]), t(&[3])]);
    }

    #[test]
    fn canonicalize_is_order_insensitive() {
        let a = canonicalize(vec![t(&[1, 2]), t(&[3, 4]), t(&[1, 1])]);
        let b = canonicalize(vec![t(&[3, 4]), t(&[1, 1]), t(&[1, 2])]);
        assert_eq!(a, b);
    }

    #[test]
    fn schema_lookup_and_concat() {
        let s1 = Schema::of(&[("state", SqlType::Charstring)]);
        let s2 = Schema::of(&[("lat", SqlType::Real), ("lon", SqlType::Real)]);
        let s = s1.concat(&s2);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("lat"), Some(1));
        assert_eq!(s.position("nope"), None);
        assert_eq!(s.name(0), "state");
        assert_eq!(s.sql_type(2), SqlType::Real);
    }

    #[test]
    fn schema_admits() {
        let s = Schema::of(&[("a", SqlType::Charstring), ("b", SqlType::Real)]);
        assert!(s.admits(&Tuple::new(vec![Value::str("x"), Value::Real(1.0)])));
        assert!(s.admits(&Tuple::new(vec![Value::Null, Value::Int(1)])));
        assert!(!s.admits(&Tuple::new(vec![Value::str("x")])));
        assert!(!s.admits(&Tuple::new(vec![Value::Real(1.0), Value::Real(1.0)])));
    }

    #[test]
    fn schema_project() {
        let s = Schema::of(&[("a", SqlType::Charstring), ("b", SqlType::Real)]);
        let p = s.project(&[1]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.name(0), "b");
    }

    #[test]
    fn tuple_total_cmp_handles_prefixes() {
        use std::cmp::Ordering;
        assert_eq!(t(&[1]).total_cmp(&t(&[1, 2])), Ordering::Less);
        assert_eq!(t(&[2]).total_cmp(&t(&[1, 2])), Ordering::Greater);
    }
}
