//! XML ⇄ value conversion: the materialization step of the `cwo` built-in.
//!
//! The paper's Fig. 2 shows an OWF converting "the output XML structure from
//! the web service operation call into records and sequences". The rules
//! here are:
//!
//! * an element with no child elements becomes a [`Value::Str`] of its text;
//! * an element with children becomes a [`Value::Record`]; a child name that
//!   occurs once maps to its converted value, a name that repeats maps to a
//!   [`Value::Sequence`] of the converted occurrences, preserving order.
//!
//! Attributes are folded in as record fields prefixed with `@`, after the
//! child elements (SOAP payloads in the paper carry data in elements, so
//! this is a compatibility nicety).

use wsmed_xml::Element;

use crate::{Record, Value};

/// Converts an XML element tree into record/sequence values.
pub fn xml_to_value(el: &Element) -> Value {
    if el.children.is_empty() {
        return Value::str(el.text());
    }
    // Group converted children by name, preserving first-occurrence order.
    let mut groups: Vec<(&str, Vec<Value>)> = Vec::new();
    for child in &el.children {
        let name = child.local_name();
        let converted = xml_to_value(child);
        match groups.iter_mut().find(|(n, _)| *n == name) {
            Some((_, items)) => items.push(converted),
            None => groups.push((name, vec![converted])),
        }
    }
    let mut record = Record::new();
    for (name, mut items) in groups {
        let value = if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Value::Sequence(items)
        };
        record.set(name.to_owned(), value);
    }
    for (k, v) in &el.attributes {
        record.set(format!("@{k}"), Value::str(v));
    }
    Value::Record(record)
}

/// Converts a value back to XML under the given element name. Inverse of
/// [`xml_to_value`] for values produced by it (attribute fields `@k` become
/// attributes again).
pub fn value_to_xml(name: &str, value: &Value) -> Element {
    match value {
        Value::Record(record) => {
            let mut el = Element::new(name);
            for (field, v) in record.iter() {
                if let Some(attr) = field.strip_prefix('@') {
                    el.attributes.push((attr.to_owned(), v.render()));
                } else if let Value::Sequence(items) = v {
                    for item in items {
                        el.children.push(value_to_xml(field, item));
                    }
                } else {
                    el.children.push(value_to_xml(field, v));
                }
            }
            el
        }
        Value::Sequence(items) | Value::Bag(items) => {
            let mut el = Element::new(name);
            for item in items {
                el.children.push(value_to_xml("item", item));
            }
            el
        }
        scalar => Element::text_leaf(name, scalar.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsmed_xml::parse;

    #[test]
    fn leaf_becomes_string() {
        let el = parse("<State>Colorado</State>").unwrap();
        assert_eq!(xml_to_value(&el), Value::str("Colorado"));
    }

    #[test]
    fn unique_children_become_record() {
        let el = parse("<P><Name>Atlanta</Name><State>GA</State></P>").unwrap();
        let v = xml_to_value(&el);
        let r = v.as_record().unwrap();
        assert_eq!(r.get("Name").unwrap().as_str().unwrap(), "Atlanta");
        assert_eq!(r.get("State").unwrap().as_str().unwrap(), "GA");
    }

    #[test]
    fn repeated_children_become_sequence() {
        let el =
            parse("<R><Item>a</Item><Item>b</Item><Item>c</Item><Other>x</Other></R>").unwrap();
        let v = xml_to_value(&el);
        let r = v.as_record().unwrap();
        let seq = r.get("Item").unwrap().as_collection().unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[1], Value::str("b"));
        assert_eq!(r.get("Other").unwrap(), &Value::str("x"));
    }

    #[test]
    fn attributes_become_at_fields() {
        let el = parse("<P code=\"80840\"><Name>USAF Academy</Name></P>").unwrap();
        let v = xml_to_value(&el);
        let r = v.as_record().unwrap();
        assert_eq!(r.get("@code").unwrap().as_str().unwrap(), "80840");
    }

    #[test]
    fn nested_structure_like_getallstates() {
        // Shape of the paper's GetAllStates response (Fig. 2).
        let xml = "<GetAllStatesResponse>\
             <GetAllStatesResult>\
               <GeoPlaceDetails><Name>Alabama</Name><State>AL</State></GeoPlaceDetails>\
               <GeoPlaceDetails><Name>Alaska</Name><State>AK</State></GeoPlaceDetails>\
             </GetAllStatesResult>\
           </GetAllStatesResponse>";
        let v = xml_to_value(&parse(xml).unwrap());
        let result = v.as_record().unwrap().get("GetAllStatesResult").unwrap();
        let details = result.as_record().unwrap().get("GeoPlaceDetails").unwrap();
        let seq = details.as_collection().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(
            seq[0].as_record().unwrap().get("State").unwrap(),
            &Value::str("AL")
        );
    }

    #[test]
    fn value_to_xml_roundtrip() {
        let xml = "<R a=\"1\"><Item>a</Item><Item>b</Item><Name>x</Name></R>";
        let el = parse(xml).unwrap();
        let v = xml_to_value(&el);
        let back = value_to_xml("R", &v);
        // Round-trips through the value layer: converting again matches.
        assert_eq!(xml_to_value(&back), v);
    }

    #[test]
    fn empty_element_is_empty_string() {
        let el = parse("<E/>").unwrap();
        assert_eq!(xml_to_value(&el), Value::str(""));
    }
}
