//! The dynamic value universe of the functional store.

use std::fmt;
use std::sync::Arc;

use crate::{StoreError, StoreResult};

/// An ordered record: attribute names mapped to values, in insertion order.
///
/// The paper accesses record attributes with the notation `r[a]` (Fig. 2);
/// [`Record::get`] is that operator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    fields: Vec<(Arc<str>, Value)>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Adds or replaces an attribute.
    pub fn set(&mut self, name: impl Into<Arc<str>>, value: Value) {
        let name = name.into();
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.fields.push((name, value));
        }
    }

    /// Builder-style [`Record::set`].
    #[must_use]
    pub fn with(mut self, name: impl Into<Arc<str>>, value: Value) -> Self {
        self.set(name, value);
        self
    }

    /// The paper's `r[a]` attribute access. Errors if absent.
    pub fn get(&self, name: &str) -> StoreResult<&Value> {
        self.fields
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| StoreError::NoSuchAttribute {
                attribute: name.to_owned(),
                available: self.fields.iter().map(|(n, _)| n.to_string()).collect(),
            })
    }

    /// Attribute access returning `None` if absent.
    pub fn get_opt(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| v)
    }

    /// Attribute names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| &**n)
    }

    /// Attribute count.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the record has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (&**n, v))
    }
}

impl FromIterator<(Arc<str>, Value)> for Record {
    fn from_iter<T: IntoIterator<Item = (Arc<str>, Value)>>(iter: T) -> Self {
        let mut r = Record::new();
        for (n, v) in iter {
            r.set(n, v);
        }
        r
    }
}

/// A dynamic value: the universe the OWFs and helping functions operate on.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// Absent / SQL NULL.
    #[default]
    Null,
    /// `Charstring` in the paper's signatures.
    Str(Arc<str>),
    /// `Real` in the paper's signatures.
    Real(f64),
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// A record (attribute → value).
    Record(Record),
    /// An ordered sequence of values.
    Sequence(Vec<Value>),
    /// An unordered bag of values (kept in arrival order).
    Bag(Vec<Value>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Str(_) => "Charstring",
            Value::Real(_) => "Real",
            Value::Int(_) => "Integer",
            Value::Bool(_) => "Boolean",
            Value::Record(_) => "Record",
            Value::Sequence(_) => "Sequence",
            Value::Bag(_) => "Bag",
        }
    }

    /// Extracts a string slice, or errors with a type mismatch.
    pub fn as_str(&self) -> StoreResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(StoreError::TypeMismatch {
                expected: "Charstring".into(),
                actual: other.kind().into(),
            }),
        }
    }

    /// Extracts a real, coercing integers.
    pub fn as_real(&self) -> StoreResult<f64> {
        match self {
            Value::Real(r) => Ok(*r),
            Value::Int(i) => Ok(*i as f64),
            other => Err(StoreError::TypeMismatch {
                expected: "Real".into(),
                actual: other.kind().into(),
            }),
        }
    }

    /// Extracts an integer.
    pub fn as_int(&self) -> StoreResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(StoreError::TypeMismatch {
                expected: "Integer".into(),
                actual: other.kind().into(),
            }),
        }
    }

    /// Extracts a boolean. Accepts the strings `"true"`/`"false"` since SOAP
    /// payloads carry booleans as text.
    pub fn as_bool(&self) -> StoreResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) if &**s == "true" => Ok(true),
            Value::Str(s) if &**s == "false" => Ok(false),
            other => Err(StoreError::TypeMismatch {
                expected: "Boolean".into(),
                actual: other.kind().into(),
            }),
        }
    }

    /// Extracts a record reference.
    pub fn as_record(&self) -> StoreResult<&Record> {
        match self {
            Value::Record(r) => Ok(r),
            other => Err(StoreError::TypeMismatch {
                expected: "Record".into(),
                actual: other.kind().into(),
            }),
        }
    }

    /// Extracts the elements of a sequence or bag.
    pub fn as_collection(&self) -> StoreResult<&[Value]> {
        match self {
            Value::Sequence(items) | Value::Bag(items) => Ok(items),
            other => Err(StoreError::TypeMismatch {
                expected: "Sequence or Bag".into(),
                actual: other.kind().into(),
            }),
        }
    }

    /// Renders the value the way SOAP payloads and CSV output expect:
    /// strings bare, reals with minimal digits, `Null` as the empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Str(s) => s.to_string(),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.abs() < 1e15 {
                    format!("{:.1}", r)
                } else {
                    format!("{}", r)
                }
            }
            Value::Int(i) => i.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Record(_) | Value::Sequence(_) | Value::Bag(_) => format!("{self}"),
        }
    }

    /// Total ordering for deterministic sorting of heterogeneous results
    /// (used when comparing bags in tests). Orders first by kind, then by
    /// content; reals use IEEE total ordering.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Real(_) => 3,
                Value::Str(_) => 4,
                Value::Record(_) => 5,
                Value::Sequence(_) => 6,
                Value::Bag(_) => 7,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Record(a), Value::Record(b)) => {
                let la: Vec<_> = a.iter().collect();
                let lb: Vec<_> = b.iter().collect();
                for ((na, va), (nb, vb)) in la.iter().zip(lb.iter()) {
                    match na.cmp(nb).then_with(|| va.total_cmp(vb)) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                la.len().cmp(&lb.len())
            }
            (Value::Sequence(a), Value::Sequence(b)) | (Value::Bag(a), Value::Bag(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// `Display` writes a Lisp-ish literal notation used in logs and EXPLAIN
/// output: `"str"`, `3.5`, `{a: 1, b: "x"}`, `[1, 2]`, `bag(1, 2)`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Record(r) => {
                write!(f, "{{")?;
                for (i, (n, v)) in r.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Sequence(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Bag(items) => {
                write!(f, "bag(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_set_get() {
        let mut r = Record::new();
        r.set("State", Value::str("CO"));
        r.set("Lat", Value::Real(39.0));
        assert_eq!(r.get("State").unwrap().as_str().unwrap(), "CO");
        assert_eq!(r.get("Lat").unwrap().as_real().unwrap(), 39.0);
        let err = r.get("Missing").unwrap_err();
        assert!(matches!(err, StoreError::NoSuchAttribute { .. }));
    }

    #[test]
    fn record_set_replaces_in_place() {
        let mut r = Record::new();
        r.set("a", Value::Int(1));
        r.set("b", Value::Int(2));
        r.set("a", Value::Int(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a").unwrap().as_int().unwrap(), 3);
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_real().unwrap(), 3.0);
        assert!(Value::str("x").as_real().is_err());
        assert!(Value::str("true").as_bool().unwrap());
        assert!(!Value::str("false").as_bool().unwrap());
        assert!(Value::str("TRUE").as_bool().is_err());
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::str("hi").render(), "hi");
        assert_eq!(Value::Real(15.0).render(), "15.0");
        assert_eq!(Value::Real(2.75).render(), "2.75");
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Bool(true).render(), "true");
    }

    #[test]
    fn display_notation() {
        let v = Value::Record(
            Record::new()
                .with("a", Value::Int(1))
                .with("b", Value::Sequence(vec![Value::str("x"), Value::Null])),
        );
        assert_eq!(v.to_string(), "{a: 1, b: [\"x\", null]}");
        assert_eq!(Value::Bag(vec![Value::Int(1)]).to_string(), "bag(1)");
    }

    #[test]
    fn total_cmp_is_total_and_consistent() {
        use std::cmp::Ordering;
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Int(-1),
            Value::Real(f64::NAN),
            Value::Real(1.5),
            Value::str("a"),
            Value::Sequence(vec![Value::Int(1)]),
        ];
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "antisymmetry violated for {a} vs {b}");
            }
        }
    }

    #[test]
    fn collection_access() {
        let s = Value::Sequence(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(s.as_collection().unwrap().len(), 2);
        let b = Value::Bag(vec![Value::Int(1)]);
        assert_eq!(b.as_collection().unwrap().len(), 1);
        assert!(Value::Int(1).as_collection().is_err());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(1.5), Value::Real(1.5));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
    }
}
