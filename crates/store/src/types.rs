//! SQL-level types used in OWF signatures.

use std::fmt;

use crate::{StoreResult, Value};

/// The scalar types appearing in OWF signatures (the paper uses
/// `Charstring` and `Real`; we add `Integer` and `Boolean` for generality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// Character string.
    Charstring,
    /// Double-precision real.
    Real,
    /// 64-bit integer.
    Integer,
    /// Boolean.
    Boolean,
}

impl SqlType {
    /// Parses a type name as written in WSDL/XSD (`xsd:string` etc.) or in
    /// the paper's signature notation (`Charstring`).
    pub fn parse(name: &str) -> Option<SqlType> {
        let local = name.rsplit(':').next().unwrap_or(name);
        match local {
            "Charstring" | "string" => Some(SqlType::Charstring),
            "Real" | "double" | "float" | "decimal" => Some(SqlType::Real),
            "Integer" | "int" | "long" | "integer" | "short" => Some(SqlType::Integer),
            "Boolean" | "boolean" => Some(SqlType::Boolean),
            _ => None,
        }
    }

    /// Coerces a raw text payload (from XML character data) into a typed
    /// [`Value`]. Unparseable text falls back to `Value::Null` for numeric
    /// types, mirroring lenient web-service clients.
    pub fn value_from_text(self, text: &str) -> Value {
        match self {
            SqlType::Charstring => Value::str(text),
            SqlType::Real => text
                .trim()
                .parse::<f64>()
                .map(Value::Real)
                .unwrap_or(Value::Null),
            SqlType::Integer => text
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            SqlType::Boolean => match text.trim() {
                "true" | "1" => Value::Bool(true),
                "false" | "0" => Value::Bool(false),
                _ => Value::Null,
            },
        }
    }

    /// Checks that a value inhabits this type (Null passes every type).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (SqlType::Charstring, Value::Str(_))
                | (SqlType::Real, Value::Real(_))
                | (SqlType::Real, Value::Int(_))
                | (SqlType::Integer, Value::Int(_))
                | (SqlType::Boolean, Value::Bool(_))
        )
    }

    /// Converts a typed value back to SOAP text. Inverse of
    /// [`SqlType::value_from_text`] for admissible values.
    pub fn value_to_text(self, value: &Value) -> StoreResult<String> {
        match self {
            SqlType::Charstring => Ok(value.as_str()?.to_owned()),
            SqlType::Real => Ok(Value::Real(value.as_real()?).render()),
            SqlType::Integer => Ok(value.as_int()?.to_string()),
            SqlType::Boolean => Ok(value.as_bool()?.to_string()),
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlType::Charstring => "Charstring",
            SqlType::Real => "Real",
            SqlType::Integer => "Integer",
            SqlType::Boolean => "Boolean",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_xsd_and_paper_names() {
        assert_eq!(SqlType::parse("xsd:string"), Some(SqlType::Charstring));
        assert_eq!(SqlType::parse("Charstring"), Some(SqlType::Charstring));
        assert_eq!(SqlType::parse("s:double"), Some(SqlType::Real));
        assert_eq!(SqlType::parse("int"), Some(SqlType::Integer));
        assert_eq!(SqlType::parse("boolean"), Some(SqlType::Boolean));
        assert_eq!(SqlType::parse("xsd:dateTime"), None);
    }

    #[test]
    fn text_conversion_roundtrip() {
        assert_eq!(SqlType::Charstring.value_from_text("hi"), Value::str("hi"));
        assert_eq!(SqlType::Real.value_from_text("15.5"), Value::Real(15.5));
        assert_eq!(SqlType::Integer.value_from_text(" 42 "), Value::Int(42));
        assert_eq!(SqlType::Boolean.value_from_text("true"), Value::Bool(true));
        assert_eq!(SqlType::Real.value_from_text("oops"), Value::Null);
    }

    #[test]
    fn value_to_text_roundtrips() {
        let cases = [
            (SqlType::Charstring, Value::str("x"), "x"),
            (SqlType::Real, Value::Real(15.0), "15.0"),
            (SqlType::Integer, Value::Int(7), "7"),
            (SqlType::Boolean, Value::Bool(false), "false"),
        ];
        for (ty, v, want) in cases {
            assert_eq!(ty.value_to_text(&v).unwrap(), want);
        }
        assert!(SqlType::Real.value_to_text(&Value::str("x")).is_err());
    }

    #[test]
    fn admits_null_everywhere() {
        for ty in [
            SqlType::Charstring,
            SqlType::Real,
            SqlType::Integer,
            SqlType::Boolean,
        ] {
            assert!(ty.admits(&Value::Null));
        }
        assert!(SqlType::Real.admits(&Value::Int(1)));
        assert!(!SqlType::Integer.admits(&Value::Real(1.0)));
        assert!(!SqlType::Charstring.admits(&Value::Int(1)));
    }

    #[test]
    fn display_names() {
        assert_eq!(SqlType::Charstring.to_string(), "Charstring");
        assert_eq!(SqlType::Real.to_string(), "Real");
    }
}
