//! The helping-function registry.
//!
//! In WSMED, the γ (apply) operator applies a *function* to an argument
//! tuple and emits a bag of result tuples (Fig. 6/10 in the paper). Besides
//! OWFs — which the mediator registers at WSDL-import time — queries use
//! *helping functions* such as `getzipcode` (split a comma-separated zip
//! string), `concat` (string concatenation) and `equal` (a predicate that
//! emits one empty tuple when its arguments match and nothing otherwise).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{SqlType, StoreError, StoreResult, Tuple, Value};

/// The native implementation of a function: argument values in, bag of
/// result tuples out.
pub type NativeFn = Arc<dyn Fn(&[Value]) -> StoreResult<Vec<Tuple>> + Send + Sync>;

/// A function signature: typed input parameters and output columns.
///
/// Mirrors the paper's notation, e.g.
/// `PF3(Charstring st1) -> Stream of Charstring zc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Input parameter names and types (inputs are the `-` adornments).
    pub inputs: Vec<(String, SqlType)>,
    /// Output column names and types (outputs are the `+` adornments).
    pub outputs: Vec<(String, SqlType)>,
}

impl Signature {
    /// Creates a signature from slices of `(name, type)` pairs.
    pub fn of(inputs: &[(&str, SqlType)], outputs: &[(&str, SqlType)]) -> Self {
        Signature {
            inputs: inputs.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
            outputs: outputs.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (n, t)) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t} {n}")?;
        }
        write!(f, ") -> Stream of <")?;
        for (i, (n, t)) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t} {n}")?;
        }
        write!(f, ">")
    }
}

/// A registry of named functions with signatures.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    functions: HashMap<String, (Signature, NativeFn)>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Creates a registry preloaded with the built-in helping functions.
    pub fn with_builtins() -> Self {
        let mut reg = FunctionRegistry::new();
        install_builtins(&mut reg);
        reg
    }

    /// Registers a function, replacing any previous definition.
    pub fn register(&mut self, name: impl Into<String>, signature: Signature, body: NativeFn) {
        self.functions.insert(name.into(), (signature, body));
    }

    /// Looks up a function's signature.
    pub fn signature(&self, name: &str) -> StoreResult<&Signature> {
        self.functions
            .get(name)
            .map(|(sig, _)| sig)
            .ok_or_else(|| StoreError::UnknownFunction(name.to_owned()))
    }

    /// True if a function with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.functions.keys().cloned().collect();
        names.sort();
        names
    }

    /// Applies a function to argument values, checking arity.
    pub fn apply(&self, name: &str, args: &[Value]) -> StoreResult<Vec<Tuple>> {
        let (sig, body) = self
            .functions
            .get(name)
            .ok_or_else(|| StoreError::UnknownFunction(name.to_owned()))?;
        if args.len() != sig.inputs.len() {
            return Err(StoreError::ArityMismatch {
                function: name.to_owned(),
                expected: sig.inputs.len(),
                actual: args.len(),
            });
        }
        body(args)
    }
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Installs the built-in helping functions used by the paper's queries:
///
/// * `concat(Charstring…) -> Charstring` — string concatenation (the query
///   compiler turns SQL `+` on strings into `concat`);
/// * `getzipcode(Charstring zipstr) -> Stream of Charstring zipcode` —
///   splits USZip's comma-separated zip string (§II.B);
/// * `equal(a, b)` — predicate: emits one empty tuple iff `a = b` (used to
///   post-filter `gp.ToPlace='USAF Academy'` in Fig. 10).
pub fn install_builtins(reg: &mut FunctionRegistry) {
    reg.register(
        "concat",
        Signature::of(
            &[("a", SqlType::Charstring), ("b", SqlType::Charstring)],
            &[("result", SqlType::Charstring)],
        ),
        Arc::new(|args| {
            let mut out = String::new();
            for a in args {
                out.push_str(a.as_str()?);
            }
            Ok(vec![Tuple::new(vec![Value::from(out)])])
        }),
    );
    // concat3 joins three strings — Query1 builds `ToPlace + ', ' + ToState`.
    reg.register(
        "concat3",
        Signature::of(
            &[
                ("a", SqlType::Charstring),
                ("b", SqlType::Charstring),
                ("c", SqlType::Charstring),
            ],
            &[("result", SqlType::Charstring)],
        ),
        Arc::new(|args| {
            let mut out = String::new();
            for a in args {
                out.push_str(a.as_str()?);
            }
            Ok(vec![Tuple::new(vec![Value::from(out)])])
        }),
    );
    reg.register(
        "getzipcode",
        Signature::of(
            &[("zipstr", SqlType::Charstring)],
            &[("zipcode", SqlType::Charstring)],
        ),
        Arc::new(|args| {
            let zipstr = args[0].as_str()?;
            Ok(zipstr
                .split(',')
                .map(str::trim)
                .filter(|z| !z.is_empty())
                .map(|z| Tuple::new(vec![Value::str(z)]))
                .collect())
        }),
    );
    reg.register(
        "equal",
        Signature::of(
            &[("a", SqlType::Charstring), ("b", SqlType::Charstring)],
            &[],
        ),
        Arc::new(|args| {
            if args[0] == args[1] {
                Ok(vec![Tuple::empty()])
            } else {
                Ok(Vec::new())
            }
        }),
    );
    // Comparison predicates backing SQL's <, <=, >, >=, <> filters. Numeric
    // arguments compare numerically (Int/Real mix allowed), strings compare
    // lexicographically; anything else is a type mismatch.
    for (name, keep) in [
        ("lt", [std::cmp::Ordering::Less].as_slice()),
        ("le", &[std::cmp::Ordering::Less, std::cmp::Ordering::Equal]),
        ("gt", &[std::cmp::Ordering::Greater]),
        (
            "ge",
            &[std::cmp::Ordering::Greater, std::cmp::Ordering::Equal],
        ),
        (
            "ne",
            &[std::cmp::Ordering::Less, std::cmp::Ordering::Greater],
        ),
    ] {
        let keep = keep.to_vec();
        reg.register(
            name,
            Signature::of(
                &[("a", SqlType::Charstring), ("b", SqlType::Charstring)],
                &[],
            ),
            Arc::new(move |args| {
                let ord = compare_values(&args[0], &args[1])?;
                if keep.contains(&ord) {
                    Ok(vec![Tuple::empty()])
                } else {
                    Ok(Vec::new())
                }
            }),
        );
    }
}

/// SQL comparison semantics for the filter builtins.
fn compare_values(a: &Value, b: &Value) -> StoreResult<std::cmp::Ordering> {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Real(_) | Value::Int(_), Value::Real(_) | Value::Int(_)) => {
            Ok(a.as_real()?.total_cmp(&b.as_real()?))
        }
        (Value::Bool(x), Value::Bool(y)) => Ok(x.cmp(y)),
        _ => Err(crate::StoreError::TypeMismatch {
            expected: format!("comparable to {}", a.kind()),
            actual: b.kind().into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_present() {
        let reg = FunctionRegistry::with_builtins();
        for name in [
            "concat",
            "concat3",
            "getzipcode",
            "equal",
            "lt",
            "le",
            "gt",
            "ge",
            "ne",
        ] {
            assert!(reg.contains(name), "missing builtin {name}");
        }
    }

    #[test]
    fn comparison_filters() {
        let reg = FunctionRegistry::with_builtins();
        let hit = |f: &str, a: Value, b: Value| !reg.apply(f, &[a, b]).unwrap().is_empty();
        assert!(hit("lt", Value::Int(1), Value::Int(2)));
        assert!(!hit("lt", Value::Int(2), Value::Int(2)));
        assert!(hit("le", Value::Int(2), Value::Int(2)));
        assert!(hit("gt", Value::Real(2.5), Value::Int(2)));
        assert!(hit("ge", Value::Int(3), Value::Real(2.5)));
        assert!(hit("ne", Value::str("a"), Value::str("b")));
        assert!(!hit("ne", Value::str("a"), Value::str("a")));
        // Lexicographic string comparison.
        assert!(hit("lt", Value::str("Alabama"), Value::str("Wyoming")));
        // Mixed incomparable types error.
        assert!(reg.apply("lt", &[Value::str("a"), Value::Int(1)]).is_err());
    }

    #[test]
    fn concat_joins() {
        let reg = FunctionRegistry::with_builtins();
        let rows = reg
            .apply("concat", &[Value::str("Atlanta"), Value::str(", GA")])
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).as_str().unwrap(), "Atlanta, GA");
    }

    #[test]
    fn concat3_joins_three() {
        let reg = FunctionRegistry::with_builtins();
        let rows = reg
            .apply(
                "concat3",
                &[Value::str("Atlanta"), Value::str(", "), Value::str("GA")],
            )
            .unwrap();
        assert_eq!(rows[0].get(0).as_str().unwrap(), "Atlanta, GA");
    }

    #[test]
    fn getzipcode_splits_and_trims() {
        let reg = FunctionRegistry::with_builtins();
        let rows = reg
            .apply("getzipcode", &[Value::str("80840, 80841 ,80901,")])
            .unwrap();
        let zips: Vec<&str> = rows.iter().map(|t| t.get(0).as_str().unwrap()).collect();
        assert_eq!(zips, vec!["80840", "80841", "80901"]);
    }

    #[test]
    fn getzipcode_empty_string_yields_nothing() {
        let reg = FunctionRegistry::with_builtins();
        assert!(reg
            .apply("getzipcode", &[Value::str("")])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn equal_acts_as_filter() {
        let reg = FunctionRegistry::with_builtins();
        let hit = reg
            .apply("equal", &[Value::str("x"), Value::str("x")])
            .unwrap();
        assert_eq!(hit, vec![Tuple::empty()]);
        let miss = reg
            .apply("equal", &[Value::str("x"), Value::str("y")])
            .unwrap();
        assert!(miss.is_empty());
    }

    #[test]
    fn arity_checked() {
        let reg = FunctionRegistry::with_builtins();
        let err = reg.apply("equal", &[Value::str("x")]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::ArityMismatch {
                expected: 2,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn unknown_function_errors() {
        let reg = FunctionRegistry::with_builtins();
        assert!(matches!(
            reg.apply("nope", &[]).unwrap_err(),
            StoreError::UnknownFunction(_)
        ));
        assert!(reg.signature("nope").is_err());
    }

    #[test]
    fn custom_registration_and_signature_display() {
        let mut reg = FunctionRegistry::new();
        let sig = Signature::of(
            &[("st", SqlType::Charstring)],
            &[("zip", SqlType::Charstring), ("dist", SqlType::Real)],
        );
        assert_eq!(
            sig.to_string(),
            "(Charstring st) -> Stream of <Charstring zip, Real dist>"
        );
        reg.register("f", sig.clone(), Arc::new(|_| Ok(Vec::new())));
        assert_eq!(reg.signature("f").unwrap(), &sig);
        assert!(reg.apply("f", &[Value::Null]).unwrap().is_empty());
    }

    #[test]
    fn concat_rejects_non_strings() {
        let reg = FunctionRegistry::with_builtins();
        let err = reg
            .apply("concat", &[Value::Int(1), Value::str("a")])
            .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }
}
