//! Errors raised by the store and by helping-function evaluation.

use std::fmt;

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors from value access, coercion and function application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A record had no attribute with the given name.
    NoSuchAttribute {
        /// Attribute that was requested.
        attribute: String,
        /// Attributes the record actually has.
        available: Vec<String>,
    },
    /// A value had the wrong kind for the requested operation.
    TypeMismatch {
        /// What the caller expected, e.g. `"Charstring"`.
        expected: String,
        /// Short description of the actual value.
        actual: String,
    },
    /// A function was called with the wrong number of arguments.
    ArityMismatch {
        /// Function name.
        function: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        actual: usize,
    },
    /// No function registered under this name.
    UnknownFunction(String),
    /// A function failed while evaluating.
    EvalError {
        /// Function name.
        function: String,
        /// Description of the failure.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchAttribute {
                attribute,
                available,
            } => {
                write!(f, "no attribute {attribute:?} (record has {available:?})")
            }
            StoreError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            StoreError::ArityMismatch {
                function,
                expected,
                actual,
            } => write!(
                f,
                "function {function:?} expects {expected} argument(s), got {actual}"
            ),
            StoreError::UnknownFunction(name) => write!(f, "unknown function {name:?}"),
            StoreError::EvalError { function, message } => {
                write!(f, "error evaluating {function:?}: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StoreError::NoSuchAttribute {
            attribute: "State".into(),
            available: vec!["Name".into()],
        };
        assert!(e.to_string().contains("State"));
        let e = StoreError::ArityMismatch {
            function: "concat".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("concat"));
        let e = StoreError::UnknownFunction("nope".into());
        assert!(e.to_string().contains("nope"));
    }
}
