#![deny(missing_docs)]

//! # wsmed-store
//!
//! The functional main-memory data model underneath WSMED, modeled on the
//! Amos II functional DBMS the paper builds on (reference \[14\] in the paper).
//!
//! WSMED's operation wrapper functions (OWFs, Fig. 2 in the paper) convert
//! the XML output of a web service operation into *records* and *sequences*,
//! then flatten them into streams of typed tuples. This crate provides:
//!
//! * [`Value`] — the dynamic value universe: strings, reals, integers,
//!   booleans, records, sequences and bags;
//! * [`Tuple`] and [`Schema`] — flat rows with named, typed columns;
//! * [`xml_to_value`] — the XML → record/sequence conversion performed by
//!   the `cwo` built-in when a web service response is materialized in the
//!   local store;
//! * [`FunctionRegistry`] — the helping functions a query may apply
//!   (`getzipcode`, `concat`, `equal`, …) plus an extension point for the
//!   mediator to register OWFs.

mod batch;
mod error;
mod functions;
mod tuple;
mod types;
mod value;
mod xmlval;

pub use batch::{Column, ColumnData, StrColumn, StrHeap, Validity, ValueBatch};
pub use error::{StoreError, StoreResult};
pub use functions::{install_builtins, FunctionRegistry, NativeFn, Signature};
pub use tuple::{canonicalize, Schema, Tuple};
pub use types::SqlType;
pub use value::{Record, Value};
pub use xmlval::{value_to_xml, xml_to_value};
