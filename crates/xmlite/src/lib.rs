#![deny(missing_docs)]

//! # wsmed-xml
//!
//! A deliberately small XML 1.0 subset parser and writer.
//!
//! WSMED ([Sabesan & Risch, ICDE 2009]) mediates *data providing web services*:
//! SOAP-style operations whose results are nested XML trees that the mediator
//! flattens into relational tuples. This crate provides exactly the XML
//! machinery those code paths need — elements, attributes, text, comments,
//! processing instructions, and the five predefined entities — and nothing
//! else (no DTDs, no namespaces-as-objects, no external entities).
//!
//! The subset is:
//!
//! * elements with attributes (`<a b="c">…</a>`, `<a/>`)
//! * character data with `&lt; &gt; &amp; &apos; &quot;` and numeric
//!   character references (`&#10;`, `&#x1F600;`)
//! * comments (`<!-- … -->`), processing instructions (`<?xml … ?>`) and
//!   CDATA sections (`<![CDATA[ … ]]>`) — all accepted, PI/comments skipped
//! * qualified names are kept verbatim (`soap:Envelope` is a name with a
//!   colon in it; [`Element::local_name`] strips the prefix)
//!
//! Parsing is a single-pass recursive-descent scanner over the input string
//! with byte-precise error positions. Writing is deterministic and either
//! compact or pretty-printed.
//!
//! ```
//! use wsmed_xml::{Element, parse};
//!
//! let doc = parse("<states><state name='CO'>Colorado</state></states>").unwrap();
//! assert_eq!(doc.name, "states");
//! assert_eq!(doc.children[0].attr("name"), Some("CO"));
//! assert_eq!(doc.children[0].text(), "Colorado");
//! ```

mod error;
mod parser;
mod writer;

pub use error::{XmlError, XmlResult};
pub use parser::parse;
pub use writer::{write_compact, write_pretty};

/// A single XML element: name, attributes, child elements and text content.
///
/// Mixed content is simplified: all character data directly inside an element
/// is concatenated into [`Element::content`] in document order, which is
/// sufficient for SOAP payloads where leaves carry text and interior nodes
/// carry children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name as written, including any namespace prefix.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated character data directly inside this element.
    pub content: String,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Creates a leaf element carrying only text.
    pub fn text_leaf(name: impl Into<String>, text: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            content: text.into(),
            ..Default::default()
        }
    }

    /// Builder-style: adds an attribute.
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Builder-style: adds a child element.
    #[must_use]
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Builder-style: adds several children.
    #[must_use]
    pub fn with_children(mut self, children: impl IntoIterator<Item = Element>) -> Self {
        self.children.extend(children);
        self
    }

    /// Builder-style: sets the text content.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.content = text.into();
        self
    }

    /// The tag name without any namespace prefix (`soap:Body` → `Body`).
    pub fn local_name(&self) -> &str {
        match self.name.rfind(':') {
            Some(i) => &self.name[i + 1..],
            None => &self.name,
        }
    }

    /// Looks up an attribute value by exact name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up an attribute by local name (ignoring any prefix).
    pub fn attr_local(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key || k.rsplit(':').next() == Some(key))
            .map(|(_, v)| v.as_str())
    }

    /// The trimmed text content of this element.
    pub fn text(&self) -> &str {
        self.content.trim()
    }

    /// First child with the given local name.
    pub fn child(&self, local: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.local_name() == local)
    }

    /// All children with the given local name, in document order.
    pub fn children_named<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children
            .iter()
            .filter(move |c| c.local_name() == local)
    }

    /// Descends through a path of local names, returning the first match at
    /// each step. `el.descend(&["Body", "GetAllStatesResponse"])`.
    pub fn descend(&self, path: &[&str]) -> Option<&Element> {
        let mut cur = self;
        for step in path {
            cur = cur.child(step)?;
        }
        Some(cur)
    }

    /// Total number of elements in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Serializes compactly (no insignificant whitespace).
    pub fn to_xml(&self) -> String {
        write_compact(self)
    }

    /// Serializes with two-space indentation, for humans and docs.
    pub fn to_pretty_xml(&self) -> String {
        write_pretty(self)
    }
}

impl std::fmt::Display for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Escapes character data for use inside element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a string for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let el = Element::new("GetAllStatesResponse")
            .with_child(Element::text_leaf("State", "Colorado").with_attr("abbr", "CO"))
            .with_child(Element::text_leaf("State", "Georgia").with_attr("abbr", "GA"));
        let xml = el.to_xml();
        let back = parse(&xml).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn local_name_strips_prefix() {
        assert_eq!(Element::new("soap:Envelope").local_name(), "Envelope");
        assert_eq!(Element::new("Envelope").local_name(), "Envelope");
        assert_eq!(Element::new("a:b:c").local_name(), "c");
    }

    #[test]
    fn attr_lookup() {
        let el = Element::new("x")
            .with_attr("xmlns:s", "urn:x")
            .with_attr("name", "v");
        assert_eq!(el.attr("name"), Some("v"));
        assert_eq!(el.attr("missing"), None);
        assert_eq!(el.attr_local("s"), Some("urn:x"));
    }

    #[test]
    fn descend_path() {
        let doc =
            parse("<Envelope><Body><Resp><Result>ok</Result></Resp></Body></Envelope>").unwrap();
        assert_eq!(
            doc.descend(&["Body", "Resp", "Result"]).unwrap().text(),
            "ok"
        );
        assert!(doc.descend(&["Body", "Nope"]).is_none());
    }

    #[test]
    fn subtree_size_counts_all() {
        let doc = parse("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(doc.subtree_size(), 4);
    }

    #[test]
    fn escape_functions() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_attr("\"x'\""), "&quot;x&apos;&quot;");
    }
}
