//! Recursive-descent parser for the XML subset.

use crate::{Element, XmlError, XmlResult};

/// Parses a complete XML document and returns its root element.
///
/// Leading processing instructions (`<?xml …?>`) and comments are skipped.
/// Trailing content after the root element must be whitespace, comments or
/// processing instructions.
pub fn parse(input: &str) -> XmlResult<Element> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos != p.input.len() {
        return Err(p.err("unexpected content after document root"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::new(self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments and processing instructions.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if let Some(end) = find(self.input, self.pos + 4, b"-->") {
                    self.pos = end + 3;
                    continue;
                }
                // Unterminated comment: consume to end; the element parser
                // will report a clean error at EOF.
                self.pos = self.input.len();
                return;
            }
            if self.starts_with("<?") {
                if let Some(end) = find(self.input, self.pos + 2, b"?>") {
                    self.pos = end + 2;
                    continue;
                }
                self.pos = self.input.len();
                return;
            }
            if self.starts_with("<!DOCTYPE") {
                // Consume to the matching '>' (no internal-subset support).
                if let Some(end) = find(self.input, self.pos, b">") {
                    self.pos = end + 1;
                    continue;
                }
                self.pos = self.input.len();
                return;
            }
            return;
        }
    }

    fn parse_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric()
                || c == b'_'
                || c == b'-'
                || c == b'.'
                || c == b':'
                || c >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("name is not valid UTF-8"))?;
        if name.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '.') {
            return Err(XmlError::new(
                start,
                format!("invalid name start in {name:?}"),
            ));
        }
        Ok(name.to_owned())
    }

    fn parse_element(&mut self) -> XmlResult<Element> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.bump(1);
        let name = self.parse_name()?;
        let mut el = Element::new(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump(1);
                    self.parse_children(&mut el)?;
                    return Ok(el);
                }
                Some(b'/') => {
                    self.bump(1);
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.bump(1);
                    return Ok(el);
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute {key:?}")));
                    }
                    self.bump(1);
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.bump(1);
                    let vstart = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.input[vstart..self.pos])
                        .map_err(|_| self.err("attribute value is not valid UTF-8"))?;
                    let value = unescape(raw, vstart)?;
                    self.bump(1);
                    el.attributes.push((key, value));
                }
                None => return Err(self.err("unexpected end of input inside start tag")),
            }
        }
    }

    fn parse_children(&mut self, el: &mut Element) -> XmlResult<()> {
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unclosed element <{}>", el.name))),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.bump(2);
                        let name = self.parse_name()?;
                        if name != el.name {
                            return Err(self.err(format!(
                                "mismatched end tag: expected </{}>, found </{}>",
                                el.name, name
                            )));
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.err("expected '>' in end tag"));
                        }
                        self.bump(1);
                        return Ok(());
                    }
                    if self.starts_with("<!--") {
                        match find(self.input, self.pos + 4, b"-->") {
                            Some(end) => self.pos = end + 3,
                            None => return Err(self.err("unterminated comment")),
                        }
                        continue;
                    }
                    if self.starts_with("<![CDATA[") {
                        let start = self.pos + 9;
                        match find(self.input, start, b"]]>") {
                            Some(end) => {
                                let text = std::str::from_utf8(&self.input[start..end])
                                    .map_err(|_| self.err("CDATA is not valid UTF-8"))?;
                                el.content.push_str(text);
                                self.pos = end + 3;
                            }
                            None => return Err(self.err("unterminated CDATA section")),
                        }
                        continue;
                    }
                    if self.starts_with("<?") {
                        match find(self.input, self.pos + 2, b"?>") {
                            Some(end) => self.pos = end + 2,
                            None => return Err(self.err("unterminated processing instruction")),
                        }
                        continue;
                    }
                    let child = self.parse_element()?;
                    el.children.push(child);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err("text is not valid UTF-8"))?;
                    let text = unescape(raw, start)?;
                    // Keep interior whitespace but drop pure-formatting runs
                    // between child elements.
                    if !text.trim().is_empty() {
                        el.content.push_str(text.trim());
                    }
                }
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

/// Expands the five predefined entities plus numeric character references.
fn unescape(s: &str, base: usize) -> XmlResult<String> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    let mut offset = 0usize;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        let after = &rest[i..];
        let semi = after
            .find(';')
            .ok_or_else(|| XmlError::new(base + offset + i, "unterminated entity reference"))?;
        let entity = &after[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| {
                    XmlError::new(base + offset + i, format!("bad hex char ref &{entity};"))
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlError::new(base + offset + i, format!("invalid code point &{entity};"))
                })?);
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..].parse::<u32>().map_err(|_| {
                    XmlError::new(
                        base + offset + i,
                        format!("bad decimal char ref &{entity};"),
                    )
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlError::new(base + offset + i, format!("invalid code point &{entity};"))
                })?);
            }
            _ => {
                return Err(XmlError::new(
                    base + offset + i,
                    format!("unknown entity &{entity};"),
                ))
            }
        }
        offset += i + semi + 1;
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_self_closing() {
        let el = parse("<empty/>").unwrap();
        assert_eq!(el.name, "empty");
        assert!(el.children.is_empty());
        assert!(el.content.is_empty());
    }

    #[test]
    fn parses_attributes_both_quotes() {
        let el = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(el.attr("x"), Some("1"));
        assert_eq!(el.attr("y"), Some("two"));
    }

    #[test]
    fn parses_nested_and_text() {
        let el = parse("<a><b>hello</b><b>world</b></a>").unwrap();
        assert_eq!(el.children.len(), 2);
        assert_eq!(el.children[0].text(), "hello");
        assert_eq!(el.children[1].text(), "world");
    }

    #[test]
    fn skips_prolog_doctype_comments() {
        let el = parse(
            "<?xml version=\"1.0\"?><!DOCTYPE a><!-- hi -->\n<a><!-- inner -->x</a><!-- post -->",
        )
        .unwrap();
        assert_eq!(el.name, "a");
        assert_eq!(el.text(), "x");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let el = parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>").unwrap();
        assert_eq!(el.text(), "1 < 2 && 3 > 2");
    }

    #[test]
    fn entities_expand() {
        let el = parse("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(el.text(), "<tag> & \"q\" 's' AB");
    }

    #[test]
    fn mismatched_tag_is_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched end tag"), "{err}");
    }

    #[test]
    fn unclosed_element_is_error() {
        let err = parse("<a><b>").unwrap_err();
        assert!(err.message.contains("unclosed"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_error() {
        let err = parse("<a/>junk").unwrap_err();
        assert!(err.message.contains("after document root"), "{err}");
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"), "{err}");
    }

    #[test]
    fn attr_value_entities() {
        let el = parse(r#"<a v="&lt;&amp;&gt;"/>"#).unwrap();
        assert_eq!(el.attr("v"), Some("<&>"));
    }

    #[test]
    fn whitespace_between_children_is_dropped() {
        let el = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(el.children.len(), 2);
        assert!(el.content.is_empty());
    }

    #[test]
    fn prefixed_names_parse() {
        let el = parse("<soap:Envelope xmlns:soap=\"urn:x\"><soap:Body/></soap:Envelope>").unwrap();
        assert_eq!(el.local_name(), "Envelope");
        assert_eq!(el.children[0].local_name(), "Body");
    }

    #[test]
    fn name_cannot_start_with_digit() {
        assert!(parse("<1a/>").is_err());
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse("").is_err());
        assert!(parse("   \n  ").is_err());
    }

    #[test]
    fn numeric_char_ref_out_of_range_is_error() {
        assert!(parse("<a>&#x110000;</a>").is_err());
        assert!(parse("<a>&#xD800;</a>").is_err()); // lone surrogate
    }

    // ---- property tests -------------------------------------------------

    /// Strategy for element/attribute names.
    fn name_strategy() -> impl Strategy<Value = String> {
        "[A-Za-z_][A-Za-z0-9_.-]{0,12}"
    }

    /// Strategy for arbitrary text content (no control chars XML forbids).
    fn text_strategy() -> impl Strategy<Value = String> {
        "[ -~]{0,40}".prop_map(|s| s.trim().to_owned())
    }

    fn element_strategy() -> impl Strategy<Value = crate::Element> {
        let leaf = (
            name_strategy(),
            text_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
        )
            .prop_map(|(name, text, attrs)| {
                let mut el = crate::Element::text_leaf(name, text);
                // Attribute names must be unique within an element.
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        el.attributes.push((k, v));
                    }
                }
                el
            });
        leaf.prop_recursive(3, 24, 4, |inner| {
            (name_strategy(), proptest::collection::vec(inner, 0..4))
                .prop_map(|(name, children)| crate::Element::new(name).with_children(children))
        })
    }

    proptest! {
        #[test]
        fn prop_compact_roundtrip(el in element_strategy()) {
            let xml = el.to_xml();
            let back = parse(&xml).unwrap();
            prop_assert_eq!(back, el);
        }

        #[test]
        fn prop_pretty_roundtrip(el in element_strategy()) {
            let xml = el.to_pretty_xml();
            let back = parse(&xml).unwrap();
            prop_assert_eq!(back, el);
        }

        #[test]
        fn prop_escape_unescape_text(s in "[ -~]{0,64}") {
            let escaped = crate::escape_text(&s);
            let back = unescape(&escaped, 0).unwrap();
            prop_assert_eq!(back, s);
        }

        #[test]
        fn prop_escape_unescape_attr(s in "[ -~]{0,64}") {
            let escaped = crate::escape_attr(&s);
            let back = unescape(&escaped, 0).unwrap();
            prop_assert_eq!(back, s);
        }

        #[test]
        fn prop_parser_never_panics(s in "[ -~<>&\"']{0,128}") {
            let _ = parse(&s); // must return Ok or Err, never panic
        }
    }
}
