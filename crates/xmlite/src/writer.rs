//! Deterministic serialization of [`Element`] trees.

use crate::{escape_attr, escape_text, Element};

/// Serializes an element compactly, with no insignificant whitespace.
pub fn write_compact(el: &Element) -> String {
    let mut out = String::with_capacity(el.subtree_size() * 16);
    write_el(el, &mut out);
    out
}

fn write_el(el: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attributes {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if el.children.is_empty() && el.content.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    out.push_str(&escape_text(&el.content));
    for child in &el.children {
        write_el(child, out);
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push('>');
}

/// Serializes an element with two-space indentation.
pub fn write_pretty(el: &Element) -> String {
    let mut out = String::with_capacity(el.subtree_size() * 24);
    write_el_pretty(el, 0, &mut out);
    out
}

fn write_el_pretty(el: &Element, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attributes {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if el.children.is_empty() && el.content.is_empty() {
        out.push_str("/>\n");
        return;
    }
    if el.children.is_empty() {
        // Text-only leaf stays on one line so trimming on re-parse is exact.
        out.push('>');
        out.push_str(&escape_text(&el.content));
        out.push_str("</");
        out.push_str(&el.name);
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    if !el.content.is_empty() {
        for _ in 0..=depth {
            out.push_str("  ");
        }
        out.push_str(&escape_text(&el.content));
        out.push('\n');
    }
    for child in &el.children {
        write_el_pretty(child, depth + 1, out);
    }
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push_str(">\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_empty_element() {
        assert_eq!(write_compact(&Element::new("a")), "<a/>");
    }

    #[test]
    fn compact_with_attrs_and_text() {
        let el = Element::text_leaf("a", "x<y").with_attr("k", "v\"w");
        assert_eq!(write_compact(&el), "<a k=\"v&quot;w\">x&lt;y</a>");
    }

    #[test]
    fn pretty_indents_children() {
        let el = Element::new("a").with_child(Element::new("b").with_child(Element::new("c")));
        let s = write_pretty(&el);
        assert_eq!(s, "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
    }

    #[test]
    fn pretty_text_leaf_single_line() {
        let el = Element::text_leaf("a", "hello");
        assert_eq!(write_pretty(&el), "<a>hello</a>\n");
    }

    #[test]
    fn mixed_content_survives_roundtrip() {
        let el = Element::new("a")
            .with_text("note")
            .with_child(Element::text_leaf("b", "x"));
        let back = parse(&write_compact(&el)).unwrap();
        assert_eq!(back, el);
        let back2 = parse(&write_pretty(&el)).unwrap();
        assert_eq!(back2, el);
    }
}
