//! Error type for XML parsing with byte-precise positions.

use std::fmt;

/// Result alias for XML operations.
pub type XmlResult<T> = Result<T, XmlError>;

/// A parse error with the byte offset where it occurred and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset into the input where the problem was detected.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl XmlError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        XmlError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::new(42, "unexpected end of input");
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("unexpected end of input"));
    }
}
