//! The webservicex **USZip** service: `GetInfoByState`.

use std::sync::Arc;

use wsmed_store::SqlType;
use wsmed_wsdl::WsdlDocument;
use wsmed_xml::Element;

use crate::dataset::Dataset;
use crate::soap::{scalar_arg, scalar_result_operation, SoapService};

/// Simulated `http://www.webservicex.net/uszip.asmx` — returns all zip
/// codes of a state as one comma-separated string (§II.B).
#[derive(Debug, Clone)]
pub struct UsZipService {
    dataset: Arc<Dataset>,
}

impl UsZipService {
    /// WSDL URI under which the mediator imports USZip.
    pub const WSDL_URI: &'static str = "http://www.webservicex.net/uszip.wsdl";
    /// The netsim provider hosting this service.
    pub const PROVIDER: &'static str = "webservicex.net";

    /// Creates the service over a dataset.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        UsZipService { dataset }
    }
}

impl SoapService for UsZipService {
    fn service_name(&self) -> &str {
        "USZip"
    }

    fn wsdl_uri(&self) -> &str {
        Self::WSDL_URI
    }

    fn provider_name(&self) -> &str {
        Self::PROVIDER
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument {
            service_name: "USZip".to_owned(),
            target_namespace: "http://www.webserviceX.NET".to_owned(),
            operations: vec![scalar_result_operation(
                "GetInfoByState",
                &[("USState", SqlType::Charstring)],
                "All zip codes of a state as a comma separated string",
            )],
        }
    }

    fn invoke(&self, operation: &str, request: &Element) -> Result<Element, String> {
        if operation != "GetInfoByState" {
            return Err(format!("unknown operation {operation:?}"));
        }
        let state = scalar_arg(request, "USState")?;
        let zipstr = self.dataset.zips_for_state(state).unwrap_or_default();
        Ok(Element::new("GetInfoByStateResponse")
            .with_child(Element::text_leaf("GetInfoByStateResult", zipstr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use wsmed_store::xml_to_value;
    use wsmed_wsdl::OwfDef;

    fn service() -> UsZipService {
        UsZipService::new(Arc::new(Dataset::generate(DatasetConfig::tiny())))
    }

    fn request(state: &str) -> Element {
        Element::new("GetInfoByState").with_child(Element::text_leaf("USState", state))
    }

    #[test]
    fn returns_comma_separated_zips() {
        let svc = service();
        let resp = svc.invoke("GetInfoByState", &request("CO")).unwrap();
        let zipstr = resp.child("GetInfoByStateResult").unwrap().text();
        let zips: Vec<&str> = zipstr.split(',').collect();
        assert_eq!(zips.len(), 3); // tiny config: 3 zips per state
        assert!(zips.contains(&"80840"));
    }

    #[test]
    fn unknown_state_yields_empty_string() {
        let svc = service();
        let resp = svc.invoke("GetInfoByState", &request("ZZ")).unwrap();
        assert_eq!(resp.child("GetInfoByStateResult").unwrap().text(), "");
    }

    #[test]
    fn owf_flattens_to_single_string_row() {
        let svc = service();
        let owf = OwfDef::derive(
            svc.wsdl().operation("GetInfoByState").unwrap(),
            "USZip",
            svc.wsdl_uri(),
        )
        .unwrap();
        let resp = svc.invoke("GetInfoByState", &request("GA")).unwrap();
        let rows = owf.flatten(&xml_to_value(&resp)).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get(0).as_str().unwrap().contains(','));
    }

    #[test]
    fn missing_argument_is_error() {
        let svc = service();
        assert!(svc
            .invoke("GetInfoByState", &Element::new("GetInfoByState"))
            .is_err());
    }

    #[test]
    fn wsdl_round_trips() {
        let svc = service();
        let parsed = wsmed_wsdl::parse_wsdl(&svc.wsdl().to_xml_string()).unwrap();
        assert_eq!(parsed, svc.wsdl());
    }
}
