//! Latency/capacity calibration and the paper's reported numbers.
//!
//! The latency parameters below are chosen so the *model-time* cost of the
//! paper's workloads lands near the reported wall-clock numbers of §V
//! (which measured real 2008 services from Uppsala):
//!
//! * Query1 central plan: 1 × GetAllStates + 51 × GetPlacesWithin +
//!   ≈ 256 × GetPlaceList ≈ **235–245 model-seconds** (paper: 244.8 s);
//! * Query2 central plan: 1 × GetAllStates + 51 × GetInfoByState +
//!   5100 × GetPlacesInside ≈ **2300–2450 model-seconds** (paper: 2412.95 s).
//!
//! Capacities and congestion exponents are chosen so the parallel speedup
//! saturates at small fan-outs, reproducing the paper's findings that the
//! optimum is a *bushy tree close to balanced* with fanouts around 3–5 and
//! that the best speedups are ≈ 4.3 (Query1) and ≈ 2 (Query2).

use wsmed_netsim::{LatencyModel, ProviderSpec};

use crate::{AviationService, GeoPlacesService, TerraService, UsZipService, ZipCodesService};

/// Paper-reported execution time of Query1's central plan (seconds).
pub const PAPER_Q1_CENTRAL_SECS: f64 = 244.8;
/// Paper-reported best parallel execution time of Query1 (seconds).
pub const PAPER_Q1_BEST_SECS: f64 = 56.4;
/// Paper-reported best fanout vector for Query1.
pub const PAPER_Q1_BEST_FANOUT: (usize, usize) = (5, 4);
/// Paper-reported execution time of Query2's central plan (seconds).
pub const PAPER_Q2_CENTRAL_SECS: f64 = 2412.95;
/// Paper-reported best parallel execution time of Query2 (seconds).
pub const PAPER_Q2_BEST_SECS: f64 = 1243.89;
/// Paper-reported best fanout vector for Query2.
pub const PAPER_Q2_BEST_FANOUT: (usize, usize) = (4, 3);
/// The adaptation threshold AFF_APPLYP used in the paper's experiments.
pub const PAPER_AFF_THRESHOLD: f64 = 0.25;

/// All five calibrated provider specs in one vector — the planner seeds its
/// provider profiles from these before any traces exist.
pub fn paper_specs() -> Vec<ProviderSpec> {
    vec![
        geoplaces_spec(),
        terraservice_spec(),
        uszip_spec(),
        zipcodes_spec(),
        aviation_spec(),
    ]
}

/// Provider spec for codebump GeoPlaces (GetAllStates, GetPlacesWithin).
pub fn geoplaces_spec() -> ProviderSpec {
    ProviderSpec::new(
        GeoPlacesService::PROVIDER,
        5,
        LatencyModel {
            setup: 0.15,
            per_kib: 0.01,
            server_mean: 0.55,
            jitter_frac: 0.15,
        },
    )
    .with_congestion_exponent(1.2)
}

/// Provider spec for TerraService (GetPlaceList).
pub fn terraservice_spec() -> ProviderSpec {
    ProviderSpec::new(
        TerraService::PROVIDER,
        5,
        LatencyModel {
            setup: 0.15,
            per_kib: 0.01,
            server_mean: 0.60,
            jitter_frac: 0.15,
        },
    )
    .with_congestion_exponent(1.15)
}

/// Provider spec for USZip (GetInfoByState).
pub fn uszip_spec() -> ProviderSpec {
    ProviderSpec::new(
        UsZipService::PROVIDER,
        4,
        LatencyModel {
            setup: 0.20,
            per_kib: 0.02,
            server_mean: 0.85,
            jitter_frac: 0.15,
        },
    )
    .with_congestion_exponent(1.2)
}

/// Provider spec for codebump ZipCodes (GetPlacesInside).
pub fn zipcodes_spec() -> ProviderSpec {
    ProviderSpec::new(
        ZipCodesService::PROVIDER,
        3,
        LatencyModel {
            setup: 0.15,
            per_kib: 0.01,
            server_mean: 0.30,
            jitter_frac: 0.15,
        },
    )
    .with_congestion_exponent(1.2)
}

/// Provider spec for the AviationData service (the Query3 chain).
pub fn aviation_spec() -> ProviderSpec {
    ProviderSpec::new(
        AviationService::PROVIDER,
        4,
        LatencyModel {
            setup: 0.12,
            per_kib: 0.01,
            server_mean: 0.40,
            jitter_frac: 0.15,
        },
    )
    .with_congestion_exponent(1.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_q1_model_time_near_paper() {
        // Jitter-free expectation with typical payload sizes.
        let geo = geoplaces_spec();
        let terra = terraservice_spec();
        let states = geo.default_latency.expected_latency(100, 8_000, 1.0);
        let within = geo.default_latency.expected_latency(250, 1_200, 1.0);
        let list = terra.default_latency.expected_latency(250, 900, 1.0);
        let total = states + 51.0 * within + 256.0 * list;
        assert!(
            (200.0..300.0).contains(&total),
            "Query1 central model time {total:.1}s too far from paper's {PAPER_Q1_CENTRAL_SECS}s"
        );
    }

    #[test]
    fn central_q2_model_time_near_paper() {
        let geo = geoplaces_spec();
        let zip = uszip_spec();
        let inside = zipcodes_spec();
        let states = geo.default_latency.expected_latency(100, 8_000, 1.0);
        let info = zip.default_latency.expected_latency(200, 700, 1.0);
        let places = inside.default_latency.expected_latency(150, 350, 1.0);
        let total = states + 51.0 * info + 5_100.0 * places;
        assert!(
            (2_000.0..2_900.0).contains(&total),
            "Query2 central model time {total:.1}s too far from paper's {PAPER_Q2_CENTRAL_SECS}s"
        );
    }

    #[test]
    fn capacities_are_small() {
        // The whole point: providers saturate at single-digit concurrency.
        for spec in [
            geoplaces_spec(),
            terraservice_spec(),
            uszip_spec(),
            zipcodes_spec(),
            aviation_spec(),
        ] {
            assert!(
                spec.capacity <= 8,
                "{} capacity {}",
                spec.name,
                spec.capacity
            );
            assert!(spec.congestion_exponent > 1.0);
        }
    }
}
