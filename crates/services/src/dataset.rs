//! Deterministic synthetic US geography.
//!
//! The operators under study care about *cardinalities* and *latencies*,
//! not about real coordinates, so the data is synthesized from a seed:
//!
//! * 51 states (50 + DC) with fixed names/abbreviations;
//! * a subset of states contain a city named **Atlanta** with a handful of
//!   neighbor places within 15 km (drives Query1: ≈ 40 states × ≈ 6.4
//!   matching neighbors ⇒ > 300 web service calls, ≈ 360 result tuples);
//! * every state has `zips_per_state` zip code areas, each containing one
//!   to three places; Colorado's zip **80840** contains **USAF Academy**
//!   (drives Query2: 51 × 100 ⇒ > 5000 calls, as in §I/§II.B).

use std::collections::HashMap;

use wsmed_netsim::DetRng;

/// One US state.
#[derive(Debug, Clone, PartialEq)]
pub struct StateInfo {
    /// Full name, e.g. `"Colorado"`.
    pub name: String,
    /// Two-letter abbreviation, e.g. `"CO"` — the join key used by all
    /// services (`gs.State = gp.state`, `gs.State = gi.USState`).
    pub abbr: String,
    /// Latitude of the state centroid, degrees.
    pub lat: f64,
    /// Longitude of the state centroid, degrees.
    pub lon: f64,
}

/// A neighbor place returned by `GetPlacesWithin`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Neighbor {
    pub name: String,
    pub state_abbr: String,
    pub distance_km: f64,
    /// `"City"` or `"Town"` — `GetPlacesWithin` filters on this.
    pub kind: &'static str,
}

/// A row of `GetPlaceList` output (TerraService place facts).
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceFact {
    /// Place name.
    pub placename: String,
    /// State abbreviation.
    pub state: String,
    /// Country (always `"United States"` here).
    pub country: String,
    /// Latitude, degrees.
    pub place_lat: f64,
    /// Longitude, degrees.
    pub place_lon: f64,
    /// TerraServer theme bitmask.
    pub available_theme_mask: i64,
    /// TerraServer place-type id.
    pub place_type_id: i64,
    /// Population estimate.
    pub population: i64,
    /// Whether an associated map image exists (`imagePresence` filter).
    pub has_image: bool,
}

/// A zip code area with the places inside it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ZipArea {
    pub zip: String,
    pub state_abbr: String,
    /// `(place name, distance from zip origin)`.
    pub places: Vec<(String, f64)>,
}

/// Tuning knobs for the synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Seed for all generated content.
    pub seed: u64,
    /// How many states get an Atlanta anchor city.
    pub atlanta_state_count: usize,
    /// Minimum neighbors around each Atlanta anchor.
    pub min_neighbors: usize,
    /// Maximum neighbors around each Atlanta anchor.
    pub max_neighbors: usize,
    /// Zip code areas per state.
    pub zips_per_state: usize,
    /// Population multiplier applied to every per-state entity count (zip
    /// areas, airports, Atlanta neighbors). Per-parent fan-outs whose
    /// parent already scales (departures per airport) keep their base
    /// draw, so total flights grow linearly with `scale` through the
    /// airport population rather than quadratically. `1` reproduces the
    /// base dataset byte-for-byte; `100`–`1000` grow the world for
    /// open-loop load experiments while keeping referential integrity.
    pub scale: usize,
    /// Fractional seeded jitter on scaled counts: each entity's count is
    /// multiplied by a deterministic factor in `[1 - j, 1 + j]`, so scaled
    /// worlds are not perfectly uniform. `0.0` (the default) draws nothing
    /// and keeps base datasets byte-identical.
    pub count_jitter: f64,
}

impl DatasetConfig {
    /// The paper-scale configuration: Query1 > 300 calls / ≈ 360 tuples,
    /// Query2 > 5000 calls.
    pub fn paper() -> Self {
        DatasetConfig {
            seed: 0x0A71_A27A,
            atlanta_state_count: 40,
            min_neighbors: 5,
            max_neighbors: 11,
            zips_per_state: 100,
            scale: 1,
            count_jitter: 0.0,
        }
    }

    /// A scaled-down configuration for tests and fast benchmark sweeps
    /// (Query2 shrinks from > 5000 calls to ≈ 600).
    pub fn small() -> Self {
        DatasetConfig {
            zips_per_state: 12,
            ..DatasetConfig::paper()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        DatasetConfig {
            seed: 7,
            atlanta_state_count: 6,
            min_neighbors: 2,
            max_neighbors: 4,
            zips_per_state: 3,
            scale: 1,
            count_jitter: 0.0,
        }
    }

    /// Returns this configuration with the population multiplier set.
    pub fn scaled(self, scale: usize) -> Self {
        DatasetConfig {
            scale: scale.max(1),
            ..self
        }
    }

    /// Returns this configuration with seeded count jitter set
    /// (clamped to `[0, 0.9]` so counts stay positive).
    pub fn with_jitter(self, count_jitter: f64) -> Self {
        DatasetConfig {
            count_jitter: count_jitter.clamp(0.0, 0.9),
            ..self
        }
    }

    /// The deterministic per-entity count for a base count of `base`:
    /// `base × scale`, perturbed by the seeded jitter factor for `key`.
    /// With `scale == 1` and `count_jitter == 0` this is exactly `base`
    /// and draws nothing, keeping base datasets byte-identical.
    fn scaled_count(&self, base: usize, kind: &str, key: &str) -> usize {
        if self.scale <= 1 && self.count_jitter == 0.0 {
            return base;
        }
        let mut n = (base * self.scale.max(1)) as f64;
        if self.count_jitter > 0.0 {
            let mut rng = DetRng::keyed(
                self.seed,
                "count-jitter",
                hash_str(kind) ^ hash_str(key).rotate_left(17),
            );
            n *= 1.0 + rng.uniform(-self.count_jitter, self.count_jitter);
        }
        (n.round() as usize).max(1)
    }

    /// The deterministic jitter-only count for `base`: perturbed by the
    /// seeded jitter factor for `key` but *not* multiplied by `scale`.
    /// Used for per-parent fan-outs (departures per airport) whose parent
    /// population already scales — scaling both would grow totals
    /// quadratically in `scale`.
    fn jittered_count(&self, base: usize, kind: &str, key: &str) -> usize {
        if self.count_jitter == 0.0 {
            return base;
        }
        let mut rng = DetRng::keyed(
            self.seed,
            "count-jitter",
            hash_str(kind) ^ hash_str(key).rotate_left(17),
        );
        let n = base as f64 * (1.0 + rng.uniform(-self.count_jitter, self.count_jitter));
        (n.round() as usize).max(1)
    }

    /// An upper bound on any per-state zip-area count under this config
    /// (used to size the zip numbering span so zips stay globally unique).
    fn max_zip_count_bound(&self) -> usize {
        let n = (self.zips_per_state * self.scale.max(1)) as f64 * (1.0 + self.count_jitter);
        n.ceil() as usize + 1
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig::paper()
    }
}

const STATE_TABLE: &[(&str, &str, f64, f64)] = &[
    ("Alabama", "AL", 32.8, -86.8),
    ("Alaska", "AK", 64.0, -152.0),
    ("Arizona", "AZ", 34.2, -111.6),
    ("Arkansas", "AR", 34.9, -92.4),
    ("California", "CA", 37.2, -119.3),
    ("Colorado", "CO", 39.0, -105.5),
    ("Connecticut", "CT", 41.6, -72.7),
    ("Delaware", "DE", 38.9, -75.5),
    ("District of Columbia", "DC", 38.9, -77.0),
    ("Florida", "FL", 28.6, -82.4),
    ("Georgia", "GA", 32.6, -83.4),
    ("Hawaii", "HI", 20.3, -156.4),
    ("Idaho", "ID", 44.4, -114.6),
    ("Illinois", "IL", 40.0, -89.2),
    ("Indiana", "IN", 39.9, -86.3),
    ("Iowa", "IA", 42.1, -93.5),
    ("Kansas", "KS", 38.5, -98.4),
    ("Kentucky", "KY", 37.5, -85.3),
    ("Louisiana", "LA", 31.0, -92.0),
    ("Maine", "ME", 45.4, -69.2),
    ("Maryland", "MD", 39.0, -76.8),
    ("Massachusetts", "MA", 42.3, -71.8),
    ("Michigan", "MI", 44.3, -85.4),
    ("Minnesota", "MN", 46.3, -94.3),
    ("Mississippi", "MS", 32.7, -89.7),
    ("Missouri", "MO", 38.4, -92.5),
    ("Montana", "MT", 47.1, -109.6),
    ("Nebraska", "NE", 41.5, -99.8),
    ("Nevada", "NV", 39.3, -116.6),
    ("New Hampshire", "NH", 43.7, -71.6),
    ("New Jersey", "NJ", 40.2, -74.7),
    ("New Mexico", "NM", 34.4, -106.1),
    ("New York", "NY", 42.9, -75.5),
    ("North Carolina", "NC", 35.5, -79.4),
    ("North Dakota", "ND", 47.4, -100.5),
    ("Ohio", "OH", 40.3, -82.8),
    ("Oklahoma", "OK", 35.6, -97.5),
    ("Oregon", "OR", 43.9, -120.6),
    ("Pennsylvania", "PA", 40.9, -77.8),
    ("Rhode Island", "RI", 41.7, -71.6),
    ("South Carolina", "SC", 33.9, -80.9),
    ("South Dakota", "SD", 44.4, -100.2),
    ("Tennessee", "TN", 35.8, -86.4),
    ("Texas", "TX", 31.5, -99.3),
    ("Utah", "UT", 39.3, -111.7),
    ("Vermont", "VT", 44.1, -72.7),
    ("Virginia", "VA", 37.5, -78.9),
    ("Washington", "WA", 47.4, -120.4),
    ("West Virginia", "WV", 38.6, -80.6),
    ("Wisconsin", "WI", 44.6, -89.7),
    ("Wyoming", "WY", 43.0, -107.6),
];

const NEIGHBOR_PREFIXES: &[&str] = &[
    "North", "South", "East", "West", "New", "Old", "Upper", "Lower", "Fort", "Lake", "Mount",
];
const NEIGHBOR_SUFFIXES: &[&str] = &[
    "Heights", "Springs", "Park", "Grove", "Falls", "Junction", "Ridge", "Valley",
];
const AIRPORT_CITY_STEMS: &[&str] = &[
    "Capital City",
    "Lakeside",
    "Harborview",
    "Summit",
    "Prairie",
    "Canyon",
    "Bayfield",
];
const AIRLINE_CODES: &[&str] = &["WS", "MD", "QV", "AP"];
const ZIP_PLACE_STEMS: &[&str] = &[
    "Fairview",
    "Midway",
    "Oak Grove",
    "Riverside",
    "Centerville",
    "Georgetown",
    "Salem",
    "Greenwood",
    "Franklin",
    "Clinton",
    "Madison",
    "Washington",
];

/// The full synthetic geography, generated once from a [`DatasetConfig`].
#[derive(Debug, Clone)]
pub struct Dataset {
    config: DatasetConfig,
    states: Vec<StateInfo>,
    neighbors: HashMap<String, Vec<Neighbor>>,
    zipareas: HashMap<String, Vec<ZipArea>>,
    zip_index: HashMap<String, (String, usize)>,
    place_facts: HashMap<String, Vec<PlaceFact>>,
    airports: HashMap<String, Vec<(String, String)>>,
    departures: HashMap<String, Vec<(String, String)>>,
    flight_status: HashMap<String, (&'static str, i64)>,
}

impl Dataset {
    /// Generates the dataset for a configuration.
    pub fn generate(config: DatasetConfig) -> Self {
        let states: Vec<StateInfo> = STATE_TABLE
            .iter()
            .map(|&(name, abbr, lat, lon)| StateInfo {
                name: name.to_owned(),
                abbr: abbr.to_owned(),
                lat,
                lon,
            })
            .collect();

        // --- Atlanta anchors and their neighbors (Query1) -----------------
        // Pick `atlanta_state_count` states deterministically, spread across
        // the alphabet, but always including Georgia (the real Atlanta).
        let mut has_atlanta: Vec<&StateInfo> = Vec::new();
        let mut pick_rng = DetRng::keyed(config.seed, "atlanta-states", 0);
        let mut candidates: Vec<usize> = (0..states.len()).collect();
        // Fisher–Yates shuffle.
        for i in (1..candidates.len()).rev() {
            let j = pick_rng.below(i as u64 + 1) as usize;
            candidates.swap(i, j);
        }
        let ga = states
            .iter()
            .position(|s| s.abbr == "GA")
            .expect("GA exists");
        let mut chosen: Vec<usize> = vec![ga];
        for idx in candidates {
            if chosen.len() >= config.atlanta_state_count.min(states.len()) {
                break;
            }
            if idx != ga {
                chosen.push(idx);
            }
        }
        for &idx in &chosen {
            has_atlanta.push(&states[idx]);
        }

        let mut neighbors: HashMap<String, Vec<Neighbor>> = HashMap::new();
        for state in &has_atlanta {
            let mut rng = DetRng::keyed(config.seed, "neighbors", hash_str(&state.abbr));
            let span = (config.max_neighbors - config.min_neighbors) as u64 + 1;
            let count = config.scaled_count(
                config.min_neighbors + rng.below(span) as usize,
                "neighbors",
                &state.abbr,
            );
            let mut list = Vec::with_capacity(count);
            for n in 0..count {
                let prefix = NEIGHBOR_PREFIXES[rng.below(NEIGHBOR_PREFIXES.len() as u64) as usize];
                let suffix = NEIGHBOR_SUFFIXES[rng.below(NEIGHBOR_SUFFIXES.len() as u64) as usize];
                let name = if n == 0 {
                    // Each anchor state keeps one canonical "Atlanta <suffix>".
                    format!("Atlanta {suffix}")
                } else {
                    format!("{prefix} Atlanta {suffix}")
                };
                let distance_km = rng.uniform(0.5, 14.9);
                let kind = if rng.next_f64() < 0.8 { "City" } else { "Town" };
                list.push(Neighbor {
                    name,
                    state_abbr: state.abbr.clone(),
                    distance_km,
                    kind,
                });
            }
            neighbors.insert(state.abbr.clone(), list);
        }

        // --- Place facts for TerraService's GetPlaceList ------------------
        let mut place_facts: HashMap<String, Vec<PlaceFact>> = HashMap::new();
        for state in &states {
            if let Some(list) = neighbors.get(&state.abbr) {
                for neighbor in list {
                    let key = format!("{}, {}", neighbor.name, neighbor.state_abbr);
                    let mut rng = DetRng::keyed(config.seed, "facts", hash_str(&key));
                    let rows = if rng.next_f64() < 0.38 { 2 } else { 1 };
                    let mut facts = Vec::with_capacity(rows);
                    for row in 0..rows {
                        facts.push(PlaceFact {
                            placename: neighbor.name.clone(),
                            state: neighbor.state_abbr.clone(),
                            country: "United States".to_owned(),
                            place_lat: state.lat + rng.uniform(-0.5, 0.5),
                            place_lon: state.lon + rng.uniform(-0.5, 0.5),
                            available_theme_mask: rng.below(32) as i64,
                            place_type_id: if row == 0 { 2 } else { 32 },
                            population: rng.below(95_000) as i64 + 5_000,
                            has_image: rng.next_f64() < 0.92,
                        });
                    }
                    place_facts.insert(key, facts);
                }
            }
        }

        // --- Zip areas (Query2) -------------------------------------------
        let mut zipareas: HashMap<String, Vec<ZipArea>> = HashMap::new();
        let mut zip_index: HashMap<String, (String, usize)> = HashMap::new();
        // The base numbering packs 200 zips per state into five digits;
        // scaled worlds overflow that, so they switch to a nine-digit
        // scheme with a span wide enough for any jittered per-state count.
        let wide_zips = config.max_zip_count_bound() > 200;
        let zip_span = config.max_zip_count_bound().next_multiple_of(1000);
        for (state_idx, state) in states.iter().enumerate() {
            let mut rng = DetRng::keyed(config.seed, "zips", hash_str(&state.abbr));
            let zip_count = config.scaled_count(config.zips_per_state, "zips", &state.abbr);
            let mut areas = Vec::with_capacity(zip_count);
            for z in 0..zip_count {
                let zip = if wide_zips {
                    format!("{:09}", 100_000_000 + state_idx * zip_span + z)
                } else {
                    format!("{:05}", 10_000 + state_idx * 200 + z)
                };
                let count = 1 + rng.below(3) as usize;
                let mut places = Vec::with_capacity(count);
                for _ in 0..count {
                    let stem = ZIP_PLACE_STEMS[rng.below(ZIP_PLACE_STEMS.len() as u64) as usize];
                    places.push((stem.to_owned(), rng.uniform(0.0, 8.0)));
                }
                areas.push(ZipArea {
                    zip,
                    state_abbr: state.abbr.clone(),
                    places,
                });
            }
            // Colorado's USAF Academy zip, as in the paper's Query2.
            if state.abbr == "CO" {
                let slot = areas.len() / 2;
                let area = &mut areas[slot];
                area.zip = "80840".to_owned();
                area.places.insert(0, ("USAF Academy".to_owned(), 0.0));
            }
            for (i, area) in areas.iter().enumerate() {
                zip_index.insert(area.zip.clone(), (state.abbr.clone(), i));
            }
            zipareas.insert(state.abbr.clone(), areas);
        }

        // --- Aviation chain (Query3): airports → departures → status ------
        let mut airports: HashMap<String, Vec<(String, String)>> = HashMap::new();
        for state in &states {
            let mut rng = DetRng::keyed(config.seed, "airports", hash_str(&state.abbr));
            // 2..=3 airports per state at base scale.
            let count = config.scaled_count(2 + rng.below(2) as usize, "airports", &state.abbr);
            let mut list = Vec::with_capacity(count);
            for a in 0..count {
                let stem = AIRPORT_CITY_STEMS[rng.below(AIRPORT_CITY_STEMS.len() as u64) as usize];
                list.push((
                    format!("{}{a}", state.abbr),
                    format!("{stem}, {}", state.abbr),
                ));
            }
            airports.insert(state.abbr.clone(), list);
        }
        // Sorted so generation is deterministic across `Dataset` instances:
        // HashMap iteration order varies per instance, and when two airports
        // mint the same flight number the *last* insert below decides its
        // status.
        let mut all_codes: Vec<String> = airports
            .values()
            .flat_map(|list| list.iter().map(|(code, _)| code.clone()))
            .collect();
        all_codes.sort();
        let mut departures: HashMap<String, Vec<(String, String)>> = HashMap::new();
        let mut flight_status: HashMap<String, (&'static str, i64)> = HashMap::new();
        for code in &all_codes {
            let mut rng = DetRng::keyed(config.seed, "departures", hash_str(code));
            // 3..=5 departures per airport at base scale.
            let count = config.jittered_count(3 + rng.below(3) as usize, "departures", code);
            let mut list = Vec::with_capacity(count);
            for f in 0..count {
                let airline = AIRLINE_CODES[rng.below(AIRLINE_CODES.len() as u64) as usize];
                let flight = format!("{airline}{}{f}", 100 + rng.below(900));
                let dest = all_codes[rng.below(all_codes.len() as u64) as usize].clone();
                let status = match rng.below(100) {
                    0..=59 => ("OnTime", 0),
                    60..=84 => ("Delayed", 10 + rng.below(110) as i64),
                    _ => ("Boarding", 0),
                };
                flight_status.insert(flight.clone(), status);
                list.push((flight, dest));
            }
            departures.insert(code.clone(), list);
        }

        Dataset {
            config,
            states,
            neighbors,
            zipareas,
            zip_index,
            place_facts,
            airports,
            departures,
            flight_status,
        }
    }

    /// The configuration this dataset was generated from.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// All states.
    pub fn states(&self) -> &[StateInfo] {
        &self.states
    }

    /// `GetPlacesWithin` semantics: places of the given kind within
    /// `distance_km` of the anchor `place` in `state_abbr`. Unknown anchors
    /// or states yield an empty result.
    pub fn places_within(
        &self,
        place: &str,
        state_abbr: &str,
        distance_km: f64,
        kind: &str,
    ) -> Vec<(String, String, f64)> {
        if place != "Atlanta" {
            return Vec::new();
        }
        self.neighbors
            .get(state_abbr)
            .map(|list| {
                list.iter()
                    .filter(|n| n.distance_km <= distance_km && n.kind == kind)
                    .map(|n| (n.name.clone(), n.state_abbr.clone(), round2(n.distance_km)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// `GetPlaceList` semantics: facts for a `"Name, ST"` place
    /// specification, truncated to `max_items`, optionally restricted to
    /// places that have map imagery.
    pub fn place_list(&self, place_spec: &str, max_items: i64, image_only: bool) -> Vec<PlaceFact> {
        let normalized = normalize_place_spec(place_spec);
        self.place_facts
            .get(&normalized)
            .map(|facts| {
                facts
                    .iter()
                    .filter(|f| !image_only || f.has_image)
                    .take(max_items.max(0) as usize)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// `GetInfoByState` semantics: every zip code of a state as one
    /// comma-separated string (the USZip service's wire format, §II.B).
    pub fn zips_for_state(&self, state_abbr: &str) -> Option<String> {
        self.zipareas.get(state_abbr).map(|areas| {
            areas
                .iter()
                .map(|a| a.zip.as_str())
                .collect::<Vec<_>>()
                .join(",")
        })
    }

    /// `GetPlacesInside` semantics: the places inside a zip code area as
    /// `(ToPlace, ToState, Distance)` rows.
    pub fn places_inside(&self, zip: &str) -> Vec<(String, String, f64)> {
        let Some((abbr, idx)) = self.zip_index.get(zip) else {
            return Vec::new();
        };
        let area = &self.zipareas[abbr][*idx];
        area.places
            .iter()
            .map(|(name, dist)| (name.clone(), abbr.clone(), round2(*dist)))
            .collect()
    }

    /// `GetAirports` semantics: `(code, city)` rows for a state.
    pub fn airports(&self, state_abbr: &str) -> Vec<(String, String)> {
        self.airports.get(state_abbr).cloned().unwrap_or_default()
    }

    /// `GetDepartures` semantics: `(flight number, destination airport)`
    /// rows for an airport code.
    pub fn departures(&self, airport_code: &str) -> Vec<(String, String)> {
        self.departures
            .get(airport_code)
            .cloned()
            .unwrap_or_default()
    }

    /// `GetFlightStatus` semantics: a single `(status, delay minutes)` row
    /// for a known flight, empty otherwise.
    pub fn flight_status(&self, flight_no: &str) -> Vec<(&'static str, i64)> {
        self.flight_status
            .get(flight_no)
            .map(|&s| vec![s])
            .unwrap_or_default()
    }

    /// Total airports (= `GetAirports` result rows across all states).
    pub fn total_airport_count(&self) -> usize {
        self.airports.values().map(Vec::len).sum()
    }

    /// Total flights (= `GetDepartures` rows ⇒ `GetFlightStatus` calls).
    pub fn total_flight_count(&self) -> usize {
        self.departures.values().map(Vec::len).sum()
    }

    /// Total number of zip areas (= `GetPlacesInside` calls Query2 makes).
    pub fn total_zip_count(&self) -> usize {
        self.zipareas.values().map(Vec::len).sum()
    }

    /// Number of `"Atlanta"`-anchored states (= non-empty `GetPlacesWithin`
    /// results in Query1).
    pub fn atlanta_state_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Expected `GetPlaceList` call count for Query1 (matching neighbors
    /// across all states).
    pub fn query1_place_list_calls(&self) -> usize {
        self.states
            .iter()
            .map(|s| self.places_within("Atlanta", &s.abbr, 15.0, "City").len())
            .sum()
    }

    /// Expected Query1 result-tuple count.
    pub fn query1_result_count(&self) -> usize {
        self.states
            .iter()
            .flat_map(|s| self.places_within("Atlanta", &s.abbr, 15.0, "City"))
            .map(|(name, st, _)| self.place_list(&format!("{name}, {st}"), 100, true).len())
            .sum()
    }
}

fn normalize_place_spec(spec: &str) -> String {
    match spec.rsplit_once(',') {
        Some((name, state)) => format!("{}, {}", name.trim(), state.trim()),
        None => spec.trim().to_owned(),
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_one_states() {
        let ds = Dataset::generate(DatasetConfig::tiny());
        assert_eq!(ds.states().len(), 51);
        assert!(ds.states().iter().any(|s| s.abbr == "CO"));
        assert!(ds.states().iter().any(|s| s.abbr == "DC"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetConfig::paper());
        let b = Dataset::generate(DatasetConfig::paper());
        assert_eq!(a.states(), b.states());
        assert_eq!(a.query1_place_list_calls(), b.query1_place_list_calls());
        assert_eq!(a.zips_for_state("CO"), b.zips_for_state("CO"));
    }

    #[test]
    fn paper_scale_counts_match_paper_claims() {
        let ds = Dataset::generate(DatasetConfig::paper());
        // §II.A: Query1's naive plan makes > 300 calls and returns ~360 rows.
        let calls = 1 + 51 + ds.query1_place_list_calls();
        assert!(calls > 300, "Query1 would make only {calls} calls");
        assert!(calls < 450, "Query1 would make {calls} calls — too many");
        let results = ds.query1_result_count();
        assert!(
            (280..=440).contains(&results),
            "Query1 would return {results} tuples; paper reports 360"
        );
        // §I/§II.B: Query2's naive plan makes > 5000 calls.
        let q2_calls = 1 + 51 + ds.total_zip_count();
        assert!(q2_calls > 5000, "Query2 would make only {q2_calls} calls");
    }

    #[test]
    fn georgia_always_has_atlanta() {
        for seed in [1, 2, 3] {
            let ds = Dataset::generate(DatasetConfig {
                seed,
                ..DatasetConfig::tiny()
            });
            assert!(
                !ds.places_within("Atlanta", "GA", 15.0, "City").is_empty()
                    || !ds.places_within("Atlanta", "GA", 15.0, "Town").is_empty(),
                "GA lost its Atlanta for seed {seed}"
            );
        }
    }

    #[test]
    fn places_within_filters_by_distance_and_kind() {
        let ds = Dataset::generate(DatasetConfig::paper());
        let all_city = ds.places_within("Atlanta", "GA", 15.0, "City");
        let near_city = ds.places_within("Atlanta", "GA", 3.0, "City");
        assert!(near_city.len() <= all_city.len());
        for (_, _, d) in &near_city {
            assert!(*d <= 3.0);
        }
        let towns = ds.places_within("Atlanta", "GA", 15.0, "Town");
        for t in &towns {
            assert!(!all_city.contains(t));
        }
    }

    #[test]
    fn places_within_unknown_anchor_is_empty() {
        let ds = Dataset::generate(DatasetConfig::tiny());
        assert!(ds
            .places_within("Springfield", "GA", 15.0, "City")
            .is_empty());
        assert!(ds.places_within("Atlanta", "??", 15.0, "City").is_empty());
    }

    #[test]
    fn place_list_respects_max_items_and_image_filter() {
        let ds = Dataset::generate(DatasetConfig::paper());
        let (name, st, _) = ds.places_within("Atlanta", "GA", 15.0, "City")[0].clone();
        let spec = format!("{name}, {st}");
        let all = ds.place_list(&spec, 100, false);
        assert!(!all.is_empty());
        assert!(ds.place_list(&spec, 0, false).is_empty());
        let with_images = ds.place_list(&spec, 100, true);
        assert!(with_images.len() <= all.len());
        assert!(with_images.iter().all(|f| f.has_image));
        // Spec parsing tolerates the paper's odd spacing ("Atlanta ,GA").
        let odd = format!("{name} ,{st}");
        assert_eq!(ds.place_list(&odd, 100, false), all);
    }

    #[test]
    fn zips_cover_every_state_uniquely() {
        let ds = Dataset::generate(DatasetConfig::tiny());
        let mut seen = std::collections::HashSet::new();
        for state in ds.states() {
            let zipstr = ds.zips_for_state(&state.abbr).unwrap();
            let zips: Vec<&str> = zipstr.split(',').collect();
            assert_eq!(zips.len(), ds.config().zips_per_state);
            for z in zips {
                assert!(seen.insert(z.to_owned()), "duplicate zip {z}");
                assert_eq!(z.len(), 5);
            }
        }
        assert!(ds.zips_for_state("XX").is_none());
    }

    #[test]
    fn usaf_academy_is_in_colorado_80840() {
        let ds = Dataset::generate(DatasetConfig::paper());
        assert!(ds.zips_for_state("CO").unwrap().contains("80840"));
        let inside = ds.places_inside("80840");
        assert!(inside
            .iter()
            .any(|(p, st, _)| p == "USAF Academy" && st == "CO"));
        // And nowhere else.
        let mut hits = 0;
        for state in ds.states() {
            for zip in ds.zips_for_state(&state.abbr).unwrap().split(',') {
                if ds
                    .places_inside(zip)
                    .iter()
                    .any(|(p, _, _)| p == "USAF Academy")
                {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn aviation_chain_counts_and_consistency() {
        let ds = Dataset::generate(DatasetConfig::tiny());
        assert!(ds.total_airport_count() >= 2 * 51);
        assert!(ds.total_flight_count() >= 3 * ds.total_airport_count());
        for state in ds.states() {
            for (code, city) in ds.airports(&state.abbr) {
                assert!(code.starts_with(&state.abbr));
                assert!(city.ends_with(&state.abbr));
                for (flight, dest) in ds.departures(&code) {
                    assert_eq!(ds.flight_status(&flight).len(), 1);
                    assert!(!ds.departures(&dest).is_empty() || !dest.is_empty());
                }
            }
        }
        assert!(ds.airports("??").is_empty());
        assert!(ds.departures("??").is_empty());
        assert!(ds.flight_status("??").is_empty());
    }

    #[test]
    fn generation_is_deterministic_across_instances() {
        // Two datasets from the same config must agree on *everything*,
        // including the status of flight numbers minted by two different
        // airports (insert order used to depend on HashMap iteration).
        let a = Dataset::generate(DatasetConfig::small());
        let b = Dataset::generate(DatasetConfig::small());
        for state in a.states() {
            assert_eq!(a.airports(&state.abbr), b.airports(&state.abbr));
            for (code, _) in a.airports(&state.abbr) {
                assert_eq!(a.departures(&code), b.departures(&code));
                for (flight, _) in a.departures(&code) {
                    assert_eq!(a.flight_status(&flight), b.flight_status(&flight));
                }
            }
        }
    }

    #[test]
    fn places_inside_unknown_zip_is_empty() {
        let ds = Dataset::generate(DatasetConfig::tiny());
        assert!(ds.places_inside("00000").is_empty());
    }

    #[test]
    fn small_config_shrinks_query2_only() {
        let paper = Dataset::generate(DatasetConfig::paper());
        let small = Dataset::generate(DatasetConfig::small());
        assert!(small.total_zip_count() < paper.total_zip_count() / 5);
        assert_eq!(small.atlanta_state_count(), paper.atlanta_state_count());
    }
}
