//! The service registry: WSDL discovery plus the simulated SOAP transport.
//!
//! This is the layer the mediator's `cwo` built-in talks to: given a WSDL
//! URI, a service name, an operation and rendered arguments, it builds the
//! request body, pays the network/provider latency through
//! [`wsmed_netsim`], runs the service implementation, and returns the
//! response body.

use std::collections::HashMap;
use std::sync::Arc;

use wsmed_netsim::{CallOpts, CallStats, NetError, NetResult, Network, Provider, ProviderSpec};
use wsmed_wsdl::WsdlDocument;
use wsmed_xml::Element;

use crate::dataset::Dataset;
use crate::soap::SoapService;
use crate::{
    calibration, AviationService, GeoPlacesService, TerraService, UsZipService, ZipCodesService,
};

/// A service bound to its provider.
#[derive(Clone)]
pub struct ServiceEndpoint {
    /// The service implementation.
    pub service: Arc<dyn SoapService>,
    /// The netsim provider hosting it.
    pub provider: Arc<Provider>,
    /// The service contract (cached from [`SoapService::wsdl`]).
    pub wsdl: WsdlDocument,
}

/// All services reachable on a network, addressed by WSDL URI.
#[derive(Clone)]
pub struct ServiceRegistry {
    network: Arc<Network>,
    endpoints: HashMap<String, ServiceEndpoint>,
}

impl ServiceRegistry {
    /// Creates an empty registry over a network.
    pub fn new(network: Arc<Network>) -> Self {
        ServiceRegistry {
            network,
            endpoints: HashMap::new(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// Installs a service: registers its provider (if new) and indexes it
    /// under its WSDL URI.
    pub fn install(&mut self, service: Arc<dyn SoapService>, provider_spec: ProviderSpec) {
        assert_eq!(
            provider_spec.name,
            service.provider_name(),
            "provider spec does not match the service's provider"
        );
        let provider = match self.network.provider(&provider_spec.name) {
            Ok(existing) => existing,
            Err(_) => self
                .network
                .register(provider_spec)
                .expect("provider checked absent just above"),
        };
        let wsdl = service.wsdl();
        self.endpoints.insert(
            service.wsdl_uri().to_owned(),
            ServiceEndpoint {
                service,
                provider,
                wsdl,
            },
        );
    }

    /// Returns the endpoint registered under a WSDL URI.
    pub fn endpoint(&self, wsdl_uri: &str) -> NetResult<&ServiceEndpoint> {
        self.endpoints
            .get(wsdl_uri)
            .ok_or_else(|| NetError::UnknownProvider(wsdl_uri.to_owned()))
    }

    /// All registered WSDL URIs, sorted.
    pub fn wsdl_uris(&self) -> Vec<&str> {
        let mut uris: Vec<&str> = self.endpoints.keys().map(String::as_str).collect();
        uris.sort();
        uris
    }

    /// Fetches a service's WSDL document text — what the mediator imports.
    /// Metadata import happens once before query execution, so it is not
    /// charged against the latency model.
    pub fn wsdl_xml(&self, wsdl_uri: &str) -> NetResult<String> {
        Ok(self.endpoint(wsdl_uri)?.wsdl.to_xml_string())
    }

    /// The `cwo` transport (paper Fig. 2 line 14): calls `operation` of the
    /// service at `wsdl_uri` with rendered arguments, paying the simulated
    /// latency, and returns the response body element.
    ///
    /// `service_name` is checked against the registered service, mirroring
    /// `cwo`'s signature `cwo(wsdl_uri, service, operation, args)`.
    pub fn call(
        &self,
        wsdl_uri: &str,
        service_name: &str,
        operation: &str,
        args: &[(String, String)],
    ) -> NetResult<Element> {
        self.call_with_deadline(wsdl_uri, service_name, operation, args, None)
    }

    /// [`Self::call`] with an optional per-call model-time deadline: a
    /// call whose model latency (hangs and brownouts included) would
    /// exceed the deadline charges exactly the deadline and returns
    /// [`NetError::Timeout`]. The request's rendered content also keys the
    /// provider's argument-keyed chaos rolls, making the set of failing
    /// argument tuples independent of dispatch interleaving.
    pub fn call_with_deadline(
        &self,
        wsdl_uri: &str,
        service_name: &str,
        operation: &str,
        args: &[(String, String)],
        deadline_model_secs: Option<f64>,
    ) -> NetResult<Element> {
        self.call_with_deadline_stats(wsdl_uri, service_name, operation, args, deadline_model_secs)
            .map(|(response, _stats)| response)
    }

    /// [`Self::call_with_deadline`] that also surfaces the per-call wire
    /// accounting ([`CallStats`]: request/response bytes and model
    /// latency), for callers that meter traffic per execution context.
    pub fn call_with_deadline_stats(
        &self,
        wsdl_uri: &str,
        service_name: &str,
        operation: &str,
        args: &[(String, String)],
        deadline_model_secs: Option<f64>,
    ) -> NetResult<(Element, CallStats)> {
        self.call_on_provider(
            wsdl_uri,
            service_name,
            operation,
            args,
            deadline_model_secs,
            None,
        )
    }

    /// [`Self::call_with_deadline_stats`] with an optional provider
    /// override: the client-side router passes the replica it selected and
    /// the call pays *that* replica's latency/capacity/fault model while
    /// still running the endpoint's service implementation. `None` uses
    /// the endpoint's own provider (replica 0 of a replicated group), the
    /// exact historical path.
    pub fn call_on_provider(
        &self,
        wsdl_uri: &str,
        service_name: &str,
        operation: &str,
        args: &[(String, String)],
        deadline_model_secs: Option<f64>,
        replica: Option<&Arc<Provider>>,
    ) -> NetResult<(Element, CallStats)> {
        let endpoint = self.endpoint(wsdl_uri)?;
        let provider = replica.unwrap_or(&endpoint.provider);
        if endpoint.service.service_name() != service_name {
            return Err(NetError::BadRequest {
                provider: endpoint.service.provider_name().to_owned(),
                message: format!(
                    "service {service_name:?} not found at {wsdl_uri:?} (hosts {:?})",
                    endpoint.service.service_name()
                ),
            });
        }
        if endpoint.wsdl.operation(operation).is_none() {
            return Err(NetError::UnknownOperation {
                provider: endpoint.service.provider_name().to_owned(),
                operation: operation.to_owned(),
            });
        }

        let mut request = Element::new(operation);
        for (name, value) in args {
            request
                .children
                .push(Element::text_leaf(name.clone(), value.clone()));
        }
        let request_xml = request.to_xml();
        let request_bytes = request_xml.len();
        let opts = CallOpts {
            deadline_model_secs,
            args_key: content_key(&request_xml),
        };

        let service = Arc::clone(&endpoint.service);
        let op = operation.to_owned();
        let config = self.network.config().clone();
        let (response, stats) = provider.call_with_opts(
            &config,
            operation,
            request_bytes,
            opts,
            move || match service.invoke(&op, &request) {
                Ok(resp) => {
                    let bytes = resp.to_xml().len();
                    (Ok(resp), bytes)
                }
                Err(msg) => (Err(msg), 128),
            },
        )?;
        let response = response.map_err(|message| NetError::BadRequest {
            provider: endpoint.service.provider_name().to_owned(),
            message,
        })?;
        Ok((response, stats))
    }
}

/// FNV-1a hash of the rendered request — the argument-content key for
/// [`wsmed_netsim::FaultSpec::keyed_by_args`] chaos rolls.
fn content_key(request_xml: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in request_xml.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Installs the paper's four services plus the repository's AviationData
/// service (the three-level Query3 chain) on a network, with calibrated
/// provider specs, over a shared dataset. Returns the registry the
/// mediator uses as its `cwo` transport.
pub fn install_paper_services(network: Arc<Network>, dataset: Arc<Dataset>) -> ServiceRegistry {
    let mut registry = ServiceRegistry::new(network);
    registry.install(
        Arc::new(GeoPlacesService::new(Arc::clone(&dataset))),
        calibration::geoplaces_spec(),
    );
    registry.install(
        Arc::new(TerraService::new(Arc::clone(&dataset))),
        calibration::terraservice_spec(),
    );
    registry.install(
        Arc::new(UsZipService::new(Arc::clone(&dataset))),
        calibration::uszip_spec(),
    );
    registry.install(
        Arc::new(ZipCodesService::new(Arc::clone(&dataset))),
        calibration::zipcodes_spec(),
    );
    registry.install(
        Arc::new(AviationService::new(dataset)),
        calibration::aviation_spec(),
    );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use wsmed_netsim::SimConfig;

    fn setup() -> ServiceRegistry {
        let network = Network::new(SimConfig::default());
        let dataset = Arc::new(Dataset::generate(DatasetConfig::tiny()));
        install_paper_services(network, dataset)
    }

    #[test]
    fn installs_five_endpoints() {
        let reg = setup();
        assert_eq!(reg.wsdl_uris().len(), 5);
        assert!(reg.endpoint(GeoPlacesService::WSDL_URI).is_ok());
        assert!(reg.endpoint("http://nope.example/x.wsdl").is_err());
    }

    #[test]
    fn wsdl_xml_is_importable() {
        let reg = setup();
        for uri in reg.wsdl_uris() {
            let xml = reg.wsdl_xml(uri).unwrap();
            let doc = wsmed_wsdl::parse_wsdl(&xml).unwrap();
            assert!(!doc.operations.is_empty(), "{uri} has no operations");
        }
    }

    #[test]
    fn call_get_all_states() {
        let reg = setup();
        let resp = reg
            .call(GeoPlacesService::WSDL_URI, "GeoPlaces", "GetAllStates", &[])
            .unwrap();
        assert_eq!(resp.local_name(), "GetAllStatesResponse");
        assert_eq!(resp.child("GetAllStatesResult").unwrap().children.len(), 51);
        // Metrics recorded at the provider.
        let m = reg
            .endpoint(GeoPlacesService::WSDL_URI)
            .unwrap()
            .provider
            .metrics();
        assert_eq!(m.calls, 1);
        assert!(m.response_bytes > 1_000);
        assert!(m.total_model_latency > 0.0);
    }

    #[test]
    fn call_with_args() {
        let reg = setup();
        let resp = reg
            .call(
                UsZipService::WSDL_URI,
                "USZip",
                "GetInfoByState",
                &[("USState".to_owned(), "CO".to_owned())],
            )
            .unwrap();
        assert!(resp
            .child("GetInfoByStateResult")
            .unwrap()
            .text()
            .contains("80840"));
    }

    #[test]
    fn wrong_service_name_is_bad_request() {
        let reg = setup();
        let err = reg
            .call(GeoPlacesService::WSDL_URI, "WrongName", "GetAllStates", &[])
            .unwrap_err();
        assert!(matches!(err, NetError::BadRequest { .. }));
    }

    #[test]
    fn unknown_operation_is_error() {
        let reg = setup();
        let err = reg
            .call(GeoPlacesService::WSDL_URI, "GeoPlaces", "Nope", &[])
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownOperation { .. }));
    }

    #[test]
    fn service_level_error_is_bad_request() {
        let reg = setup();
        // GetPlacesWithin without its arguments fails inside the service.
        let err = reg
            .call(
                GeoPlacesService::WSDL_URI,
                "GeoPlaces",
                "GetPlacesWithin",
                &[],
            )
            .unwrap_err();
        assert!(matches!(err, NetError::BadRequest { .. }));
        // The provider still recorded the (failed-at-service-level) call.
        let m = reg
            .endpoint(GeoPlacesService::WSDL_URI)
            .unwrap()
            .provider
            .metrics();
        assert_eq!(m.calls, 1);
    }

    #[test]
    fn injected_fault_surfaces() {
        let reg = setup();
        let endpoint = reg.endpoint(ZipCodesService::WSDL_URI).unwrap();
        endpoint.provider.set_fault(wsmed_netsim::FaultSpec {
            fail_first: 1,
            ..Default::default()
        });
        let err = reg
            .call(
                ZipCodesService::WSDL_URI,
                "ZipCodes",
                "GetPlacesInside",
                &[("zip".to_owned(), "80840".to_owned())],
            )
            .unwrap_err();
        assert!(matches!(err, NetError::ServiceFault { .. }));
        // Next call succeeds.
        assert!(reg
            .call(
                ZipCodesService::WSDL_URI,
                "ZipCodes",
                "GetPlacesInside",
                &[("zip".to_owned(), "80840".to_owned())],
            )
            .is_ok());
    }
}
