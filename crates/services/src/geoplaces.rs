//! The codebump **GeoPlaces** service: `GetAllStates` and `GetPlacesWithin`.

use std::sync::Arc;

use wsmed_store::SqlType;
use wsmed_wsdl::WsdlDocument;
use wsmed_xml::Element;

use crate::dataset::Dataset;
use crate::soap::{nested_response, nested_result_operation, real_arg, scalar_arg, SoapService};

/// Simulated `http://codebump.com/services/PlaceLookup.asmx`.
#[derive(Debug, Clone)]
pub struct GeoPlacesService {
    dataset: Arc<Dataset>,
}

impl GeoPlacesService {
    /// The WSDL URI the paper uses for this service (Fig. 2, line 14).
    pub const WSDL_URI: &'static str = "http://codebump.com/services/PlaceLookup.wsdl";
    /// The netsim provider hosting this service.
    pub const PROVIDER: &'static str = "codebump.com/geo";

    /// Creates the service over a dataset.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        GeoPlacesService { dataset }
    }

    fn get_all_states(&self) -> Element {
        let rows = self
            .dataset
            .states()
            .iter()
            .map(|s| {
                Element::new("GeoPlaceDetails")
                    .with_child(Element::text_leaf("Name", s.name.clone()))
                    .with_child(Element::text_leaf("Type", "State"))
                    .with_child(Element::text_leaf("State", s.abbr.clone()))
                    .with_child(Element::text_leaf("LatDegrees", format!("{}", s.lat)))
                    .with_child(Element::text_leaf("LonDegrees", format!("{}", s.lon)))
                    .with_child(Element::text_leaf(
                        "LatRadians",
                        format!("{:.6}", s.lat.to_radians()),
                    ))
                    .with_child(Element::text_leaf(
                        "LonRadians",
                        format!("{:.6}", s.lon.to_radians()),
                    ))
            })
            .collect();
        nested_response("GetAllStates", rows)
    }

    fn get_places_within(&self, request: &Element) -> Result<Element, String> {
        let place = scalar_arg(request, "place")?;
        let state = scalar_arg(request, "state")?;
        let distance = real_arg(request, "distance")?;
        let kind = scalar_arg(request, "placeTypeToFind")?;
        let rows = self
            .dataset
            .places_within(place, state, distance, kind)
            .into_iter()
            .map(|(to_place, to_state, dist)| {
                Element::new("GeoPlaceDistance")
                    .with_child(Element::text_leaf("ToPlace", to_place))
                    .with_child(Element::text_leaf("ToState", to_state))
                    .with_child(Element::text_leaf("Distance", format!("{dist}")))
            })
            .collect();
        Ok(nested_response("GetPlacesWithin", rows))
    }
}

impl SoapService for GeoPlacesService {
    fn service_name(&self) -> &str {
        "GeoPlaces"
    }

    fn wsdl_uri(&self) -> &str {
        Self::WSDL_URI
    }

    fn provider_name(&self) -> &str {
        Self::PROVIDER
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument {
            service_name: "GeoPlaces".to_owned(),
            target_namespace: "http://codebump.com/services/PlaceLookup".to_owned(),
            operations: vec![
                nested_result_operation(
                    "GetAllStates",
                    &[],
                    "GeoPlaceDetails",
                    &[
                        ("Name", SqlType::Charstring),
                        ("Type", SqlType::Charstring),
                        ("State", SqlType::Charstring),
                        ("LatDegrees", SqlType::Real),
                        ("LonDegrees", SqlType::Real),
                        ("LatRadians", SqlType::Real),
                        ("LonRadians", SqlType::Real),
                    ],
                    "All US states",
                ),
                nested_result_operation(
                    "GetPlacesWithin",
                    &[
                        ("place", SqlType::Charstring),
                        ("state", SqlType::Charstring),
                        ("distance", SqlType::Real),
                        ("placeTypeToFind", SqlType::Charstring),
                    ],
                    "GeoPlaceDistance",
                    &[
                        ("ToPlace", SqlType::Charstring),
                        ("ToState", SqlType::Charstring),
                        ("Distance", SqlType::Real),
                    ],
                    "Places of a kind within a distance of a place",
                ),
            ],
        }
    }

    fn invoke(&self, operation: &str, request: &Element) -> Result<Element, String> {
        match operation {
            "GetAllStates" => Ok(self.get_all_states()),
            "GetPlacesWithin" => self.get_places_within(request),
            other => Err(format!("unknown operation {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use wsmed_store::xml_to_value;
    use wsmed_wsdl::OwfDef;

    fn service() -> GeoPlacesService {
        GeoPlacesService::new(Arc::new(Dataset::generate(DatasetConfig::tiny())))
    }

    #[test]
    fn get_all_states_returns_51_rows() {
        let svc = service();
        let resp = svc
            .invoke("GetAllStates", &Element::new("GetAllStates"))
            .unwrap();
        let result = resp.child("GetAllStatesResult").unwrap();
        assert_eq!(result.children.len(), 51);
        let first = &result.children[0];
        assert_eq!(first.child("State").unwrap().text(), "AL");
        assert_eq!(first.child("Type").unwrap().text(), "State");
    }

    #[test]
    fn owf_flattens_get_all_states() {
        let svc = service();
        let wsdl = svc.wsdl();
        let owf = OwfDef::derive(
            wsdl.operation("GetAllStates").unwrap(),
            "GeoPlaces",
            svc.wsdl_uri(),
        )
        .unwrap();
        let resp = svc
            .invoke("GetAllStates", &Element::new("GetAllStates"))
            .unwrap();
        let rows = owf.flatten(&xml_to_value(&resp)).unwrap();
        assert_eq!(rows.len(), 51);
        // Column 2 is State, column 3 is LatDegrees (a Real).
        assert_eq!(rows[5].get(2).as_str().unwrap(), "CO");
        assert!(rows[5].get(3).as_real().unwrap() > 0.0);
    }

    #[test]
    fn get_places_within_round_trip() {
        let svc = service();
        let req = Element::new("GetPlacesWithin")
            .with_child(Element::text_leaf("place", "Atlanta"))
            .with_child(Element::text_leaf("state", "GA"))
            .with_child(Element::text_leaf("distance", "15.0"))
            .with_child(Element::text_leaf("placeTypeToFind", "City"));
        let resp = svc.invoke("GetPlacesWithin", &req).unwrap();
        let result = resp.child("GetPlacesWithinResult").unwrap();
        for row in &result.children {
            assert_eq!(row.child("ToState").unwrap().text(), "GA");
            let d: f64 = row.child("Distance").unwrap().text().parse().unwrap();
            assert!(d <= 15.0);
        }
    }

    #[test]
    fn get_places_within_missing_arg_is_error() {
        let svc = service();
        let req = Element::new("GetPlacesWithin");
        assert!(svc.invoke("GetPlacesWithin", &req).is_err());
    }

    #[test]
    fn unknown_operation_is_error() {
        let svc = service();
        assert!(svc.invoke("Nope", &Element::new("Nope")).is_err());
    }

    #[test]
    fn wsdl_round_trips_through_parser() {
        let svc = service();
        let xml = svc.wsdl().to_xml_string();
        let parsed = wsmed_wsdl::parse_wsdl(&xml).unwrap();
        assert_eq!(parsed, svc.wsdl());
    }
}
