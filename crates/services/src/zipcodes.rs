//! The codebump **ZipCodes** service: `GetPlacesInside`.

use std::sync::Arc;

use wsmed_store::SqlType;
use wsmed_wsdl::WsdlDocument;
use wsmed_xml::Element;

use crate::dataset::Dataset;
use crate::soap::{nested_response, nested_result_operation, scalar_arg, SoapService};

/// Simulated `http://codebump.com/services/ZipCodeLookup.asmx` — the places
/// located inside a zip code area (§II.B).
#[derive(Debug, Clone)]
pub struct ZipCodesService {
    dataset: Arc<Dataset>,
}

impl ZipCodesService {
    /// WSDL URI under which the mediator imports ZipCodes.
    pub const WSDL_URI: &'static str = "http://codebump.com/services/ZipCodeLookup.wsdl";
    /// The netsim provider hosting this service (distinct from GeoPlaces so
    /// the two codebump services saturate independently, as the paper's
    /// per-service measurements imply).
    pub const PROVIDER: &'static str = "codebump.com/zip";

    /// Creates the service over a dataset.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        ZipCodesService { dataset }
    }
}

impl SoapService for ZipCodesService {
    fn service_name(&self) -> &str {
        "ZipCodes"
    }

    fn wsdl_uri(&self) -> &str {
        Self::WSDL_URI
    }

    fn provider_name(&self) -> &str {
        Self::PROVIDER
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument {
            service_name: "ZipCodes".to_owned(),
            target_namespace: "http://codebump.com/services/ZipCodeLookup".to_owned(),
            operations: vec![nested_result_operation(
                "GetPlacesInside",
                &[("zip", SqlType::Charstring)],
                "GeoPlaceDistance",
                &[
                    ("ToPlace", SqlType::Charstring),
                    ("ToState", SqlType::Charstring),
                    ("Distance", SqlType::Real),
                ],
                "Places located inside a zip code area",
            )],
        }
    }

    fn invoke(&self, operation: &str, request: &Element) -> Result<Element, String> {
        if operation != "GetPlacesInside" {
            return Err(format!("unknown operation {operation:?}"));
        }
        let zip = scalar_arg(request, "zip")?;
        let rows = self
            .dataset
            .places_inside(zip)
            .into_iter()
            .map(|(place, state, dist)| {
                Element::new("GeoPlaceDistance")
                    .with_child(Element::text_leaf("ToPlace", place))
                    .with_child(Element::text_leaf("ToState", state))
                    .with_child(Element::text_leaf("Distance", format!("{dist}")))
            })
            .collect();
        Ok(nested_response("GetPlacesInside", rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use wsmed_store::xml_to_value;
    use wsmed_wsdl::OwfDef;

    fn service() -> ZipCodesService {
        ZipCodesService::new(Arc::new(Dataset::generate(DatasetConfig::tiny())))
    }

    fn request(zip: &str) -> Element {
        Element::new("GetPlacesInside").with_child(Element::text_leaf("zip", zip))
    }

    #[test]
    fn usaf_academy_zip() {
        let svc = service();
        let resp = svc.invoke("GetPlacesInside", &request("80840")).unwrap();
        let result = resp.child("GetPlacesInsideResult").unwrap();
        let places: Vec<&str> = result
            .children
            .iter()
            .map(|r| r.child("ToPlace").unwrap().text())
            .collect();
        assert!(places.contains(&"USAF Academy"));
        assert_eq!(result.children[0].child("ToState").unwrap().text(), "CO");
    }

    #[test]
    fn unknown_zip_yields_empty() {
        let svc = service();
        let resp = svc.invoke("GetPlacesInside", &request("99999")).unwrap();
        assert!(resp
            .child("GetPlacesInsideResult")
            .unwrap()
            .children
            .is_empty());
    }

    #[test]
    fn owf_flattens_rows() {
        let svc = service();
        let owf = OwfDef::derive(
            svc.wsdl().operation("GetPlacesInside").unwrap(),
            "ZipCodes",
            svc.wsdl_uri(),
        )
        .unwrap();
        let resp = svc.invoke("GetPlacesInside", &request("80840")).unwrap();
        let rows = owf.flatten(&xml_to_value(&resp)).unwrap();
        assert!(!rows.is_empty());
        assert_eq!(rows[0].get(0).as_str().unwrap(), "USAF Academy");
        assert!(rows[0].get(2).as_real().is_ok());
    }

    #[test]
    fn missing_zip_argument_is_error() {
        let svc = service();
        assert!(svc
            .invoke("GetPlacesInside", &Element::new("GetPlacesInside"))
            .is_err());
    }

    #[test]
    fn wsdl_round_trips() {
        let svc = service();
        let parsed = wsmed_wsdl::parse_wsdl(&svc.wsdl().to_xml_string()).unwrap();
        assert_eq!(parsed, svc.wsdl());
    }
}
