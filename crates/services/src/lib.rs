#![deny(missing_docs)]

//! # wsmed-services
//!
//! Faithful stand-ins for the four public web services the paper's
//! evaluation calls (all of which disappeared from the internet long ago):
//!
//! | Paper service | Operations | Simulated provider |
//! |---|---|---|
//! | codebump GeoPlaces (`PlaceLookup.asmx`) | `GetAllStates`, `GetPlacesWithin` | [`GeoPlacesService`] |
//! | TerraServer TerraService | `GetPlaceList` | [`TerraService`] |
//! | webservicex USZip (`uszip.asmx`) | `GetInfoByState` | [`UsZipService`] |
//! | codebump ZipCodes (`ZipCodeLookup.asmx`) | `GetPlacesInside` | [`ZipCodesService`] |
//!
//! Each service publishes a WSDL document ([`SoapService::wsdl`]), accepts
//! SOAP-style XML requests, and answers with nested XML responses of the
//! same shape the paper describes (§II). The underlying data is a
//! deterministic synthetic US geography ([`Dataset`]) sized so the paper's
//! workload counts hold: Query1 issues > 300 web service calls and returns
//! ≈ 360 tuples; Query2 issues > 5000 calls (§I, §II).
//!
//! [`install_paper_services`] wires the four services onto a
//! [`wsmed_netsim::Network`] with latency/capacity parameters calibrated so
//! the *shape* of the paper's Fig. 16/17/21 reproduces (see
//! [`calibration`]).

mod aviation;
pub mod calibration;
mod dataset;
mod geoplaces;
mod registry;
mod soap;
mod terraservice;
mod uszip;
mod zipcodes;

pub use aviation::AviationService;
pub use dataset::{Dataset, DatasetConfig, PlaceFact, StateInfo};
pub use geoplaces::GeoPlacesService;
pub use registry::{install_paper_services, ServiceEndpoint, ServiceRegistry};
pub use soap::{scalar_arg, SoapService};
pub use terraservice::TerraService;
pub use uszip::UsZipService;
pub use zipcodes::ZipCodesService;
