//! The SOAP-ish service trait and request helpers.
//!
//! Requests are document/literal bodies: the operation element with one
//! child element per input parameter (`<GetPlacesWithin><place>Atlanta…`);
//! responses are the `<Op>Response` element trees the WSDL declares. The
//! SOAP envelope itself is elided — the mediator and the services agree on
//! bodies, and the envelope overhead is part of the latency model's setup
//! cost.

use wsmed_wsdl::WsdlDocument;
use wsmed_xml::Element;

/// A simulated data-providing web service.
pub trait SoapService: Send + Sync {
    /// Service name, as in the WSDL `<service name=…>`.
    fn service_name(&self) -> &str;

    /// The WSDL URI under which the mediator imports this service (the
    /// paper's `cwo` first argument, e.g.
    /// `http://codebump.com/services/PlaceLookup.wsdl`).
    fn wsdl_uri(&self) -> &str;

    /// Name of the [`wsmed_netsim`] provider that hosts this service.
    fn provider_name(&self) -> &str;

    /// The service contract.
    fn wsdl(&self) -> WsdlDocument;

    /// Executes one operation on a request body, returning the response
    /// body. Errors are human-readable strings; the registry maps them to
    /// [`wsmed_netsim::NetError::BadRequest`].
    fn invoke(&self, operation: &str, request: &Element) -> Result<Element, String>;
}

/// Extracts a scalar input parameter from a request body.
pub fn scalar_arg<'a>(request: &'a Element, name: &str) -> Result<&'a str, String> {
    request
        .child(name)
        .map(|el| el.text())
        .ok_or_else(|| format!("missing input parameter {name:?}"))
}

/// Extracts and parses a real-valued input parameter.
pub fn real_arg(request: &Element, name: &str) -> Result<f64, String> {
    let text = scalar_arg(request, name)?;
    text.parse::<f64>()
        .map_err(|_| format!("parameter {name:?} is not a number: {text:?}"))
}

/// Extracts and parses an integer input parameter.
pub fn int_arg(request: &Element, name: &str) -> Result<i64, String> {
    let text = scalar_arg(request, name)?;
    text.parse::<i64>()
        .map_err(|_| format!("parameter {name:?} is not an integer: {text:?}"))
}

/// Extracts and parses a boolean input parameter (`true`/`false`/`1`/`0`).
pub fn bool_arg(request: &Element, name: &str) -> Result<bool, String> {
    match scalar_arg(request, name)? {
        "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        other => Err(format!("parameter {name:?} is not a boolean: {other:?}")),
    }
}

/// Builds the standard nested result shape
/// `<Op>Response > <Op>Result > <row>*` used by all four services, matching
/// the response structure the paper's Fig. 2 flattens.
pub(crate) fn nested_result_operation(
    op: &str,
    inputs: &[(&str, wsmed_store::SqlType)],
    row_name: &str,
    columns: &[(&str, wsmed_store::SqlType)],
    doc: &str,
) -> wsmed_wsdl::OperationDef {
    use wsmed_wsdl::TypeNode;
    wsmed_wsdl::OperationDef {
        name: op.to_owned(),
        inputs: inputs.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
        output: TypeNode::Record {
            name: format!("{op}Response"),
            fields: vec![TypeNode::Record {
                name: format!("{op}Result"),
                fields: vec![TypeNode::Repeated {
                    element: Box::new(TypeNode::Record {
                        name: row_name.to_owned(),
                        fields: columns
                            .iter()
                            .map(|(n, t)| TypeNode::Scalar {
                                name: (*n).to_owned(),
                                ty: *t,
                            })
                            .collect(),
                    }),
                }],
            }],
        },
        doc: Some(doc.to_owned()),
    }
}

/// Builds a scalar result shape `<Op>Response > <Op>Result` (a single text
/// payload, like USZip's comma-separated zip string).
pub(crate) fn scalar_result_operation(
    op: &str,
    inputs: &[(&str, wsmed_store::SqlType)],
    doc: &str,
) -> wsmed_wsdl::OperationDef {
    use wsmed_wsdl::TypeNode;
    wsmed_wsdl::OperationDef {
        name: op.to_owned(),
        inputs: inputs.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
        output: TypeNode::Record {
            name: format!("{op}Response"),
            fields: vec![TypeNode::Scalar {
                name: format!("{op}Result"),
                ty: wsmed_store::SqlType::Charstring,
            }],
        },
        doc: Some(doc.to_owned()),
    }
}

/// Wraps row elements in the `<Op>Response > <Op>Result` envelope.
pub(crate) fn nested_response(op: &str, rows: Vec<Element>) -> Element {
    Element::new(format!("{op}Response"))
        .with_child(Element::new(format!("{op}Result")).with_children(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Element {
        Element::new("Op")
            .with_child(Element::text_leaf("place", "Atlanta"))
            .with_child(Element::text_leaf("distance", "15.0"))
            .with_child(Element::text_leaf("max", "100"))
            .with_child(Element::text_leaf("flag", "true"))
    }

    #[test]
    fn scalar_arg_reads_text() {
        assert_eq!(scalar_arg(&req(), "place").unwrap(), "Atlanta");
        assert!(scalar_arg(&req(), "missing")
            .unwrap_err()
            .contains("missing"));
    }

    #[test]
    fn typed_args_parse() {
        assert_eq!(real_arg(&req(), "distance").unwrap(), 15.0);
        assert_eq!(int_arg(&req(), "max").unwrap(), 100);
        assert!(bool_arg(&req(), "flag").unwrap());
        assert!(real_arg(&req(), "place").is_err());
        assert!(int_arg(&req(), "distance").is_err());
        assert!(bool_arg(&req(), "max").is_err());
    }
}
