//! The **AviationData** service: a three-operation chain used by the
//! repository's Query3 workload (`GetAirports` → `GetDepartures` →
//! `GetFlightStatus`).
//!
//! The paper's evaluation stops at two dependent web service calls per
//! query; this service provides a realistic *three*-level dependency so
//! the generality claim of §VII ("any number of dependent joins") can be
//! exercised against simulated providers rather than mocks.

use std::sync::Arc;

use wsmed_store::SqlType;
use wsmed_wsdl::WsdlDocument;
use wsmed_xml::Element;

use crate::dataset::Dataset;
use crate::soap::{nested_response, nested_result_operation, scalar_arg, SoapService};

/// Simulated `http://aviationdata.example/AviationData.asmx`.
#[derive(Debug, Clone)]
pub struct AviationService {
    dataset: Arc<Dataset>,
}

impl AviationService {
    /// WSDL URI under which the mediator imports AviationData.
    pub const WSDL_URI: &'static str = "http://aviationdata.example/AviationData.wsdl";
    /// The netsim provider hosting this service.
    pub const PROVIDER: &'static str = "aviationdata.example";

    /// Creates the service over a dataset.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        AviationService { dataset }
    }
}

impl SoapService for AviationService {
    fn service_name(&self) -> &str {
        "AviationData"
    }

    fn wsdl_uri(&self) -> &str {
        Self::WSDL_URI
    }

    fn provider_name(&self) -> &str {
        Self::PROVIDER
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument {
            service_name: "AviationData".to_owned(),
            target_namespace: "http://aviationdata.example".to_owned(),
            operations: vec![
                nested_result_operation(
                    "GetAirports",
                    &[("stateAbbr", SqlType::Charstring)],
                    "Airport",
                    &[("Code", SqlType::Charstring), ("City", SqlType::Charstring)],
                    "Airports of a state",
                ),
                nested_result_operation(
                    "GetDepartures",
                    &[("airportCode", SqlType::Charstring)],
                    "Departure",
                    &[
                        ("FlightNo", SqlType::Charstring),
                        ("DestCode", SqlType::Charstring),
                    ],
                    "Departures from an airport",
                ),
                nested_result_operation(
                    "GetFlightStatus",
                    &[("flightNo", SqlType::Charstring)],
                    "FlightStatus",
                    &[
                        ("Status", SqlType::Charstring),
                        ("DelayMinutes", SqlType::Integer),
                    ],
                    "Live status of a flight",
                ),
            ],
        }
    }

    fn invoke(&self, operation: &str, request: &Element) -> Result<Element, String> {
        match operation {
            "GetAirports" => {
                let state = scalar_arg(request, "stateAbbr")?;
                let rows = self
                    .dataset
                    .airports(state)
                    .into_iter()
                    .map(|(code, city)| {
                        Element::new("Airport")
                            .with_child(Element::text_leaf("Code", code))
                            .with_child(Element::text_leaf("City", city))
                    })
                    .collect();
                Ok(nested_response("GetAirports", rows))
            }
            "GetDepartures" => {
                let code = scalar_arg(request, "airportCode")?;
                let rows = self
                    .dataset
                    .departures(code)
                    .into_iter()
                    .map(|(flight, dest)| {
                        Element::new("Departure")
                            .with_child(Element::text_leaf("FlightNo", flight))
                            .with_child(Element::text_leaf("DestCode", dest))
                    })
                    .collect();
                Ok(nested_response("GetDepartures", rows))
            }
            "GetFlightStatus" => {
                let flight = scalar_arg(request, "flightNo")?;
                let rows = self
                    .dataset
                    .flight_status(flight)
                    .into_iter()
                    .map(|(status, delay)| {
                        Element::new("FlightStatus")
                            .with_child(Element::text_leaf("Status", status))
                            .with_child(Element::text_leaf("DelayMinutes", delay.to_string()))
                    })
                    .collect();
                Ok(nested_response("GetFlightStatus", rows))
            }
            other => Err(format!("unknown operation {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn service() -> AviationService {
        AviationService::new(Arc::new(Dataset::generate(DatasetConfig::tiny())))
    }

    fn arg(name: &str, value: &str) -> Element {
        Element::new("req").with_child(Element::text_leaf(name, value))
    }

    #[test]
    fn airports_per_state() {
        let svc = service();
        let resp = svc.invoke("GetAirports", &arg("stateAbbr", "CO")).unwrap();
        let result = resp.child("GetAirportsResult").unwrap();
        assert!(!result.children.is_empty());
        for airport in &result.children {
            let code = airport.child("Code").unwrap().text();
            assert!(code.starts_with("CO"), "airport code {code}");
        }
    }

    #[test]
    fn chain_is_consistent() {
        // A departure of some airport resolves to a status.
        let svc = service();
        let airports = svc.invoke("GetAirports", &arg("stateAbbr", "GA")).unwrap();
        let code = airports.child("GetAirportsResult").unwrap().children[0]
            .child("Code")
            .unwrap()
            .text()
            .to_owned();
        let departures = svc
            .invoke("GetDepartures", &arg("airportCode", &code))
            .unwrap();
        let flights = &departures.child("GetDeparturesResult").unwrap().children;
        assert!(!flights.is_empty());
        let flight = flights[0].child("FlightNo").unwrap().text().to_owned();
        let status = svc
            .invoke("GetFlightStatus", &arg("flightNo", &flight))
            .unwrap();
        let rows = &status.child("GetFlightStatusResult").unwrap().children;
        assert_eq!(rows.len(), 1);
        let state = rows[0].child("Status").unwrap().text();
        assert!(
            ["OnTime", "Delayed", "Boarding"].contains(&state),
            "{state}"
        );
    }

    #[test]
    fn unknown_inputs_yield_empty_results() {
        let svc = service();
        for (op, arg_name) in [
            ("GetAirports", "stateAbbr"),
            ("GetDepartures", "airportCode"),
            ("GetFlightStatus", "flightNo"),
        ] {
            let resp = svc.invoke(op, &arg(arg_name, "NOPE")).unwrap();
            assert!(resp
                .child(&format!("{op}Result"))
                .unwrap()
                .children
                .is_empty());
        }
    }

    #[test]
    fn wsdl_round_trips() {
        let svc = service();
        let parsed = wsmed_wsdl::parse_wsdl(&svc.wsdl().to_xml_string()).unwrap();
        assert_eq!(parsed, svc.wsdl());
        assert_eq!(parsed.operations.len(), 3);
    }
}
