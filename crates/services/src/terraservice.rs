//! The Microsoft **TerraService**: `GetPlaceList`.

use std::sync::Arc;

use wsmed_store::SqlType;
use wsmed_wsdl::WsdlDocument;
use wsmed_xml::Element;

use crate::dataset::Dataset;
use crate::soap::{
    bool_arg, int_arg, nested_response, nested_result_operation, scalar_arg, SoapService,
};

/// Simulated `http://terraservice.net/TerraService.asmx`.
#[derive(Debug, Clone)]
pub struct TerraService {
    dataset: Arc<Dataset>,
}

impl TerraService {
    /// WSDL URI under which the mediator imports TerraService.
    pub const WSDL_URI: &'static str = "http://terraservice.net/TerraService.wsdl";
    /// The netsim provider hosting this service.
    pub const PROVIDER: &'static str = "terraservice.net";

    /// Creates the service over a dataset.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        TerraService { dataset }
    }
}

impl SoapService for TerraService {
    fn service_name(&self) -> &str {
        "TerraService"
    }

    fn wsdl_uri(&self) -> &str {
        Self::WSDL_URI
    }

    fn provider_name(&self) -> &str {
        Self::PROVIDER
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument {
            service_name: "TerraService".to_owned(),
            target_namespace: "http://terraservice.net/terraserver".to_owned(),
            operations: vec![nested_result_operation(
                "GetPlaceList",
                &[
                    ("placeName", SqlType::Charstring),
                    ("MaxItems", SqlType::Integer),
                    ("imagePresence", SqlType::Boolean),
                ],
                "PlaceFacts",
                &[
                    ("placename", SqlType::Charstring),
                    ("state", SqlType::Charstring),
                    ("country", SqlType::Charstring),
                    ("placeLat", SqlType::Real),
                    ("placeLon", SqlType::Real),
                    ("availableThemeMask", SqlType::Integer),
                    ("placeTypeId", SqlType::Integer),
                    ("population", SqlType::Integer),
                ],
                "Place facts for a place specification",
            )],
        }
    }

    fn invoke(&self, operation: &str, request: &Element) -> Result<Element, String> {
        if operation != "GetPlaceList" {
            return Err(format!("unknown operation {operation:?}"));
        }
        let place_name = scalar_arg(request, "placeName")?;
        let max_items = int_arg(request, "MaxItems")?;
        let image_only = bool_arg(request, "imagePresence")?;
        let rows = self
            .dataset
            .place_list(place_name, max_items, image_only)
            .into_iter()
            .map(|f| {
                Element::new("PlaceFacts")
                    .with_child(Element::text_leaf("placename", f.placename))
                    .with_child(Element::text_leaf("state", f.state))
                    .with_child(Element::text_leaf("country", f.country))
                    .with_child(Element::text_leaf(
                        "placeLat",
                        format!("{:.4}", f.place_lat),
                    ))
                    .with_child(Element::text_leaf(
                        "placeLon",
                        format!("{:.4}", f.place_lon),
                    ))
                    .with_child(Element::text_leaf(
                        "availableThemeMask",
                        f.available_theme_mask.to_string(),
                    ))
                    .with_child(Element::text_leaf(
                        "placeTypeId",
                        f.place_type_id.to_string(),
                    ))
                    .with_child(Element::text_leaf("population", f.population.to_string()))
            })
            .collect();
        Ok(nested_response("GetPlaceList", rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use wsmed_store::xml_to_value;
    use wsmed_wsdl::OwfDef;

    fn setup() -> (Arc<Dataset>, TerraService) {
        let ds = Arc::new(Dataset::generate(DatasetConfig::tiny()));
        (Arc::clone(&ds), TerraService::new(ds))
    }

    fn request(place: &str, max: i64, image: bool) -> Element {
        Element::new("GetPlaceList")
            .with_child(Element::text_leaf("placeName", place))
            .with_child(Element::text_leaf("MaxItems", max.to_string()))
            .with_child(Element::text_leaf("imagePresence", image.to_string()))
    }

    #[test]
    fn returns_facts_for_known_place() {
        let (ds, svc) = setup();
        let (name, st, _) = ds.places_within("Atlanta", "GA", 15.0, "City")[0].clone();
        let spec = format!("{name}, {st}");
        let resp = svc
            .invoke("GetPlaceList", &request(&spec, 100, false))
            .unwrap();
        let result = resp.child("GetPlaceListResult").unwrap();
        assert!(!result.children.is_empty());
        assert_eq!(result.children[0].child("placename").unwrap().text(), name);
        assert_eq!(
            result.children[0].child("country").unwrap().text(),
            "United States"
        );
    }

    #[test]
    fn unknown_place_yields_empty_result() {
        let (_, svc) = setup();
        let resp = svc
            .invoke("GetPlaceList", &request("Nowhere, ZZ", 100, true))
            .unwrap();
        assert!(resp
            .child("GetPlaceListResult")
            .unwrap()
            .children
            .is_empty());
    }

    #[test]
    fn owf_flattens_typed_columns() {
        let (ds, svc) = setup();
        let (name, st, _) = ds.places_within("Atlanta", "GA", 15.0, "City")[0].clone();
        let spec = format!("{name}, {st}");
        let owf = OwfDef::derive(
            svc.wsdl().operation("GetPlaceList").unwrap(),
            "TerraService",
            svc.wsdl_uri(),
        )
        .unwrap();
        let resp = svc
            .invoke("GetPlaceList", &request(&spec, 100, false))
            .unwrap();
        let rows = owf.flatten(&xml_to_value(&resp)).unwrap();
        assert!(!rows.is_empty());
        assert!(rows[0].get(7).as_int().unwrap() >= 5_000); // population
        assert!(rows[0].get(3).as_real().is_ok()); // placeLat
    }

    #[test]
    fn bad_arguments_error() {
        let (_, svc) = setup();
        let bad = Element::new("GetPlaceList")
            .with_child(Element::text_leaf("placeName", "X"))
            .with_child(Element::text_leaf("MaxItems", "lots"))
            .with_child(Element::text_leaf("imagePresence", "true"));
        assert!(svc.invoke("GetPlaceList", &bad).is_err());
        assert!(svc.invoke("Other", &Element::new("Other")).is_err());
    }

    #[test]
    fn wsdl_round_trips() {
        let (_, svc) = setup();
        let parsed = wsmed_wsdl::parse_wsdl(&svc.wsdl().to_xml_string()).unwrap();
        assert_eq!(parsed, svc.wsdl());
    }
}
