//! Recursive-descent parser over the token stream.

use wsmed_store::Value;

use crate::ast::{
    AggFunc, CompareOp, Expr, OrderItem, Predicate, Projection, SelectStmt, TableRef,
};
use crate::lexer::{tokenize, Token};
use crate::{SqlError, SqlResult};

/// Parses a `SELECT` statement in the supported subset.
pub fn parse_select(sql: &str) -> SqlResult<SelectStmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse {
            message: format!("unexpected trailing tokens starting at {:?}", p.peek()),
        });
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &'static str) -> SqlResult<()> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(SqlError::Parse {
                message: format!("expected {kw}, found {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(SqlError::Parse {
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn select(&mut self) -> SqlResult<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = if matches!(self.peek(), Some(Token::Keyword("DISTINCT"))) {
            self.next();
            true
        } else {
            false
        };
        let projection = if self.peek() == Some(&Token::Star) {
            self.next();
            Projection::Star
        } else {
            let mut projections = vec![self.projection_item()?];
            while self.peek() == Some(&Token::Comma) {
                self.next();
                projections.push(self.projection_item()?);
            }
            // A lone `count(*)` without GROUP BY keeps its dedicated fast
            // path (the paper-era Count operator).
            if projections.len() == 1
                && matches!(
                    projections[0],
                    Expr::Aggregate {
                        func: AggFunc::Count,
                        arg: None
                    }
                )
            {
                Projection::CountStar
            } else {
                Projection::Exprs(projections)
            }
        };

        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            from.push(self.table_ref()?);
        }

        let mut predicates = Vec::new();
        if matches!(self.peek(), Some(Token::Keyword("WHERE"))) {
            self.next();
            predicates.push(self.predicate()?);
            while matches!(self.peek(), Some(Token::Keyword("AND"))) {
                self.next();
                predicates.push(self.predicate()?);
            }
        }

        let mut group_by = Vec::new();
        if matches!(self.peek(), Some(Token::Keyword("GROUP"))) {
            self.next();
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.peek() == Some(&Token::Comma) {
                self.next();
                group_by.push(self.expr()?);
            }
        }

        let mut having = Vec::new();
        if matches!(self.peek(), Some(Token::Keyword("HAVING"))) {
            self.next();
            having.push(self.having_predicate()?);
            while matches!(self.peek(), Some(Token::Keyword("AND"))) {
                self.next();
                having.push(self.having_predicate()?);
            }
        }

        let mut order_by = Vec::new();
        if matches!(self.peek(), Some(Token::Keyword("ORDER"))) {
            self.next();
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = match self.peek() {
                    Some(Token::Keyword("DESC")) => {
                        self.next();
                        true
                    }
                    Some(Token::Keyword("ASC")) => {
                        self.next();
                        false
                    }
                    _ => false,
                };
                order_by.push(OrderItem { expr, desc });
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }

        let mut limit = None;
        if matches!(self.peek(), Some(Token::Keyword("LIMIT"))) {
            self.next();
            match self.next() {
                Some(Token::IntLit(n)) if n >= 0 => limit = Some(n as u64),
                other => {
                    return Err(SqlError::Parse {
                        message: format!("LIMIT needs a non-negative integer, found {other:?}"),
                    })
                }
            }
        }

        Ok(SelectStmt {
            distinct,
            projection,
            from,
            predicates,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// Parses a `HAVING` predicate; the left side may be an aggregate call.
    fn having_predicate(&mut self) -> SqlResult<Predicate> {
        let left = self.projection_item()?;
        let op = match self.next() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ne) => CompareOp::Ne,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            other => {
                return Err(SqlError::Parse {
                    message: format!("expected a comparison operator, found {other:?}"),
                })
            }
        };
        let right = self.projection_item()?;
        Ok(Predicate { left, op, right })
    }

    /// Parses one `SELECT`-list item: an aggregate call or an expression.
    fn projection_item(&mut self) -> SqlResult<Expr> {
        if let (Some(Token::Ident(name)), Some(Token::LParen)) =
            (self.tokens.get(self.pos), self.tokens.get(self.pos + 1))
        {
            if let Some(func) = AggFunc::parse(name) {
                self.next(); // name
                self.next(); // (
                let arg = if self.peek() == Some(&Token::Star) {
                    self.next();
                    if func != AggFunc::Count {
                        return Err(SqlError::Unsupported(format!(
                            "{}(*) — only COUNT takes '*'",
                            func.sql()
                        )));
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                match self.next() {
                    Some(Token::RParen) => {}
                    other => {
                        return Err(SqlError::Parse {
                            message: format!("expected ')', found {other:?}"),
                        })
                    }
                }
                return Ok(Expr::Aggregate { func, arg });
            }
        }
        self.expr()
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let view = self.expect_ident()?;
        // Optional `AS`, optional alias.
        if matches!(self.peek(), Some(Token::Keyword("AS"))) {
            self.next();
            let alias = self.expect_ident()?;
            return Ok(TableRef { view, alias });
        }
        if let Some(Token::Ident(_)) = self.peek() {
            let alias = self.expect_ident()?;
            return Ok(TableRef { view, alias });
        }
        let alias = view.clone();
        Ok(TableRef { view, alias })
    }

    fn predicate(&mut self) -> SqlResult<Predicate> {
        let left = self.expr()?;
        let op = match self.next() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ne) => CompareOp::Ne,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            other => {
                return Err(SqlError::Parse {
                    message: format!("expected a comparison operator, found {other:?}"),
                })
            }
        };
        let right = self.expr()?;
        Ok(Predicate { left, op, right })
    }

    /// Parses a `+`-chain of atoms.
    fn expr(&mut self) -> SqlResult<Expr> {
        let first = self.atom()?;
        if self.peek() != Some(&Token::Plus) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.peek() == Some(&Token::Plus) {
            self.next();
            parts.push(self.atom()?);
        }
        Ok(Expr::Concat(parts))
    }

    fn atom(&mut self) -> SqlResult<Expr> {
        // Unary minus: negate the following numeric literal.
        if self.peek() == Some(&Token::Minus) {
            self.next();
            return match self.next() {
                Some(Token::RealLit(v)) => Ok(Expr::Literal(Value::Real(-v))),
                Some(Token::IntLit(v)) => Ok(Expr::Literal(Value::Int(-v))),
                other => Err(SqlError::Parse {
                    message: format!("expected a number after '-', found {other:?}"),
                }),
            };
        }
        match self.next() {
            Some(Token::Ident(first)) => {
                if self.peek() == Some(&Token::Dot) {
                    self.next();
                    let column = self.expect_ident()?;
                    Ok(Expr::Column {
                        alias: first,
                        column,
                    })
                } else {
                    // A bare identifier is a column on an implicit alias —
                    // outside the supported subset (all of the paper's
                    // queries qualify columns).
                    Err(SqlError::Unsupported(format!(
                        "bare column {first:?}; qualify it as alias.{first}"
                    )))
                }
            }
            Some(Token::StringLit(s)) => Ok(Expr::Literal(Value::from(s))),
            Some(Token::RealLit(v)) => Ok(Expr::Literal(Value::Real(v))),
            Some(Token::IntLit(v)) => Ok(Expr::Literal(Value::Int(v))),
            other => Err(SqlError::Parse {
                message: format!("expected expression, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Query1 (Fig. 1), verbatim modulo whitespace.
    pub const QUERY1: &str = "\
        Select gl.placename, gl.state \
        From GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl \
        Where gs.State=gp.state and gp.distance=15.0 \
          and gp.placeTypeToFind='City' and gp.place='Atlanta' \
          and gl.placeName=gp.ToPlace+', '+gp.ToState \
          and gl.MaxItems=100 and gl.imagePresence='true'";

    /// The paper's Query2 (Fig. 3).
    pub const QUERY2: &str = "\
        select gp.ToState, gp.zip \
        From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
        Where gs.State=gi.USState and gi.GetInfoByStateResult=gc.zipstr \
          and gc.zipcode=gp.zip and gp.ToPlace='USAF Academy'";

    #[test]
    fn parses_query1() {
        let stmt = parse_select(QUERY1).unwrap();
        match &stmt.projection {
            Projection::Exprs(exprs) => assert_eq!(exprs.len(), 2),
            other => panic!("unexpected projection {other:?}"),
        }
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(
            stmt.from[1],
            TableRef {
                view: "GetPlacesWithin".into(),
                alias: "gp".into()
            }
        );
        assert_eq!(stmt.predicates.len(), 7);
        // The concat predicate parsed as a 3-part chain.
        let concat_pred = &stmt.predicates[4];
        match &concat_pred.right {
            Expr::Concat(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn parses_query2() {
        let stmt = parse_select(QUERY2).unwrap();
        assert_eq!(stmt.from.len(), 4);
        assert_eq!(stmt.predicates.len(), 4);
        assert_eq!(
            stmt.predicates[3].right,
            Expr::Literal(Value::str("USAF Academy"))
        );
    }

    #[test]
    fn alias_defaults_to_view_name() {
        let stmt = parse_select("select GetAllStates.State from GetAllStates").unwrap();
        assert_eq!(stmt.from[0].alias, "GetAllStates");
        assert!(stmt.predicates.is_empty());
    }

    #[test]
    fn as_keyword_alias() {
        let stmt = parse_select("select g.State from GetAllStates as g").unwrap();
        assert_eq!(stmt.from[0].alias, "g");
    }

    #[test]
    fn real_and_int_literals_distinct() {
        let stmt = parse_select("select a.x from V a where a.d=15.0 and a.m=100").unwrap();
        assert_eq!(stmt.predicates[0].right, Expr::Literal(Value::Real(15.0)));
        assert_eq!(stmt.predicates[1].right, Expr::Literal(Value::Int(100)));
    }

    #[test]
    fn trailing_tokens_error() {
        assert!(parse_select("select a.x from V a garbage extra").is_err());
    }

    #[test]
    fn missing_from_is_error() {
        let err = parse_select("select a.x").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
    }

    #[test]
    fn bare_column_is_unsupported() {
        let err = parse_select("select x from V").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
    }

    #[test]
    fn non_equality_predicate_is_error() {
        let err = parse_select("select a.x from V a where a.x + a.y").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
    }

    #[test]
    fn comparison_predicates_parse() {
        let stmt =
            parse_select("select a.x from V a where a.p > 1000 and a.d <= 15.0 and a.n <> 'x'")
                .unwrap();
        assert_eq!(stmt.predicates[0].op, CompareOp::Gt);
        assert_eq!(stmt.predicates[1].op, CompareOp::Le);
        assert_eq!(stmt.predicates[2].op, CompareOp::Ne);
    }

    #[test]
    fn distinct_order_by_limit_parse() {
        let stmt =
            parse_select("select distinct a.x, a.y from V a order by a.y desc, a.x limit 10")
                .unwrap();
        assert!(stmt.distinct);
        assert_eq!(stmt.order_by.len(), 2);
        assert!(stmt.order_by[0].desc);
        assert!(!stmt.order_by[1].desc);
        assert_eq!(stmt.limit, Some(10));
    }

    #[test]
    fn order_by_asc_explicit() {
        let stmt = parse_select("select a.x from V a order by a.x asc").unwrap();
        assert!(!stmt.order_by[0].desc);
    }

    #[test]
    fn bad_limit_is_error() {
        assert!(parse_select("select a.x from V a limit ten").is_err());
        assert!(parse_select("select a.x from V a limit").is_err());
    }

    #[test]
    fn negative_literals_parse() {
        let stmt = parse_select("select a.x from V a where a.lat > -10.5 and a.n = -3").unwrap();
        assert_eq!(stmt.predicates[0].right, Expr::Literal(Value::Real(-10.5)));
        assert_eq!(stmt.predicates[1].right, Expr::Literal(Value::Int(-3)));
        assert!(parse_select("select a.x from V a where a.y = -").is_err());
        assert!(parse_select("select a.x from V a where a.y = -'s'").is_err());
    }

    #[test]
    fn literal_on_left_side_parses() {
        let stmt = parse_select("select a.x from V a where 'USAF Academy'=a.pl").unwrap();
        assert_eq!(
            stmt.predicates[0].left,
            Expr::Literal(Value::str("USAF Academy"))
        );
    }
}

#[cfg(test)]
mod roundtrip_tests {
    //! Property test: `SelectStmt::Display` emits SQL that parses back to
    //! the identical AST — the parser and printer agree on the grammar.

    use proptest::prelude::*;

    use super::parse_select;
    use crate::ast::{CompareOp, Expr, OrderItem, Predicate, Projection, SelectStmt, TableRef};
    use wsmed_store::Value;

    fn ident() -> impl Strategy<Value = String> {
        // Avoid keywords: prefix with a letter run that no keyword matches.
        "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
            !matches!(
                s.to_ascii_uppercase().as_str(),
                "SELECT"
                    | "FROM"
                    | "WHERE"
                    | "AND"
                    | "AS"
                    | "ORDER"
                    | "BY"
                    | "LIMIT"
                    | "ASC"
                    | "DESC"
                    | "DISTINCT"
            )
        })
    }

    fn column() -> impl Strategy<Value = Expr> {
        (ident(), ident()).prop_map(|(alias, column)| Expr::Column { alias, column })
    }

    fn literal() -> impl Strategy<Value = Expr> {
        prop_oneof![
            "[ -&(-~]{0,12}".prop_map(|s| Expr::Literal(Value::from(s))), // printable minus '\''
            any::<i32>().prop_map(|i| Expr::Literal(Value::Int(i64::from(i)))),
            (-1000i32..1000, 1u32..100)
                .prop_map(|(a, b)| Expr::Literal(Value::Real(f64::from(a) + f64::from(b) / 100.0))),
        ]
    }

    fn expr() -> impl Strategy<Value = Expr> {
        prop_oneof![
            column(),
            literal(),
            (column(), literal(), column()).prop_map(|(a, b, c)| Expr::Concat(vec![a, b, c])),
        ]
    }

    fn compare_op() -> impl Strategy<Value = CompareOp> {
        prop_oneof![
            Just(CompareOp::Eq),
            Just(CompareOp::Ne),
            Just(CompareOp::Lt),
            Just(CompareOp::Le),
            Just(CompareOp::Gt),
            Just(CompareOp::Ge),
        ]
    }

    fn stmt() -> impl Strategy<Value = SelectStmt> {
        (
            any::<bool>(),
            proptest::collection::vec(column(), 1..4),
            proptest::collection::vec((ident(), ident()), 1..4),
            proptest::collection::vec((expr(), compare_op(), expr()), 0..4),
            proptest::collection::vec((column(), any::<bool>()), 0..3),
            proptest::option::of(0u64..10_000),
        )
            .prop_map(
                |(distinct, projections, tables, preds, order, limit)| SelectStmt {
                    distinct,
                    group_by: vec![],
                    having: vec![],
                    projection: Projection::Exprs(projections),
                    from: tables
                        .into_iter()
                        .map(|(view, alias)| TableRef { view, alias })
                        .collect(),
                    predicates: preds
                        .into_iter()
                        .map(|(left, op, right)| Predicate { left, op, right })
                        .collect(),
                    order_by: order
                        .into_iter()
                        .map(|(expr, desc)| OrderItem { expr, desc })
                        .collect(),
                    limit,
                },
            )
    }

    proptest! {
        #[test]
        fn prop_display_parse_roundtrip(stmt in stmt()) {
            let sql = stmt.to_string();
            let parsed = parse_select(&sql)
                .unwrap_or_else(|e| panic!("{sql:?} failed to parse: {e}"));
            prop_assert_eq!(parsed, stmt, "{}", sql);
        }
    }
}
