//! Resolution + calculus generation: SQL AST → ordered calculus.
//!
//! This is the paper's *calculus generator* (Fig. 5). The interesting work
//! is handling *limited access patterns* [7]: every OWF input column must
//! end up bound — by a constant predicate (`gp.place='Atlanta'`) or by
//! another view's output (`gs.State=gp.state`) — and the atoms must be
//! ordered so producers precede consumers. Equalities that cannot bind an
//! input (output=constant, output=output) become `equal` filter atoms, and
//! `+`-expressions become `concat` atoms, exactly as in the paper's central
//! plans (Fig. 6 and Fig. 10).

use std::collections::HashMap;

use wsmed_store::Value;

use crate::ast::{Expr, Projection, SelectStmt};
use crate::calculus::{Atom, CalculusExpr, GroupPlan, OutputRef, Term, VarId};
use crate::catalog::{Catalog, ViewKind};
use crate::{SqlError, SqlResult};

/// Generates the ordered calculus expression for a parsed query.
pub fn generate_calculus(stmt: &SelectStmt, catalog: &dyn Catalog) -> SqlResult<CalculusExpr> {
    let mut gen = Generator::new(catalog);
    gen.add_from_items(stmt)?;
    for pred in &stmt.predicates {
        let left = gen.term_of_expr(&pred.left)?;
        let right = gen.term_of_expr(&pred.right)?;
        match pred.op.filter_function() {
            // `=` binds: unify the two sides.
            None => gen.unify(left, right),
            // Inequalities filter: a helping-function atom with no outputs.
            Some(function) => gen.atoms.push(Atom {
                function: function.to_owned(),
                kind: ViewKind::HelpingFunction,
                inputs: vec![left, right],
                outputs: vec![],
            }),
        }
    }
    gen.finish(stmt)
}

/// Union-find node state.
#[derive(Debug, Clone)]
struct VarInfo {
    parent: VarId,
    /// Constant bound to this class (only meaningful on roots).
    constant: Option<Value>,
    /// Preferred display name.
    name: Option<String>,
}

struct Generator<'a> {
    catalog: &'a dyn Catalog,
    vars: Vec<VarInfo>,
    /// Atom skeletons before substitution, in creation order.
    atoms: Vec<Atom>,
    /// alias → (atom index, view name).
    aliases: HashMap<String, usize>,
    /// Pairs of classes that were unified onto conflicting constants: the
    /// query is unsatisfiable; an always-false filter is emitted.
    contradiction: bool,
}

impl<'a> Generator<'a> {
    fn new(catalog: &'a dyn Catalog) -> Self {
        Generator {
            catalog,
            vars: Vec::new(),
            atoms: Vec::new(),
            aliases: HashMap::new(),
            contradiction: false,
        }
    }

    fn fresh_var(&mut self, name: Option<String>) -> VarId {
        let id = self.vars.len();
        self.vars.push(VarInfo {
            parent: id,
            constant: None,
            name,
        });
        id
    }

    fn find(&mut self, v: VarId) -> VarId {
        if self.vars[v].parent != v {
            let root = self.find(self.vars[v].parent);
            self.vars[v].parent = root;
        }
        self.vars[v].parent
    }

    fn union(&mut self, a: VarId, b: VarId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Merge rb into ra; keep the better name and check constants.
        let b_const = self.vars[rb].constant.take();
        let b_name = self.vars[rb].name.take();
        self.vars[rb].parent = ra;
        match (&self.vars[ra].constant, b_const) {
            (Some(ca), Some(cb)) if *ca != cb => self.contradiction = true,
            (None, Some(cb)) => self.vars[ra].constant = Some(cb),
            _ => {}
        }
        if self.vars[ra].name.is_none() {
            self.vars[ra].name = b_name;
        }
    }

    fn bind_const(&mut self, v: VarId, value: Value) {
        let root = self.find(v);
        match &self.vars[root].constant {
            Some(existing) if *existing != value => self.contradiction = true,
            Some(_) => {}
            None => self.vars[root].constant = Some(value),
        }
    }

    fn add_from_items(&mut self, stmt: &SelectStmt) -> SqlResult<()> {
        for table in &stmt.from {
            if self.aliases.contains_key(&table.alias) {
                return Err(SqlError::DuplicateAlias(table.alias.clone()));
            }
            let view = self
                .catalog
                .view(&table.view)
                .ok_or_else(|| SqlError::UnknownName(table.view.clone()))?
                .clone();
            let inputs: Vec<Term> = view
                .inputs
                .iter()
                .map(|(n, _)| Term::Var(self.fresh_var(Some(n.to_ascii_lowercase()))))
                .collect();
            let outputs: Vec<VarId> = view
                .outputs
                .iter()
                .map(|(n, _)| self.fresh_var(Some(n.to_ascii_lowercase())))
                .collect();
            let idx = self.atoms.len();
            self.atoms.push(Atom {
                function: view.name.clone(),
                kind: view.kind,
                inputs,
                outputs,
            });
            self.aliases.insert(table.alias.clone(), idx);
        }
        Ok(())
    }

    /// Resolves `alias.column` to the variable sitting in that slot.
    fn column_var(&mut self, alias: &str, column: &str) -> SqlResult<VarId> {
        let &atom_idx = self
            .aliases
            .get(alias)
            .ok_or_else(|| SqlError::UnknownName(alias.to_owned()))?;
        let view = self
            .catalog
            .view(&self.atoms[atom_idx].function)
            .expect("view existed at FROM time");
        let (is_input, pos, _ty) = view.column(column).ok_or_else(|| SqlError::UnknownColumn {
            alias: alias.to_owned(),
            column: column.to_owned(),
        })?;
        let var = if is_input {
            self.atoms[atom_idx].inputs[pos]
                .var()
                .expect("input slots start as variables")
        } else {
            self.atoms[atom_idx].outputs[pos]
        };
        Ok(var)
    }

    /// Turns an expression into a term, creating `concat` atoms as needed.
    fn term_of_expr(&mut self, expr: &Expr) -> SqlResult<Term> {
        match expr {
            Expr::Column { alias, column } => Ok(Term::Var(self.column_var(alias, column)?)),
            Expr::Literal(v) => Ok(Term::Const(v.clone())),
            Expr::Concat(parts) => {
                let mut terms = Vec::with_capacity(parts.len());
                for part in parts {
                    match part {
                        Expr::Concat(_) => {
                            return Err(SqlError::Unsupported("nested concatenation".into()))
                        }
                        other => terms.push(self.term_of_expr(other)?),
                    }
                }
                let out = self.fresh_var(Some("str".into()));
                let function = match terms.len() {
                    2 => "concat".to_owned(),
                    3 => "concat3".to_owned(),
                    n => {
                        return Err(SqlError::Unsupported(format!(
                            "{n}-way concatenation (2 or 3 parts supported)"
                        )))
                    }
                };
                self.atoms.push(Atom {
                    function,
                    kind: ViewKind::HelpingFunction,
                    inputs: terms,
                    outputs: vec![out],
                });
                Ok(Term::Var(out))
            }
            Expr::Aggregate { func, .. } => Err(SqlError::Unsupported(format!(
                "aggregate {}() outside the SELECT list",
                func.sql()
            ))),
        }
    }

    fn unify(&mut self, left: Term, right: Term) {
        match (left, right) {
            (Term::Var(a), Term::Var(b)) => self.union(a, b),
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                self.bind_const(v, c)
            }
            (Term::Const(a), Term::Const(b)) => {
                if a != b {
                    self.contradiction = true;
                }
            }
        }
    }

    /// Applies the substitution, plans filters, orders atoms, builds head.
    fn finish(mut self, stmt: &SelectStmt) -> SqlResult<CalculusExpr> {
        // ---- head (resolved before atoms are drained below) ---------------
        // A lone COUNT(*) that *does* group routes through the grouped path.
        let projection = match (&stmt.projection, stmt.group_by.is_empty()) {
            (Projection::CountStar, false) => Projection::Exprs(vec![Expr::Aggregate {
                func: crate::ast::AggFunc::Count,
                arg: None,
            }]),
            (other, _) => other.clone(),
        };
        let is_grouped = !stmt.group_by.is_empty()
            || matches!(&projection, Projection::Exprs(exprs)
                if exprs.iter().any(|e| matches!(e, Expr::Aggregate { .. })));

        let projections: Vec<Expr> = match &projection {
            Projection::Exprs(exprs) => exprs.clone(),
            // `SELECT *` / `COUNT(*)`: every column of every FROM view, in
            // declaration order (for COUNT the head is collapsed below).
            Projection::Star | Projection::CountStar => {
                if matches!(projection, Projection::Star) && is_grouped {
                    return Err(SqlError::Unsupported(
                        "SELECT * with GROUP BY (list the grouped columns)".into(),
                    ));
                }
                let mut exprs = Vec::new();
                for table in &stmt.from {
                    let view = self
                        .catalog
                        .view(&table.view)
                        .expect("resolved during add_from_items");
                    for (column, _) in view.inputs.iter().chain(view.outputs.iter()) {
                        exprs.push(Expr::Column {
                            alias: table.alias.clone(),
                            column: column.clone(),
                        });
                    }
                }
                exprs
            }
        };

        let resolve_column_term = |gen: &mut Self, alias: &str, column: &str| -> SqlResult<Term> {
            let v = gen.column_var(alias, column)?;
            let root = gen.find(v);
            Ok(match gen.vars[root].constant.clone() {
                Some(c) => Term::Const(c),
                None => Term::Var(root),
            })
        };

        let mut head = Vec::new();
        let mut group = None;
        if is_grouped {
            // Keys first (GROUP BY order), then aggregate argument columns.
            let mut key_names = Vec::with_capacity(stmt.group_by.len());
            for key in &stmt.group_by {
                let Expr::Column { alias, column } = key else {
                    return Err(SqlError::Unsupported(format!(
                        "GROUP BY {key} (only columns can be grouped)"
                    )));
                };
                head.push(resolve_column_term(&mut self, alias, column)?);
                key_names.push(column.to_ascii_lowercase());
            }
            let key_count = head.len();
            let mut aggs = Vec::new();
            let mut output = Vec::with_capacity(projections.len());
            let mut output_names = Vec::with_capacity(projections.len());
            for proj in &projections {
                match proj {
                    Expr::Aggregate { func, arg } => {
                        let arg_pos = match arg.as_deref() {
                            None => None,
                            Some(Expr::Column { alias, column }) => {
                                head.push(resolve_column_term(&mut self, alias, column)?);
                                Some(head.len() - 1)
                            }
                            Some(other) => {
                                return Err(SqlError::Unsupported(format!(
                                    "aggregate over {other} (only columns)"
                                )))
                            }
                        };
                        output.push(OutputRef::Agg(aggs.len()));
                        output_names.push(func.sql().to_owned());
                        aggs.push((*func, arg_pos));
                    }
                    other => {
                        let position =
                            stmt.group_by
                                .iter()
                                .position(|g| g == other)
                                .ok_or_else(|| {
                                    SqlError::Unsupported(format!(
                                        "{other} must appear in GROUP BY or inside an aggregate"
                                    ))
                                })?;
                        output.push(OutputRef::Key(position));
                        output_names.push(key_names[position].clone());
                    }
                }
            }
            // ---- HAVING: each side must be a selected item or a literal ----
            let mut having = Vec::with_capacity(stmt.having.len());
            for pred in &stmt.having {
                let (item, op, literal) = match (&pred.left, &pred.right) {
                    (l, Expr::Literal(v)) => (l, pred.op, v.clone()),
                    (Expr::Literal(v), r) => (r, pred.op.flip(), v.clone()),
                    _ => {
                        return Err(SqlError::Unsupported(
                            "HAVING must compare a selected item with a literal".into(),
                        ))
                    }
                };
                let position = projections.iter().position(|p| p == item).ok_or_else(|| {
                    SqlError::Unsupported(format!("HAVING {item} must reference a selected item"))
                })?;
                let function = match op.filter_function() {
                    Some(f) => f.to_owned(),
                    None => "equal".to_owned(),
                };
                having.push((position, function, literal));
            }
            group = Some(GroupPlan {
                key_count,
                aggs,
                output,
                output_names,
                having,
            });
        } else {
            if !stmt.having.is_empty() {
                return Err(SqlError::Unsupported(
                    "HAVING without GROUP BY or aggregates".into(),
                ));
            }
            for proj in &projections {
                match proj {
                    Expr::Column { alias, column } => {
                        head.push(resolve_column_term(&mut self, alias, column)?);
                    }
                    Expr::Literal(v) => head.push(Term::Const(v.clone())),
                    Expr::Concat(_) => {
                        return Err(SqlError::Unsupported(
                            "expressions in SELECT list (project a column instead)".into(),
                        ))
                    }
                    Expr::Aggregate { .. } => {
                        unreachable!("aggregates imply is_grouped")
                    }
                }
            }
        }

        // Substitute roots/constants into atom inputs. Outputs stay
        // variables (root representatives); output slots whose class holds
        // a constant or that collide with an already-produced variable are
        // handled during ordering below.
        let mut atoms = std::mem::take(&mut self.atoms);
        for atom in &mut atoms {
            for term in &mut atom.inputs {
                if let Term::Var(v) = term {
                    let root = self.find(*v);
                    *term = match self.vars[root].constant.clone() {
                        Some(c) => Term::Const(c),
                        None => Term::Var(root),
                    };
                }
            }
            for v in &mut atom.outputs {
                *v = self.find(*v);
            }
        }

        if self.contradiction {
            // An unsatisfiable conjunction: prepend an always-false filter.
            atoms.insert(
                0,
                Atom {
                    function: "equal".into(),
                    kind: ViewKind::HelpingFunction,
                    inputs: vec![Term::Const(Value::Int(0)), Term::Const(Value::Int(1))],
                    outputs: vec![],
                },
            );
        }

        // ---- order greedily by bound inputs -------------------------------
        let mut ordered: Vec<Atom> = Vec::with_capacity(atoms.len());
        let mut bound: Vec<VarId> = Vec::new();
        let mut remaining: Vec<Atom> = atoms;
        while !remaining.is_empty() {
            // The paper's "simple heuristic web service cost model": web
            // service operations are expensive, so among the placeable
            // atoms prefer local helping functions (filters, concat) and
            // break ties by original query order.
            let pos = remaining
                .iter()
                .enumerate()
                .filter(|(_, atom)| atom.input_vars().all(|v| bound.contains(&v)))
                .min_by_key(|(i, atom)| (atom.is_owf(), *i))
                .map(|(i, _)| i);
            let Some(pos) = pos else {
                let views: Vec<String> = remaining.iter().map(|a| a.function.clone()).collect();
                return Err(SqlError::UnboundInputs { views });
            };
            let mut atom = remaining.remove(pos);

            // Output slots that collide with an already-bound variable or a
            // constant become fresh variables plus equal-filters.
            let mut filters = Vec::new();
            for out in &mut atom.outputs {
                let root = *out;
                let const_binding = self.vars[root].constant.clone();
                if let Some(c) = const_binding {
                    let fresh = self.fresh_var(self.vars[root].name.clone());
                    filters.push(Atom {
                        function: "equal".into(),
                        kind: ViewKind::HelpingFunction,
                        inputs: vec![Term::Const(c), Term::Var(fresh)],
                        outputs: vec![],
                    });
                    // Later consumers of this class read the constant, so
                    // rebinding the slot to a fresh var is safe.
                    *out = fresh;
                    bound.push(fresh);
                } else if bound.contains(&root) {
                    let fresh = self.vars[root].name.clone();
                    let fresh = self.fresh_var(fresh);
                    filters.push(Atom {
                        function: "equal".into(),
                        kind: ViewKind::HelpingFunction,
                        inputs: vec![Term::Var(root), Term::Var(fresh)],
                        outputs: vec![],
                    });
                    *out = fresh;
                    bound.push(fresh);
                } else {
                    bound.push(root);
                }
            }
            ordered.push(atom);
            ordered.extend(filters);
        }

        let var_names = self
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| v.name.clone().unwrap_or_else(|| format!("v{i}")))
            .collect();

        // ---- ORDER BY: each key must be a selected expression -------------
        if matches!(projection, Projection::CountStar) && !stmt.order_by.is_empty() {
            return Err(SqlError::Unsupported(
                "ORDER BY with COUNT(*) (the result is a single row)".into(),
            ));
        }
        let mut order_by = Vec::with_capacity(stmt.order_by.len());
        for item in &stmt.order_by {
            let position = projections
                .iter()
                .position(|p| p == &item.expr)
                .ok_or_else(|| {
                    SqlError::Unsupported(format!(
                        "ORDER BY {} must reference a selected column",
                        item.expr
                    ))
                })?;
            order_by.push((position, item.desc));
        }

        Ok(CalculusExpr {
            head,
            atoms: ordered,
            var_count: self.vars.len(),
            var_names,
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit.map(|n| n as usize),
            count: matches!(projection, Projection::CountStar),
            group,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MapCatalog, ViewDef};
    use crate::parser::parse_select;
    use wsmed_store::SqlType;

    /// Builds a catalog with the paper's four OWF views plus helpers.
    pub fn paper_catalog() -> MapCatalog {
        let mut cat = MapCatalog::with_helping_functions();
        cat.add(ViewDef {
            name: "GetAllStates".into(),
            kind: ViewKind::Owf,
            inputs: vec![],
            outputs: vec![
                ("Name".into(), SqlType::Charstring),
                ("Type".into(), SqlType::Charstring),
                ("State".into(), SqlType::Charstring),
                ("LatDegrees".into(), SqlType::Real),
                ("LonDegrees".into(), SqlType::Real),
                ("LatRadians".into(), SqlType::Real),
                ("LonRadians".into(), SqlType::Real),
            ],
        });
        cat.add(ViewDef {
            name: "GetPlacesWithin".into(),
            kind: ViewKind::Owf,
            inputs: vec![
                ("place".into(), SqlType::Charstring),
                ("state".into(), SqlType::Charstring),
                ("distance".into(), SqlType::Real),
                ("placeTypeToFind".into(), SqlType::Charstring),
            ],
            outputs: vec![
                ("ToPlace".into(), SqlType::Charstring),
                ("ToState".into(), SqlType::Charstring),
                ("Distance".into(), SqlType::Real),
            ],
        });
        cat.add(ViewDef {
            name: "GetPlaceList".into(),
            kind: ViewKind::Owf,
            inputs: vec![
                ("placeName".into(), SqlType::Charstring),
                ("MaxItems".into(), SqlType::Integer),
                ("imagePresence".into(), SqlType::Boolean),
            ],
            outputs: vec![
                ("placename".into(), SqlType::Charstring),
                ("state".into(), SqlType::Charstring),
                ("country".into(), SqlType::Charstring),
                ("placeLat".into(), SqlType::Real),
                ("placeLon".into(), SqlType::Real),
                ("availableThemeMask".into(), SqlType::Integer),
                ("placeTypeId".into(), SqlType::Integer),
                ("population".into(), SqlType::Integer),
            ],
        });
        cat.add(ViewDef {
            name: "GetInfoByState".into(),
            kind: ViewKind::Owf,
            inputs: vec![("USState".into(), SqlType::Charstring)],
            outputs: vec![("GetInfoByStateResult".into(), SqlType::Charstring)],
        });
        cat.add(ViewDef {
            name: "GetPlacesInside".into(),
            kind: ViewKind::Owf,
            inputs: vec![("zip".into(), SqlType::Charstring)],
            outputs: vec![
                ("ToPlace".into(), SqlType::Charstring),
                ("ToState".into(), SqlType::Charstring),
                ("Distance".into(), SqlType::Real),
            ],
        });
        cat
    }

    const QUERY1: &str = "\
        Select gl.placename, gl.state \
        From GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl \
        Where gs.State=gp.state and gp.distance=15.0 \
          and gp.placeTypeToFind='City' and gp.place='Atlanta' \
          and gl.placeName=gp.ToPlace+', '+gp.ToState \
          and gl.MaxItems=100 and gl.imagePresence='true'";

    const QUERY2: &str = "\
        select gp.ToState, gp.zip \
        From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
        Where gs.State=gi.USState and gi.GetInfoByStateResult=gc.zipstr \
          and gc.zipcode=gp.zip and gp.ToPlace='USAF Academy'";

    #[test]
    fn query1_calculus_matches_paper_shape() {
        let stmt = parse_select(QUERY1).unwrap();
        let calc = generate_calculus(&stmt, &paper_catalog()).unwrap();
        let functions: Vec<&str> = calc.atoms.iter().map(|a| a.function.as_str()).collect();
        assert_eq!(
            functions,
            vec!["GetAllStates", "GetPlacesWithin", "concat3", "GetPlaceList"]
        );
        assert_eq!(calc.first_ordering_violation(), None);
        // GetPlacesWithin's inputs: 'Atlanta', st, 15.0, 'City' — exactly
        // the paper's calculus (§IV).
        let gpw = &calc.atoms[1];
        assert_eq!(gpw.inputs[0], Term::Const(Value::str("Atlanta")));
        assert!(matches!(gpw.inputs[1], Term::Var(_)));
        assert_eq!(gpw.inputs[2], Term::Const(Value::Real(15.0)));
        assert_eq!(gpw.inputs[3], Term::Const(Value::str("City")));
        // GetPlaceList's first input is the concat result variable.
        let gpl = &calc.atoms[3];
        assert_eq!(gpl.inputs[1], Term::Const(Value::Int(100)));
        assert_eq!(gpl.inputs[2], Term::Const(Value::str("true")));
        assert_eq!(gpl.inputs[0].var(), calc.atoms[2].outputs.first().copied());
        // Head projects GetPlaceList outputs.
        assert_eq!(calc.head.len(), 2);
        assert!(calc.head.iter().all(|t| matches!(t, Term::Var(_))));
    }

    #[test]
    fn query2_calculus_matches_paper_shape() {
        let stmt = parse_select(QUERY2).unwrap();
        let calc = generate_calculus(&stmt, &paper_catalog()).unwrap();
        let functions: Vec<&str> = calc.atoms.iter().map(|a| a.function.as_str()).collect();
        // equal('USAF Academy', ToPlace) is a post-filter after
        // GetPlacesInside, exactly as in Fig. 10.
        assert_eq!(
            functions,
            vec![
                "GetAllStates",
                "GetInfoByState",
                "getzipcode",
                "GetPlacesInside",
                "equal"
            ]
        );
        assert_eq!(calc.first_ordering_violation(), None);
        let filter = &calc.atoms[4];
        assert!(filter
            .inputs
            .contains(&Term::Const(Value::str("USAF Academy"))));
        assert!(filter.outputs.is_empty());
    }

    #[test]
    fn display_resembles_paper_notation() {
        let stmt = parse_select(QUERY2).unwrap();
        let calc = generate_calculus(&stmt, &paper_catalog()).unwrap();
        let s = calc.to_string();
        assert!(
            s.starts_with("Query(tostate, zipcode) :- GetAllStates("),
            "{s}"
        );
        assert!(s.contains("GetPlacesInside(zipcode ->"), "{s}");
        assert!(s.contains("equal("), "{s}");
    }

    #[test]
    fn unknown_view_is_error() {
        let stmt = parse_select("select a.x from Mystery a").unwrap();
        assert!(matches!(
            generate_calculus(&stmt, &paper_catalog()).unwrap_err(),
            SqlError::UnknownName(_)
        ));
    }

    #[test]
    fn unknown_column_is_error() {
        let stmt = parse_select("select gs.Bogus from GetAllStates gs").unwrap();
        assert!(matches!(
            generate_calculus(&stmt, &paper_catalog()).unwrap_err(),
            SqlError::UnknownColumn { .. }
        ));
    }

    #[test]
    fn duplicate_alias_is_error() {
        let stmt = parse_select("select g.State from GetAllStates g, GetAllStates g").unwrap();
        assert!(matches!(
            generate_calculus(&stmt, &paper_catalog()).unwrap_err(),
            SqlError::DuplicateAlias(_)
        ));
    }

    #[test]
    fn unbindable_inputs_is_error() {
        // GetPlacesInside's zip input is never bound.
        let stmt = parse_select("select gp.ToPlace from GetPlacesInside gp").unwrap();
        match generate_calculus(&stmt, &paper_catalog()).unwrap_err() {
            SqlError::UnboundInputs { views } => {
                assert_eq!(views, vec!["GetPlacesInside".to_owned()])
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contradictory_constants_become_false_filter() {
        let stmt = parse_select(
            "select gp.ToPlace from GetPlacesInside gp where gp.zip='1' and gp.zip='2'",
        )
        .unwrap();
        let calc = generate_calculus(&stmt, &paper_catalog()).unwrap();
        assert_eq!(calc.atoms[0].function, "equal");
        assert_eq!(
            calc.atoms[0].inputs,
            vec![Term::Const(Value::Int(0)), Term::Const(Value::Int(1))]
        );
    }

    #[test]
    fn output_output_join_becomes_filter() {
        // Joining two output columns cannot bind anything; it checks.
        let stmt = parse_select(
            "select gp.ToPlace from GetPlacesInside gp, GetAllStates gs \
             where gp.zip='80840' and gp.ToState=gs.State",
        )
        .unwrap();
        let calc = generate_calculus(&stmt, &paper_catalog()).unwrap();
        assert!(calc
            .atoms
            .iter()
            .any(|a| a.function == "equal" && a.inputs.iter().all(|t| matches!(t, Term::Var(_)))));
        assert_eq!(calc.first_ordering_violation(), None);
    }

    #[test]
    fn constant_on_join_propagates_to_both_sides() {
        // gs.State = gi.USState and gi.USState = 'CO' binds both slots.
        let stmt = parse_select(
            "select gi.GetInfoByStateResult from GetInfoByState gi where gi.USState='CO'",
        )
        .unwrap();
        let calc = generate_calculus(&stmt, &paper_catalog()).unwrap();
        assert_eq!(calc.atoms[0].inputs[0], Term::Const(Value::str("CO")));
    }

    #[test]
    fn projecting_an_input_column_works() {
        // Query2 projects gp.zip — an *input* of GetPlacesInside.
        let stmt = parse_select(QUERY2).unwrap();
        let calc = generate_calculus(&stmt, &paper_catalog()).unwrap();
        // zip's variable is getzipcode's output, which is bound before
        // GetPlacesInside runs.
        let zip_term = &calc.head[1];
        let zip_var = zip_term.var().expect("zip is a variable");
        let producer = calc
            .atoms
            .iter()
            .position(|a| a.outputs.contains(&zip_var))
            .expect("zip var is produced");
        assert_eq!(calc.atoms[producer].function, "getzipcode");
    }
}
