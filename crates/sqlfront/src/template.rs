//! Parameterized SQL templates for workload generation.
//!
//! A template is ordinary WSMED SQL with `{name}` placeholders standing in
//! for literal values; [`SqlTemplate::render`] substitutes bound values as
//! properly quoted SQL literals (via [`crate::sql_literal`], so embedded
//! quotes cannot break out of the literal). Traffic generators draw the
//! parameter values from popularity distributions and render one concrete
//! query per arrival, which keeps the workload's *shape* (the template)
//! separate from its *population* (the parameter draws).

use std::collections::BTreeMap;

use wsmed_store::Value;

use crate::ast::sql_literal;
use crate::{SqlError, SqlResult};

/// A SQL text with named `{placeholder}` slots for literal parameters.
///
/// ```
/// use wsmed_sql::SqlTemplate;
/// use wsmed_store::Value;
///
/// let t = SqlTemplate::parse("select a from V where V.s={state}").unwrap();
/// assert_eq!(t.placeholders(), ["state"]);
/// let sql = t.render(&[("state", Value::str("CO"))]).unwrap();
/// assert_eq!(sql, "select a from V where V.s='CO'");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SqlTemplate {
    /// Literal text segments; `parts[i]` precedes `slots[i]`, and the
    /// final part follows the last slot.
    parts: Vec<String>,
    /// Placeholder names, in appearance order (duplicates allowed — the
    /// same binding fills every occurrence).
    slots: Vec<String>,
}

impl SqlTemplate {
    /// Parses a template: `{name}` marks a slot, where `name` is one or
    /// more alphanumeric/underscore characters. Braces that do not form a
    /// well-formed placeholder are an error (templates are hand-written;
    /// silent literal braces would hide typos).
    pub fn parse(text: &str) -> SqlResult<SqlTemplate> {
        let mut parts = Vec::new();
        let mut slots = Vec::new();
        let mut current = String::new();
        let mut chars = text.char_indices();
        while let Some((pos, c)) = chars.next() {
            match c {
                '{' => {
                    let mut name = String::new();
                    loop {
                        match chars.next() {
                            Some((_, '}')) => break,
                            Some((_, c)) if c.is_ascii_alphanumeric() || c == '_' => name.push(c),
                            _ => {
                                return Err(SqlError::Unsupported(format!(
                                    "malformed template placeholder at byte {pos}"
                                )))
                            }
                        }
                    }
                    if name.is_empty() {
                        return Err(SqlError::Unsupported(format!(
                            "empty template placeholder at byte {pos}"
                        )));
                    }
                    parts.push(std::mem::take(&mut current));
                    slots.push(name);
                }
                '}' => {
                    return Err(SqlError::Unsupported(format!(
                        "unmatched '}}' at byte {pos} in template"
                    )))
                }
                c => current.push(c),
            }
        }
        parts.push(current);
        Ok(SqlTemplate { parts, slots })
    }

    /// The distinct placeholder names, in first-appearance order.
    pub fn placeholders(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for slot in &self.slots {
            if !seen.contains(&slot.as_str()) {
                seen.push(slot.as_str());
            }
        }
        seen
    }

    /// Renders the template with every placeholder bound. Values are
    /// substituted as SQL literals (strings quoted and escaped). Unbound
    /// placeholders are an error; extra bindings are ignored.
    pub fn render(&self, bindings: &[(&str, Value)]) -> SqlResult<String> {
        let map: BTreeMap<&str, &Value> = bindings.iter().map(|(k, v)| (*k, v)).collect();
        let mut out = String::new();
        for (i, part) in self.parts.iter().enumerate() {
            out.push_str(part);
            if let Some(slot) = self.slots.get(i) {
                let value = map.get(slot.as_str()).ok_or_else(|| {
                    SqlError::Unsupported(format!("template placeholder {{{slot}}} is unbound"))
                })?;
                out.push_str(&sql_literal(value));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_literals_with_quoting() {
        let t = SqlTemplate::parse("where a.s={state} and a.d={dist}").unwrap();
        let sql = t
            .render(&[("state", Value::str("O'Hare")), ("dist", Value::Real(15.0))])
            .unwrap();
        assert_eq!(sql, "where a.s='O''Hare' and a.d=15.0");
    }

    #[test]
    fn repeated_placeholder_fills_every_occurrence() {
        let t = SqlTemplate::parse("{x} + {x}").unwrap();
        assert_eq!(t.placeholders(), ["x"]);
        assert_eq!(t.render(&[("x", Value::Int(3))]).unwrap(), "3 + 3");
    }

    #[test]
    fn unbound_placeholder_is_an_error() {
        let t = SqlTemplate::parse("v={x}").unwrap();
        assert!(t.render(&[]).is_err());
    }

    #[test]
    fn template_without_placeholders_is_identity() {
        let text = "select a from V";
        let t = SqlTemplate::parse(text).unwrap();
        assert!(t.placeholders().is_empty());
        assert_eq!(t.render(&[]).unwrap(), text);
    }

    #[test]
    fn malformed_placeholders_are_rejected() {
        assert!(SqlTemplate::parse("a{").is_err());
        assert!(SqlTemplate::parse("a}").is_err());
        assert!(SqlTemplate::parse("a{}b").is_err());
        assert!(SqlTemplate::parse("a{x y}b").is_err());
    }
}
