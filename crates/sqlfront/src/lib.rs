#![deny(missing_docs)]

//! # wsmed-sql
//!
//! The SQL frontend of WSMED (paper §IV, Fig. 5): queries are written in
//! SQL over the automatically generated OWF views, and the *calculus
//! generator* turns them into an internal calculus expression in a Datalog
//! dialect with binding-pattern adornments:
//!
//! ```text
//! Query1(pl,st) :- GetAllStates() AND
//!                  GetPlacesWithin('Atlanta', st1, 15.0, 'City') AND
//!                  GetPlaceList(_, 100, 'true')
//! ```
//!
//! The supported subset is exactly what the paper's queries need —
//! `SELECT` qualified columns `FROM` view list (with aliases) `WHERE` a
//! conjunction of equality predicates whose sides are columns, literals, or
//! `+`-concatenations of both.
//!
//! The important piece is [`generate_calculus`]: it resolves columns to
//! view *input* (`-`) or *output* (`+`) positions, unifies join variables,
//! introduces helping-function atoms (`concat`, `equal`) for expressions
//! and output filters, and orders the atoms so every atom's inputs are
//! bound before it runs — the classic *limited access pattern* ordering of
//! dependent joins (paper §II, reference \[7\]).

mod ast;
mod calculus;
mod catalog;
mod error;
mod lexer;
mod parser;
mod resolver;
mod template;

pub use ast::{
    sql_literal, AggFunc, CompareOp, Expr, OrderItem, Predicate, Projection, SelectStmt, TableRef,
};
pub use calculus::{Atom, CalculusExpr, GroupPlan, OutputRef, Term, VarId};
pub use catalog::{Catalog, MapCatalog, ViewDef, ViewKind};
pub use error::{SqlError, SqlResult};
pub use lexer::{tokenize, Token};
pub use parser::parse_select;
pub use resolver::generate_calculus;
pub use template::SqlTemplate;
