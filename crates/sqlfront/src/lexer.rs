//! SQL lexer for the supported subset.

use crate::{SqlError, SqlResult};

/// A lexical token. Keywords are case-insensitive and normalized upper-case.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `SELECT`, `FROM`, `WHERE`, `AND`, `AS`.
    Keyword(&'static str),
    /// An identifier, case-preserved.
    Ident(String),
    /// A single-quoted string literal with `''` escapes resolved.
    StringLit(String),
    /// A numeric literal containing a decimal point.
    RealLit(f64),
    /// An integer literal.
    IntLit(i64),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>`
    Ne,
    /// `+`
    Plus,
    /// `-` (unary minus on numeric literals)
    Minus,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "AS", "ORDER", "BY", "LIMIT", "ASC", "DESC", "DISTINCT",
    "GROUP", "HAVING",
];

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            b'>' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Ge);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            },
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'\'' => {
                let mut value = String::new();
                let start = i;
                i += 1;
                let mut segment_start = i;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            value.push_str(&input[segment_start..i]);
                            value.push('\'');
                            i += 2;
                            segment_start = i;
                        }
                        Some(b'\'') => {
                            value.push_str(&input[segment_start..i]);
                            i += 1;
                            break;
                        }
                        Some(_) => i += 1,
                        None => {
                            return Err(SqlError::Lex {
                                position: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token::StringLit(value));
            }
            b'0'..=b'9' => {
                let start = i;
                let mut saw_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !saw_dot))
                {
                    // A dot only continues the number if a digit follows
                    // (so `gp.state` after a number still lexes).
                    if bytes[i] == b'.' {
                        if !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                            break;
                        }
                        saw_dot = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if saw_dot {
                    let v = text.parse::<f64>().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad real literal {text:?}"),
                    })?;
                    tokens.push(Token::RealLit(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad integer literal {text:?}"),
                    })?;
                    tokens.push(Token::IntLit(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if let Some(kw) = KEYWORDS.iter().find(|&&k| k == upper) {
                    tokens.push(Token::Keyword(kw));
                } else {
                    tokens.push(Token::Ident(word.to_owned()));
                }
            }
            other => {
                return Err(SqlError::Lex {
                    position: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("Select froM wHere AND").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT"),
                Token::Keyword("FROM"),
                Token::Keyword("WHERE"),
                Token::Keyword("AND"),
            ]
        );
    }

    #[test]
    fn qualified_column_and_literals() {
        let toks = tokenize("gp.distance=15.0 and gl.MaxItems=100").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("gp".into()),
                Token::Dot,
                Token::Ident("distance".into()),
                Token::Eq,
                Token::RealLit(15.0),
                Token::Keyword("AND"),
                Token::Ident("gl".into()),
                Token::Dot,
                Token::Ident("MaxItems".into()),
                Token::Eq,
                Token::IntLit(100),
            ]
        );
    }

    #[test]
    fn string_literal_with_escape() {
        let toks = tokenize("'Atlanta' ', ' 'O''Hare'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::StringLit("Atlanta".into()),
                Token::StringLit(", ".into()),
                Token::StringLit("O'Hare".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(
            tokenize("'oops").unwrap_err(),
            SqlError::Lex { .. }
        ));
    }

    #[test]
    fn number_dot_ident_disambiguation() {
        // `15.x` must lex as IntLit(15), Dot, Ident(x) — not a real literal.
        let toks = tokenize("15.x").unwrap();
        assert_eq!(
            toks,
            vec![Token::IntLit(15), Token::Dot, Token::Ident("x".into())]
        );
    }

    #[test]
    fn plus_and_commas() {
        let toks = tokenize("a + b, c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Plus,
                Token::Ident("b".into()),
                Token::Comma,
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn unexpected_char_is_error() {
        let err = tokenize("a ; b").unwrap_err();
        assert!(matches!(err, SqlError::Lex { position: 2, .. }));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a.x < 1 and a.y >= 2 and a.z <> 'q'").unwrap();
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Ne));
        assert_eq!(tokenize("<=").unwrap(), vec![Token::Le]);
        assert_eq!(tokenize(">").unwrap(), vec![Token::Gt]);
    }

    #[test]
    fn order_limit_keywords() {
        let toks = tokenize("order by limit asc desc distinct").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("ORDER"),
                Token::Keyword("BY"),
                Token::Keyword("LIMIT"),
                Token::Keyword("ASC"),
                Token::Keyword("DESC"),
                Token::Keyword("DISTINCT"),
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        let toks = tokenize("GetAllStates gs").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("GetAllStates".into()),
                Token::Ident("gs".into())
            ]
        );
    }
}
