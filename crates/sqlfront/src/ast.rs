//! Abstract syntax tree for the supported SQL subset.

use std::fmt;

use wsmed_store::Value;

/// A `FROM`-list item: a view (OWF or helping function) with its alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// View name, e.g. `GetPlacesWithin`.
    pub view: String,
    /// Alias, e.g. `gp`. Defaults to the view name when omitted.
    pub alias: String,
}

/// An aggregate function usable in the `SELECT` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — group cardinality (takes no argument).
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggFunc {
    /// SQL spelling, lower-case.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Parses an aggregate function name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        }
    }
}

/// A scalar expression: a qualified column, a literal, a
/// `+`-concatenation chain, or (in `SELECT` lists only) an aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `alias.column`.
    Column {
        /// Table alias.
        alias: String,
        /// Column name.
        column: String,
    },
    /// A literal value (`'Atlanta'`, `15.0`, `100`).
    Literal(Value),
    /// `a + b + c` — string concatenation, as in
    /// `gl.placeName = gp.ToPlace + ', ' + gp.ToState`.
    Concat(Vec<Expr>),
    /// `count(*)` / `sum(a.x)` / … — only valid in the `SELECT` list.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The argument column (`None` only for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
}

impl fmt::Display for Expr {
    /// Renders as parseable SQL: string literals single-quoted with `''`
    /// escapes, reals always with a decimal point.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { alias, column } => write!(f, "{alias}.{column}"),
            Expr::Literal(v) => write!(f, "{}", sql_literal(v)),
            Expr::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Expr::Aggregate { func, arg } => match arg {
                Some(arg) => write!(f, "{}({arg})", func.sql()),
                None => write!(f, "{}(*)", func.sql()),
            },
        }
    }
}

/// Renders a literal value as SQL source text.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Real(r) => {
            let text = format!("{r}");
            if text.contains('.') || text.contains('e') {
                text
            } else {
                format!("{text}.0")
            }
        }
        other => other.render(),
    }
}

/// A comparison operator in a `WHERE` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=` — the only operator that can *bind* web service inputs.
    Eq,
    /// `<>` — a post-filter.
    Ne,
    /// `<` — a post-filter.
    Lt,
    /// `<=` — a post-filter.
    Le,
    /// `>` — a post-filter.
    Gt,
    /// `>=` — a post-filter.
    Ge,
}

impl CompareOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CompareOp {
        match self {
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
            other => other,
        }
    }

    /// Name of the helping function implementing this as a filter
    /// (`Eq` binds instead of filtering, so it has none).
    pub fn filter_function(self) -> Option<&'static str> {
        match self {
            CompareOp::Eq => None,
            CompareOp::Ne => Some("ne"),
            CompareOp::Lt => Some("lt"),
            CompareOp::Le => Some("le"),
            CompareOp::Gt => Some("gt"),
            CompareOp::Ge => Some("ge"),
        }
    }
}

/// A predicate in the `WHERE` conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left-hand side.
    pub left: Expr,
    /// Comparison operator.
    pub op: CompareOp,
    /// Right-hand side.
    pub right: Expr,
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op.sql(), self.right)
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The ordered expression (must appear in the `SELECT` list).
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// What the `SELECT` clause projects.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// An explicit expression list.
    Exprs(Vec<Expr>),
    /// `SELECT *` — every column of every `FROM` view, in declaration order.
    Star,
    /// `SELECT COUNT(*)` — the number of result rows.
    CountStar,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The projection clause.
    pub projection: Projection,
    /// The `FROM` list.
    pub from: Vec<TableRef>,
    /// Conjunctive `WHERE` predicates (empty when absent).
    pub predicates: Vec<Predicate>,
    /// `GROUP BY` columns (empty when absent).
    pub group_by: Vec<Expr>,
    /// `HAVING` predicates over the grouped output (empty when absent).
    pub having: Vec<Predicate>,
    /// `ORDER BY` items (empty when absent).
    pub order_by: Vec<OrderItem>,
    /// `LIMIT`, when present.
    pub limit: Option<u64>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.projection {
            Projection::Star => write!(f, "*")?,
            Projection::CountStar => write!(f, "count(*)")?,
            Projection::Exprs(exprs) => {
                for (i, p) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", t.view, t.alias)?;
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if !self.having.is_empty() {
            write!(f, " HAVING ")?;
            for (i, p) in self.having.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", item.expr, if item.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_shape() {
        let stmt = SelectStmt {
            projection: Projection::Exprs(vec![Expr::Column {
                alias: "gl".into(),
                column: "placename".into(),
            }]),
            from: vec![TableRef {
                view: "GetPlaceList".into(),
                alias: "gl".into(),
            }],
            predicates: vec![Predicate {
                left: Expr::Column {
                    alias: "gl".into(),
                    column: "MaxItems".into(),
                },
                op: CompareOp::Eq,
                right: Expr::Literal(Value::Int(100)),
            }],
            distinct: false,
            group_by: vec![],
            having: vec![],
            order_by: vec![],
            limit: None,
        };
        let s = stmt.to_string();
        assert_eq!(
            s,
            "SELECT gl.placename FROM GetPlaceList gl WHERE gl.MaxItems = 100"
        );
    }

    #[test]
    fn concat_display() {
        let e = Expr::Concat(vec![
            Expr::Column {
                alias: "gp".into(),
                column: "ToPlace".into(),
            },
            Expr::Literal(Value::str(", ")),
            Expr::Column {
                alias: "gp".into(),
                column: "ToState".into(),
            },
        ]);
        assert_eq!(e.to_string(), "gp.ToPlace + ', ' + gp.ToState");
    }
}
