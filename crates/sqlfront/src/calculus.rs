//! The Datalog-dialect calculus representation (paper §IV).
//!
//! A query becomes a conjunction of *atoms*, each a call to an OWF or a
//! helping function with adorned arguments: input terms must be bound when
//! the atom executes (`-`), output variables become bound by executing it
//! (`+`). The calculus is ordered: every atom's inputs are constants or
//! variables produced by an earlier atom, which is exactly the dependency
//! chain the parallelizer later splits into plan functions.

use std::fmt;

use wsmed_store::Value;

use crate::ast::AggFunc;
use crate::catalog::ViewKind;

/// A calculus variable, identified by index.
pub type VarId = usize;

/// An argument term: a variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A variable.
    Var(VarId),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// The variable id, if this is a variable.
    pub fn var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

/// One conjunct: a function call with input terms and output variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// OWF or helping-function name (`GetPlacesWithin`, `concat3`, `equal`).
    pub function: String,
    /// Whether this atom calls a web service (OWF) or is a local function.
    pub kind: ViewKind,
    /// Input terms, in the function's parameter order.
    pub inputs: Vec<Term>,
    /// Output variables, in the function's result-column order.
    pub outputs: Vec<VarId>,
}

impl Atom {
    /// True if this atom invokes a web service operation.
    pub fn is_owf(&self) -> bool {
        self.kind == ViewKind::Owf
    }

    /// Variables appearing in input position.
    pub fn input_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.inputs.iter().filter_map(Term::var)
    }
}

/// A complete ordered calculus expression.
#[derive(Debug, Clone, PartialEq)]
pub struct CalculusExpr {
    /// Head (projection) terms, in `SELECT` order.
    pub head: Vec<Term>,
    /// Conjuncts in execution order (inputs always bound by predecessors).
    pub atoms: Vec<Atom>,
    /// Total number of variables allocated.
    pub var_count: usize,
    /// Display names per variable (derived from column names).
    pub var_names: Vec<String>,
    /// `SELECT DISTINCT`: deduplicate the head tuples.
    pub distinct: bool,
    /// `ORDER BY`: `(head position, descending)` keys, applied in order.
    pub order_by: Vec<(usize, bool)>,
    /// `LIMIT`: cap on the number of head tuples returned.
    pub limit: Option<usize>,
    /// `SELECT COUNT(*)`: collapse the head tuples into a single count.
    pub count: bool,
    /// `GROUP BY` / aggregate plan, when the query aggregates.
    pub group: Option<GroupPlan>,
}

/// How an aggregating query groups and what it computes.
///
/// The head of the calculus is laid out as *group keys* followed by the
/// *aggregate argument columns*; the grouping operator emits keys followed
/// by aggregate values, and [`GroupPlan::output`] maps that back to the
/// original `SELECT` order.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPlan {
    /// Number of leading head terms that are group keys.
    pub key_count: usize,
    /// Aggregates: function plus the head position of its argument
    /// (`None` for `COUNT(*)`).
    pub aggs: Vec<(AggFunc, Option<usize>)>,
    /// The `SELECT`-order output: keys and aggregates interleaved.
    pub output: Vec<OutputRef>,
    /// `HAVING` filters over the SELECT-order output:
    /// `(output position, filter function name, literal)`.
    pub having: Vec<(usize, String, Value)>,
    /// Output column names, in `SELECT` order.
    pub output_names: Vec<String>,
}

/// One output column of a grouped query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputRef {
    /// The i-th group key.
    Key(usize),
    /// The j-th aggregate.
    Agg(usize),
}

impl CalculusExpr {
    /// The variables each atom's execution makes available, cumulatively.
    /// Entry `i` is the bound set *after* atom `i` runs.
    pub fn bound_after(&self) -> Vec<Vec<VarId>> {
        let mut bound: Vec<VarId> = Vec::new();
        let mut result = Vec::with_capacity(self.atoms.len());
        for atom in &self.atoms {
            for &v in &atom.outputs {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
            result.push(bound.clone());
        }
        result
    }

    /// Checks the ordering invariant: every atom's input variables are
    /// produced by an earlier atom. Returns the index of the first
    /// violating atom, if any.
    pub fn first_ordering_violation(&self) -> Option<usize> {
        let mut bound: Vec<VarId> = Vec::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            if atom.input_vars().any(|v| !bound.contains(&v)) {
                return Some(i);
            }
            bound.extend(&atom.outputs);
        }
        None
    }

    fn term_name(&self, term: &Term) -> String {
        match term {
            Term::Var(v) => self
                .var_names
                .get(*v)
                .cloned()
                .unwrap_or_else(|| format!("v{v}")),
            Term::Const(c) => c.to_string(),
        }
    }
}

impl fmt::Display for CalculusExpr {
    /// Renders in the paper's notation, e.g.
    /// `Query(pl, st) :- GetAllStates(-> _, _, st1, ...) AND ...`
    /// with `->` separating inputs from outputs and `_` for variables that
    /// are never consumed.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A variable is anonymous if it is neither consumed by any atom's
        // inputs nor projected.
        let mut used = vec![false; self.var_count];
        for atom in &self.atoms {
            for v in atom.input_vars() {
                used[v] = true;
            }
        }
        for t in &self.head {
            if let Term::Var(v) = t {
                used[*v] = true;
            }
        }

        write!(f, "Query(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.term_name(t))?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{}(", atom.function)?;
            for (j, t) in atom.inputs.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.term_name(t))?;
            }
            if !atom.outputs.is_empty() {
                write!(f, " -> ")?;
                for (j, v) in atom.outputs.iter().enumerate() {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    if used[*v] {
                        write!(f, "{}", self.var_names[*v])?;
                    } else {
                        write!(f, "_")?;
                    }
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr() -> CalculusExpr {
        CalculusExpr {
            distinct: false,
            order_by: vec![],
            limit: None,
            count: false,
            group: None,
            head: vec![Term::Var(1)],
            atoms: vec![
                Atom {
                    function: "GetAllStates".into(),
                    kind: ViewKind::Owf,
                    inputs: vec![],
                    outputs: vec![0],
                },
                Atom {
                    function: "GetInfoByState".into(),
                    kind: ViewKind::Owf,
                    inputs: vec![Term::Var(0)],
                    outputs: vec![1],
                },
            ],
            var_count: 2,
            var_names: vec!["st".into(), "zipstr".into()],
        }
    }

    #[test]
    fn ordering_invariant_holds() {
        assert_eq!(expr().first_ordering_violation(), None);
    }

    #[test]
    fn ordering_violation_detected() {
        let mut e = expr();
        e.atoms.swap(0, 1);
        assert_eq!(e.first_ordering_violation(), Some(0));
    }

    #[test]
    fn bound_after_accumulates() {
        let b = expr().bound_after();
        assert_eq!(b, vec![vec![0], vec![0, 1]]);
    }

    #[test]
    fn display_uses_names_and_anonymous() {
        let e = expr();
        let s = e.to_string();
        assert_eq!(
            s,
            "Query(zipstr) :- GetAllStates( -> st) AND GetInfoByState(st -> zipstr)"
        );
    }

    #[test]
    fn display_anonymous_for_unused_output() {
        let mut e = expr();
        e.head = vec![Term::Var(0)];
        let s = e.to_string();
        assert!(s.contains("-> _"), "{s}");
    }
}
