//! The view catalog the resolver consults.
//!
//! Views come in two kinds: OWF views of web service operations (columns =
//! input parameters ⊕ flattened output columns) and *helping functions*
//! (`getzipcode` in Query2), which also appear in the `FROM` list with
//! their parameters and results as columns.

use std::collections::HashMap;

use wsmed_store::SqlType;

/// What kind of view a name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// An operation wrapper function over a web service operation.
    Owf,
    /// A local helping function (pure, no web service call).
    HelpingFunction,
}

/// A view definition: the unit of resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// View name as used in `FROM`.
    pub name: String,
    /// OWF or helping function.
    pub kind: ViewKind,
    /// Input columns (must be bound by constants or other views' outputs).
    pub inputs: Vec<(String, SqlType)>,
    /// Output columns (produced by the function).
    pub outputs: Vec<(String, SqlType)>,
}

impl ViewDef {
    /// Finds a column, returning whether it is an input and its position.
    ///
    /// Lookup prefers an exact-case match (inputs, then outputs) and only
    /// then falls back to case-insensitive matching: SQL identifiers are
    /// traditionally case-insensitive (the paper writes `gp.state` for the
    /// input parameter `state`), but real services declare near-collisions
    /// like `GetPlacesWithin`'s input `distance` vs output `Distance`,
    /// which exact-case matching keeps distinguishable.
    pub fn column(&self, name: &str) -> Option<(bool, usize, SqlType)> {
        let find = |cols: &[(String, SqlType)], exact: bool| {
            cols.iter().position(|(n, _)| {
                if exact {
                    n == name
                } else {
                    n.eq_ignore_ascii_case(name)
                }
            })
        };
        if let Some(i) = find(&self.inputs, true) {
            return Some((true, i, self.inputs[i].1));
        }
        if let Some(i) = find(&self.outputs, true) {
            return Some((false, i, self.outputs[i].1));
        }
        if let Some(i) = find(&self.inputs, false) {
            return Some((true, i, self.inputs[i].1));
        }
        find(&self.outputs, false).map(|i| (false, i, self.outputs[i].1))
    }
}

/// Source of view definitions.
pub trait Catalog {
    /// Looks up a view by name (case-insensitive).
    fn view(&self, name: &str) -> Option<&ViewDef>;
}

/// A simple in-memory catalog.
#[derive(Debug, Clone, Default)]
pub struct MapCatalog {
    views: HashMap<String, ViewDef>,
}

impl MapCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        MapCatalog::default()
    }

    /// A catalog preloaded with the built-in helping functions that may
    /// appear in `FROM` lists (`getzipcode`).
    pub fn with_helping_functions() -> Self {
        let mut cat = MapCatalog::new();
        cat.add(ViewDef {
            name: "getzipcode".into(),
            kind: ViewKind::HelpingFunction,
            inputs: vec![("zipstr".into(), SqlType::Charstring)],
            outputs: vec![("zipcode".into(), SqlType::Charstring)],
        });
        cat
    }

    /// Adds (or replaces) a view.
    pub fn add(&mut self, view: ViewDef) {
        self.views.insert(view.name.to_ascii_lowercase(), view);
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// View names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.views.values().map(|v| v.name.as_str()).collect();
        names.sort();
        names
    }
}

impl Catalog for MapCatalog {
    fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ViewDef {
        ViewDef {
            name: "GetPlacesWithin".into(),
            kind: ViewKind::Owf,
            inputs: vec![
                ("place".into(), SqlType::Charstring),
                ("state".into(), SqlType::Charstring),
            ],
            outputs: vec![
                ("ToPlace".into(), SqlType::Charstring),
                ("Distance".into(), SqlType::Real),
            ],
        }
    }

    #[test]
    fn column_lookup_and_kind() {
        let v = sample();
        assert_eq!(v.column("place"), Some((true, 0, SqlType::Charstring)));
        assert_eq!(v.column("Distance"), Some((false, 1, SqlType::Real)));
        assert_eq!(v.column("STATE"), Some((true, 1, SqlType::Charstring)));
        assert_eq!(v.column("nope"), None);
    }

    #[test]
    fn exact_case_wins_over_case_insensitive() {
        // A view with an input/output near-collision, as GetPlacesWithin
        // really has (input `distance`, output `Distance`).
        let v = ViewDef {
            name: "V".into(),
            kind: ViewKind::Owf,
            inputs: vec![("distance".into(), SqlType::Real)],
            outputs: vec![("Distance".into(), SqlType::Real)],
        };
        assert_eq!(v.column("distance"), Some((true, 0, SqlType::Real)));
        assert_eq!(v.column("Distance"), Some((false, 0, SqlType::Real)));
        // No exact match: falls back to the first case-insensitive hit.
        assert_eq!(v.column("DISTANCE"), Some((true, 0, SqlType::Real)));
    }

    #[test]
    fn catalog_case_insensitive() {
        let mut cat = MapCatalog::new();
        cat.add(sample());
        assert!(cat.view("getplaceswithin").is_some());
        assert!(cat.view("GETPLACESWITHIN").is_some());
        assert!(cat.view("other").is_none());
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }

    #[test]
    fn helping_functions_preloaded() {
        let cat = MapCatalog::with_helping_functions();
        let v = cat.view("getzipcode").unwrap();
        assert_eq!(v.kind, ViewKind::HelpingFunction);
        assert_eq!(v.column("zipstr"), Some((true, 0, SqlType::Charstring)));
        assert_eq!(v.column("zipcode"), Some((false, 0, SqlType::Charstring)));
    }
}
