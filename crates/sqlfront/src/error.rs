//! SQL frontend errors.

use std::fmt;

/// Result alias for SQL operations.
pub type SqlResult<T> = Result<T, SqlError>;

/// Errors from lexing, parsing, resolution or calculus generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error at a byte position.
    Lex {
        /// Byte offset into the query text.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error.
    Parse {
        /// What the parser expected / found.
        message: String,
    },
    /// An unknown view or alias.
    UnknownName(String),
    /// A column that no view in scope provides.
    UnknownColumn {
        /// Alias it was qualified with.
        alias: String,
        /// Column name.
        column: String,
    },
    /// Duplicate alias in the FROM list.
    DuplicateAlias(String),
    /// The query cannot be ordered: some view's inputs can never be bound.
    UnboundInputs {
        /// Views whose inputs remained unbound.
        views: Vec<String>,
    },
    /// Something about the query shape is outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lexical error at byte {position}: {message}")
            }
            SqlError::Parse { message } => write!(f, "parse error: {message}"),
            SqlError::UnknownName(name) => write!(f, "unknown view or alias {name:?}"),
            SqlError::UnknownColumn { alias, column } => {
                write!(f, "view {alias:?} has no column {column:?}")
            }
            SqlError::DuplicateAlias(alias) => write!(f, "duplicate alias {alias:?}"),
            SqlError::UnboundInputs { views } => write!(
                f,
                "query is not executable: inputs of {views:?} can never be bound \
                 (every web service input must be a constant or another view's output)"
            ),
            SqlError::Unsupported(msg) => write!(f, "unsupported SQL: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SqlError::UnknownName("gp".into())
            .to_string()
            .contains("gp"));
        assert!(SqlError::UnboundInputs {
            views: vec!["GetPlaceList".into()]
        }
        .to_string()
        .contains("GetPlaceList"));
        assert!(SqlError::Lex {
            position: 3,
            message: "bad char".into()
        }
        .to_string()
        .contains("byte 3"));
    }
}
