//! Renders a [`WsdlDocument`] back to WSDL XML.
//!
//! The simulated providers in `wsmed-services` build their contracts as
//! [`WsdlDocument`] values and publish them through this writer; the
//! mediator then imports them through [`crate::parse_wsdl`], exactly as
//! WSMED read real providers' WSDL in the paper. Keeping writer and parser
//! in one crate lets tests assert full round-trips.

use wsmed_xml::Element;

use crate::{OperationDef, TypeNode, WsdlDocument};

impl WsdlDocument {
    /// Serializes this document as WSDL XML (pretty-printed).
    pub fn to_xml_string(&self) -> String {
        self.to_element().to_pretty_xml()
    }

    /// Builds the `<definitions>` element tree.
    pub fn to_element(&self) -> Element {
        let mut schema =
            Element::new("s:schema").with_attr("targetNamespace", &self.target_namespace);
        for op in &self.operations {
            schema.children.push(input_element(op));
            schema.children.push(type_node_element(&op.output));
        }

        let mut definitions = Element::new("wsdl:definitions")
            .with_attr("name", &self.service_name)
            .with_attr("targetNamespace", &self.target_namespace)
            .with_attr("xmlns:wsdl", "http://schemas.xmlsoap.org/wsdl/")
            .with_attr("xmlns:s", "http://www.w3.org/2001/XMLSchema")
            .with_child(Element::new("wsdl:types").with_child(schema));

        for op in &self.operations {
            definitions.children.push(
                Element::new("wsdl:message")
                    .with_attr("name", format!("{}SoapIn", op.name))
                    .with_child(
                        Element::new("wsdl:part")
                            .with_attr("name", "parameters")
                            .with_attr("element", &op.name),
                    ),
            );
            definitions.children.push(
                Element::new("wsdl:message")
                    .with_attr("name", format!("{}SoapOut", op.name))
                    .with_child(
                        Element::new("wsdl:part")
                            .with_attr("name", "parameters")
                            .with_attr("element", format!("{}Response", op.name)),
                    ),
            );
        }

        let mut port_type =
            Element::new("wsdl:portType").with_attr("name", format!("{}Soap", self.service_name));
        for op in &self.operations {
            let mut op_el = Element::new("wsdl:operation").with_attr("name", &op.name);
            if let Some(doc) = &op.doc {
                op_el
                    .children
                    .push(Element::text_leaf("wsdl:documentation", doc.clone()));
            }
            op_el.children.push(
                Element::new("wsdl:input").with_attr("message", format!("{}SoapIn", op.name)),
            );
            op_el.children.push(
                Element::new("wsdl:output").with_attr("message", format!("{}SoapOut", op.name)),
            );
            port_type.children.push(op_el);
        }
        definitions.children.push(port_type);

        definitions
            .children
            .push(Element::new("wsdl:service").with_attr("name", &self.service_name));
        definitions
    }
}

/// Builds the schema element declaring an operation's input parameters.
fn input_element(op: &OperationDef) -> Element {
    let mut seq = Element::new("s:sequence");
    for (name, ty) in &op.inputs {
        seq.children.push(
            Element::new("s:element")
                .with_attr("name", name.clone())
                .with_attr("type", format!("s:{}", xsd_name(*ty))),
        );
    }
    Element::new("s:element")
        .with_attr("name", &op.name)
        .with_child(Element::new("s:complexType").with_child(seq))
}

/// Builds the schema element for a result-type tree.
fn type_node_element(node: &TypeNode) -> Element {
    match node {
        TypeNode::Scalar { name, ty } => Element::new("s:element")
            .with_attr("name", name.clone())
            .with_attr("type", format!("s:{}", xsd_name(*ty))),
        TypeNode::Record { name, fields } => {
            let mut seq = Element::new("s:sequence");
            for field in fields {
                seq.children.push(type_node_element(field));
            }
            Element::new("s:element")
                .with_attr("name", name.clone())
                .with_child(Element::new("s:complexType").with_child(seq))
        }
        TypeNode::Repeated { element } => {
            let mut el = type_node_element(element);
            el.attributes.push(("maxOccurs".into(), "unbounded".into()));
            el
        }
    }
}

fn xsd_name(ty: wsmed_store::SqlType) -> &'static str {
    match ty {
        wsmed_store::SqlType::Charstring => "string",
        wsmed_store::SqlType::Real => "double",
        wsmed_store::SqlType::Integer => "int",
        wsmed_store::SqlType::Boolean => "boolean",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsmed_store::SqlType;

    fn sample_doc() -> WsdlDocument {
        WsdlDocument {
            service_name: "GeoPlaces".into(),
            target_namespace: "http://codebump.com/services".into(),
            operations: vec![OperationDef {
                name: "GetPlacesWithin".into(),
                inputs: vec![
                    ("place".into(), SqlType::Charstring),
                    ("state".into(), SqlType::Charstring),
                    ("distance".into(), SqlType::Real),
                    ("placeTypeToFind".into(), SqlType::Charstring),
                ],
                output: TypeNode::Record {
                    name: "GetPlacesWithinResponse".into(),
                    fields: vec![TypeNode::Record {
                        name: "GetPlacesWithinResult".into(),
                        fields: vec![TypeNode::Repeated {
                            element: Box::new(TypeNode::Record {
                                name: "GeoPlaceDistance".into(),
                                fields: vec![
                                    TypeNode::Scalar {
                                        name: "ToPlace".into(),
                                        ty: SqlType::Charstring,
                                    },
                                    TypeNode::Scalar {
                                        name: "ToState".into(),
                                        ty: SqlType::Charstring,
                                    },
                                    TypeNode::Scalar {
                                        name: "Distance".into(),
                                        ty: SqlType::Real,
                                    },
                                ],
                            }),
                        }],
                    }],
                },
                doc: Some("Places within a distance of a place".into()),
            }],
        }
    }

    #[test]
    fn writes_wellformed_xml() {
        let xml = sample_doc().to_xml_string();
        let el = wsmed_xml::parse(&xml).unwrap();
        assert_eq!(el.local_name(), "definitions");
        assert!(xml.contains("GetPlacesWithinSoapIn"));
        assert!(xml.contains("maxOccurs"));
    }

    #[test]
    fn roundtrips_through_parser() {
        let doc = sample_doc();
        let xml = doc.to_xml_string();
        let back = crate::parse_wsdl(&xml).unwrap();
        assert_eq!(back, doc);
    }
}
