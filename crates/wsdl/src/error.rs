//! WSDL import errors.

use std::fmt;

/// Result alias for WSDL operations.
pub type WsdlResult<T> = Result<T, WsdlError>;

/// Errors raised while parsing a WSDL document or deriving OWFs from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsdlError {
    /// Underlying XML was malformed.
    Xml(String),
    /// The document is missing a required WSDL construct.
    MissingConstruct(String),
    /// An element referenced a message/element/type that does not exist.
    DanglingReference {
        /// What kind of thing was referenced (message, element, …).
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// A schema type was not representable in the supported subset.
    UnsupportedType {
        /// Where the unsupported construct appeared.
        context: String,
        /// Description of what was unsupported.
        detail: String,
    },
    /// The operation's result shape cannot be flattened into tuples.
    NotFlattenable {
        /// The operation whose result resisted flattening.
        operation: String,
        /// Why.
        reason: String,
    },
}

impl fmt::Display for WsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsdlError::Xml(msg) => write!(f, "WSDL is not well-formed XML: {msg}"),
            WsdlError::MissingConstruct(what) => write!(f, "WSDL is missing {what}"),
            WsdlError::DanglingReference { kind, name } => {
                write!(f, "WSDL references unknown {kind} {name:?}")
            }
            WsdlError::UnsupportedType { context, detail } => {
                write!(f, "unsupported schema construct in {context}: {detail}")
            }
            WsdlError::NotFlattenable { operation, reason } => {
                write!(
                    f,
                    "cannot flatten result of operation {operation:?}: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for WsdlError {}

impl From<wsmed_xml::XmlError> for WsdlError {
    fn from(e: wsmed_xml::XmlError) -> Self {
        WsdlError::Xml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(WsdlError::MissingConstruct("portType".into())
            .to_string()
            .contains("portType"));
        let e = WsdlError::DanglingReference {
            kind: "message",
            name: "M".into(),
        };
        assert!(e.to_string().contains("message"));
        let e = WsdlError::NotFlattenable {
            operation: "Op".into(),
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("Op"));
    }

    #[test]
    fn from_xml_error() {
        let xml_err = wsmed_xml::parse("<a>").unwrap_err();
        let e: WsdlError = xml_err.into();
        assert!(matches!(e, WsdlError::Xml(_)));
    }
}
