//! In-memory model of an imported WSDL document.

use std::fmt;

use wsmed_store::SqlType;

/// The result-type tree of an operation, as declared in the WSDL schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeNode {
    /// A scalar element, e.g. `<element name="State" type="xsd:string"/>`.
    Scalar {
        /// Element name.
        name: String,
        /// Scalar type.
        ty: SqlType,
    },
    /// A complex element containing a fixed sequence of child elements.
    Record {
        /// Element name.
        name: String,
        /// Child elements in declaration order.
        fields: Vec<TypeNode>,
    },
    /// A repeated element (`maxOccurs="unbounded"`) of a given shape.
    Repeated {
        /// The repeated element's shape.
        element: Box<TypeNode>,
    },
}

impl TypeNode {
    /// Name of the element this node declares.
    pub fn name(&self) -> &str {
        match self {
            TypeNode::Scalar { name, .. } | TypeNode::Record { name, .. } => name,
            TypeNode::Repeated { element } => element.name(),
        }
    }

    /// True if this node (after unwrapping repetition) is a record whose
    /// fields are all scalars — the "row shape" OWF flattening looks for.
    pub fn is_scalar_record(&self) -> bool {
        match self {
            TypeNode::Record { fields, .. } => {
                !fields.is_empty() && fields.iter().all(|f| matches!(f, TypeNode::Scalar { .. }))
            }
            TypeNode::Repeated { element } => element.is_scalar_record(),
            TypeNode::Scalar { .. } => false,
        }
    }

    /// Depth of the type tree (a scalar has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            TypeNode::Scalar { .. } => 1,
            TypeNode::Record { fields, .. } => {
                1 + fields.iter().map(TypeNode::depth).max().unwrap_or(0)
            }
            TypeNode::Repeated { element } => element.depth(),
        }
    }
}

impl fmt::Display for TypeNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeNode::Scalar { name, ty } => write!(f, "{name}: {ty}"),
            TypeNode::Record { name, fields } => {
                write!(f, "{name} {{")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{field}")?;
                }
                write!(f, "}}")
            }
            TypeNode::Repeated { element } => write!(f, "{element}*"),
        }
    }
}

/// One web service operation: its input scalars and nested output tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDef {
    /// Operation name, e.g. `GetPlacesWithin`.
    pub name: String,
    /// Input parameters in declaration order.
    pub inputs: Vec<(String, SqlType)>,
    /// The response element's type tree (root is `<Op>Response`).
    pub output: TypeNode,
    /// Optional human documentation from `<documentation>`.
    pub doc: Option<String>,
}

/// A parsed WSDL document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsdlDocument {
    /// Service name from `<service name=…>` (falls back to `<definitions name=…>`).
    pub service_name: String,
    /// Target namespace URI.
    pub target_namespace: String,
    /// Operations declared by the port type.
    pub operations: Vec<OperationDef>,
}

impl WsdlDocument {
    /// Finds an operation by name.
    pub fn operation(&self, name: &str) -> Option<&OperationDef> {
        self.operations.iter().find(|op| op.name == name)
    }

    /// Operation names in declaration order.
    pub fn operation_names(&self) -> Vec<&str> {
        self.operations.iter().map(|op| op.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(name: &str) -> TypeNode {
        TypeNode::Scalar {
            name: name.into(),
            ty: SqlType::Charstring,
        }
    }

    #[test]
    fn scalar_record_detection() {
        let row = TypeNode::Record {
            name: "GeoPlaceDetails".into(),
            fields: vec![scalar("Name"), scalar("State")],
        };
        assert!(row.is_scalar_record());
        let repeated = TypeNode::Repeated {
            element: Box::new(row.clone()),
        };
        assert!(repeated.is_scalar_record());
        assert!(!scalar("x").is_scalar_record());
        let nested = TypeNode::Record {
            name: "R".into(),
            fields: vec![repeated],
        };
        assert!(!nested.is_scalar_record());
        let empty = TypeNode::Record {
            name: "E".into(),
            fields: vec![],
        };
        assert!(!empty.is_scalar_record());
    }

    #[test]
    fn depth_counts_nesting() {
        let row = TypeNode::Record {
            name: "Row".into(),
            fields: vec![scalar("a")],
        };
        assert_eq!(row.depth(), 2);
        let outer = TypeNode::Record {
            name: "Out".into(),
            fields: vec![TypeNode::Repeated {
                element: Box::new(row),
            }],
        };
        assert_eq!(outer.depth(), 3);
    }

    #[test]
    fn display_is_readable() {
        let t = TypeNode::Record {
            name: "R".into(),
            fields: vec![
                scalar("a"),
                TypeNode::Repeated {
                    element: Box::new(scalar("b")),
                },
            ],
        };
        assert_eq!(t.to_string(), "R {a: Charstring, b: Charstring*}");
    }

    #[test]
    fn document_lookup() {
        let doc = WsdlDocument {
            service_name: "GeoPlaces".into(),
            target_namespace: "urn:geo".into(),
            operations: vec![OperationDef {
                name: "GetAllStates".into(),
                inputs: vec![],
                output: scalar("GetAllStatesResponse"),
                doc: None,
            }],
        };
        assert!(doc.operation("GetAllStates").is_some());
        assert!(doc.operation("Nope").is_none());
        assert_eq!(doc.operation_names(), vec!["GetAllStates"]);
    }
}
