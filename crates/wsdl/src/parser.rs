//! Parses WSDL XML into a [`WsdlDocument`].

use std::collections::HashMap;

use wsmed_store::SqlType;
use wsmed_xml::Element;

use crate::{OperationDef, TypeNode, WsdlDocument, WsdlError, WsdlResult};

/// Parses a WSDL document from its XML text.
pub fn parse_wsdl(xml: &str) -> WsdlResult<WsdlDocument> {
    let root = wsmed_xml::parse(xml)?;
    if root.local_name() != "definitions" {
        return Err(WsdlError::MissingConstruct(format!(
            "<definitions> root (found <{}>)",
            root.name
        )));
    }
    let target_namespace = root
        .attr_local("targetNamespace")
        .unwrap_or_default()
        .to_owned();

    // ---- schema elements, by name ---------------------------------------
    let schema = root
        .child("types")
        .and_then(|t| t.child("schema"))
        .ok_or_else(|| WsdlError::MissingConstruct("<types>/<schema>".into()))?;
    let schema_elements: HashMap<&str, &Element> = schema
        .children_named("element")
        .filter_map(|el| el.attr_local("name").map(|n| (n, el)))
        .collect();

    // ---- messages: name -> referenced element ----------------------------
    let mut messages: HashMap<&str, &str> = HashMap::new();
    for msg in root.children_named("message") {
        let name = msg
            .attr_local("name")
            .ok_or_else(|| WsdlError::MissingConstruct("message name".into()))?;
        let part = msg
            .child("part")
            .ok_or_else(|| WsdlError::MissingConstruct(format!("part in message {name:?}")))?;
        let element = part.attr_local("element").ok_or_else(|| {
            WsdlError::MissingConstruct(format!("element ref in message {name:?}"))
        })?;
        messages.insert(name, element);
    }

    // ---- port type --------------------------------------------------------
    let port_type = root
        .child("portType")
        .ok_or_else(|| WsdlError::MissingConstruct("<portType>".into()))?;
    let mut operations = Vec::new();
    for op_el in port_type.children_named("operation") {
        let name = op_el
            .attr_local("name")
            .ok_or_else(|| WsdlError::MissingConstruct("operation name".into()))?
            .to_owned();
        let doc = op_el.child("documentation").map(|d| d.text().to_owned());
        let input_msg = op_el
            .child("input")
            .and_then(|i| i.attr_local("message"))
            .ok_or_else(|| WsdlError::MissingConstruct(format!("input of operation {name:?}")))?;
        let output_msg = op_el
            .child("output")
            .and_then(|o| o.attr_local("message"))
            .ok_or_else(|| WsdlError::MissingConstruct(format!("output of operation {name:?}")))?;

        let input_element_name = resolve_message(&messages, input_msg)?;
        let output_element_name = resolve_message(&messages, output_msg)?;
        let input_el = resolve_element(&schema_elements, input_element_name)?;
        let output_el = resolve_element(&schema_elements, output_element_name)?;

        let inputs = parse_input_params(input_el)?;
        let output = parse_type_node(output_el)?;
        operations.push(OperationDef {
            name,
            inputs,
            output,
            doc,
        });
    }

    // ---- service name ------------------------------------------------------
    let service_name = root
        .child("service")
        .and_then(|s| s.attr_local("name"))
        .or_else(|| root.attr_local("name"))
        .ok_or_else(|| WsdlError::MissingConstruct("service or definitions name".into()))?
        .to_owned();

    Ok(WsdlDocument {
        service_name,
        target_namespace,
        operations,
    })
}

fn resolve_message<'a>(messages: &HashMap<&str, &'a str>, reference: &str) -> WsdlResult<&'a str> {
    // References may be qualified ("tns:GetAllStatesSoapIn").
    let local = reference.rsplit(':').next().unwrap_or(reference);
    messages
        .get(local)
        .copied()
        .ok_or_else(|| WsdlError::DanglingReference {
            kind: "message",
            name: local.to_owned(),
        })
}

fn resolve_element<'a>(
    elements: &HashMap<&str, &'a Element>,
    reference: &str,
) -> WsdlResult<&'a Element> {
    let local = reference.rsplit(':').next().unwrap_or(reference);
    elements
        .get(local)
        .copied()
        .ok_or_else(|| WsdlError::DanglingReference {
            kind: "element",
            name: local.to_owned(),
        })
}

/// Parses an operation's input element: a complexType sequence of scalars.
fn parse_input_params(el: &Element) -> WsdlResult<Vec<(String, SqlType)>> {
    let name = el.attr_local("name").unwrap_or("?");
    let Some(seq) = el.child("complexType").and_then(|ct| ct.child("sequence")) else {
        // `<element name="Op"><complexType/></element>` means no inputs.
        return Ok(Vec::new());
    };
    let mut params = Vec::new();
    for field in seq.children_named("element") {
        let field_name = field
            .attr_local("name")
            .ok_or_else(|| WsdlError::MissingConstruct(format!("input field name in {name}")))?;
        let ty_name = field
            .attr_local("type")
            .ok_or_else(|| WsdlError::UnsupportedType {
                context: format!("input {name}.{field_name}"),
                detail: "input parameters must be scalar".into(),
            })?;
        let ty = SqlType::parse(ty_name).ok_or_else(|| WsdlError::UnsupportedType {
            context: format!("input {name}.{field_name}"),
            detail: format!("unknown scalar type {ty_name:?}"),
        })?;
        params.push((field_name.to_owned(), ty));
    }
    Ok(params)
}

/// Parses a schema element declaration into a [`TypeNode`].
fn parse_type_node(el: &Element) -> WsdlResult<TypeNode> {
    let name = el
        .attr_local("name")
        .ok_or_else(|| WsdlError::MissingConstruct("element name".into()))?
        .to_owned();
    let repeated = el.attr_local("maxOccurs") == Some("unbounded");

    let node = if let Some(ty_name) = el.attr_local("type") {
        let ty = SqlType::parse(ty_name).ok_or_else(|| WsdlError::UnsupportedType {
            context: name.clone(),
            detail: format!("unknown scalar type {ty_name:?}"),
        })?;
        TypeNode::Scalar { name, ty }
    } else {
        let seq = el
            .child("complexType")
            .and_then(|ct| ct.child("sequence"))
            .ok_or_else(|| WsdlError::UnsupportedType {
                context: name.clone(),
                detail: "expected scalar type attribute or complexType/sequence".into(),
            })?;
        let mut fields = Vec::new();
        for child in seq.children_named("element") {
            fields.push(parse_type_node(child)?);
        }
        TypeNode::Record { name, fields }
    };

    Ok(if repeated {
        TypeNode::Repeated {
            element: Box::new(node),
        }
    } else {
        node
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_WSDL: &str = r#"
<wsdl:definitions name="USZip" targetNamespace="http://webservicex.net/uszip"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/" xmlns:s="http://www.w3.org/2001/XMLSchema">
  <wsdl:types>
    <s:schema targetNamespace="http://webservicex.net/uszip">
      <s:element name="GetInfoByState">
        <s:complexType><s:sequence>
          <s:element name="USState" type="s:string"/>
        </s:sequence></s:complexType>
      </s:element>
      <s:element name="GetInfoByStateResponse">
        <s:complexType><s:sequence>
          <s:element name="GetInfoByStateResult" type="s:string"/>
        </s:sequence></s:complexType>
      </s:element>
    </s:schema>
  </wsdl:types>
  <wsdl:message name="GetInfoByStateSoapIn">
    <wsdl:part name="parameters" element="tns:GetInfoByState"/>
  </wsdl:message>
  <wsdl:message name="GetInfoByStateSoapOut">
    <wsdl:part name="parameters" element="tns:GetInfoByStateResponse"/>
  </wsdl:message>
  <wsdl:portType name="USZipSoap">
    <wsdl:operation name="GetInfoByState">
      <wsdl:documentation>All zip codes in a state</wsdl:documentation>
      <wsdl:input message="tns:GetInfoByStateSoapIn"/>
      <wsdl:output message="tns:GetInfoByStateSoapOut"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:service name="USZip"/>
</wsdl:definitions>"#;

    #[test]
    fn parses_minimal_document() {
        let doc = parse_wsdl(MINI_WSDL).unwrap();
        assert_eq!(doc.service_name, "USZip");
        assert_eq!(doc.target_namespace, "http://webservicex.net/uszip");
        assert_eq!(doc.operations.len(), 1);
        let op = &doc.operations[0];
        assert_eq!(op.name, "GetInfoByState");
        assert_eq!(op.inputs, vec![("USState".to_owned(), SqlType::Charstring)]);
        assert_eq!(op.doc.as_deref(), Some("All zip codes in a state"));
        match &op.output {
            TypeNode::Record { name, fields } => {
                assert_eq!(name, "GetInfoByStateResponse");
                assert_eq!(fields.len(), 1);
                assert_eq!(
                    fields[0],
                    TypeNode::Scalar {
                        name: "GetInfoByStateResult".into(),
                        ty: SqlType::Charstring
                    }
                );
            }
            other => panic!("unexpected output shape {other:?}"),
        }
    }

    #[test]
    fn missing_porttype_is_error() {
        let xml =
            r#"<definitions name="X"><types><schema/></types><service name="X"/></definitions>"#;
        let err = parse_wsdl(xml).unwrap_err();
        assert!(matches!(err, WsdlError::MissingConstruct(ref m) if m.contains("portType")));
    }

    #[test]
    fn dangling_message_reference_is_error() {
        let xml = r#"<definitions name="X">
          <types><schema/></types>
          <portType name="P"><operation name="Op">
            <input message="Nope"/><output message="Nope"/>
          </operation></portType>
          <service name="X"/>
        </definitions>"#;
        let err = parse_wsdl(xml).unwrap_err();
        assert!(matches!(
            err,
            WsdlError::DanglingReference {
                kind: "message",
                ..
            }
        ));
    }

    #[test]
    fn non_definitions_root_is_error() {
        let err = parse_wsdl("<html/>").unwrap_err();
        assert!(matches!(err, WsdlError::MissingConstruct(_)));
    }

    #[test]
    fn malformed_xml_is_error() {
        assert!(matches!(
            parse_wsdl("<definitions>").unwrap_err(),
            WsdlError::Xml(_)
        ));
    }

    #[test]
    fn unknown_input_type_is_error() {
        let xml = MINI_WSDL.replace("type=\"s:string\"", "type=\"s:dateTime\"");
        let err = parse_wsdl(&xml).unwrap_err();
        assert!(matches!(err, WsdlError::UnsupportedType { .. }));
    }

    #[test]
    fn empty_complex_type_means_no_inputs() {
        let xml = r#"
<definitions name="Geo" targetNamespace="urn:geo">
  <types><schema>
    <element name="GetAllStates"><complexType/></element>
    <element name="GetAllStatesResponse">
      <complexType><sequence>
        <element name="State" type="string" maxOccurs="unbounded"/>
      </sequence></complexType>
    </element>
  </schema></types>
  <message name="In"><part element="GetAllStates"/></message>
  <message name="Out"><part element="GetAllStatesResponse"/></message>
  <portType name="P"><operation name="GetAllStates">
    <input message="In"/><output message="Out"/>
  </operation></portType>
  <service name="Geo"/>
</definitions>"#;
        let doc = parse_wsdl(xml).unwrap();
        let op = &doc.operations[0];
        assert!(op.inputs.is_empty());
        match &op.output {
            TypeNode::Record { fields, .. } => {
                assert!(matches!(fields[0], TypeNode::Repeated { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
