#![deny(missing_docs)]

//! # wsmed-wsdl
//!
//! A WSDL 1.1 subset sufficient for *data providing web services*: the
//! mediator imports a WSDL document, learns each operation's input
//! parameters and nested result type, and generates an **operation wrapper
//! function (OWF)** per operation — the automatically generated view of
//! Fig. 2 in the paper that flattens the nested XML result into a stream of
//! typed tuples.
//!
//! Supported WSDL shape (matching what the simulated providers publish):
//!
//! ```text
//! <definitions name=… targetNamespace=…>
//!   <types><schema>
//!     <element name="Op">…input scalars…</element>
//!     <element name="OpResponse">…nested result tree…</element>
//!   </schema></types>
//!   <message name="OpSoapIn"><part element="Op"/></message>
//!   <message name="OpSoapOut"><part element="OpResponse"/></message>
//!   <portType name="…"><operation name="Op">
//!     <input message="OpSoapIn"/><output message="OpSoapOut"/>
//!   </operation></portType>
//!   <service name="…"/>
//! </definitions>
//! ```
//!
//! Bindings/ports are accepted and ignored — the simulated transport is
//! addressed by provider name, not by SOAP endpoint URL.

mod error;
mod model;
mod owf;
mod parser;
mod writer;

pub use error::{WsdlError, WsdlResult};
pub use model::{OperationDef, TypeNode, WsdlDocument};
pub use owf::{FlattenSpec, LeafKind, OwfDef};
pub use parser::parse_wsdl;
