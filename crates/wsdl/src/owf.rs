//! Operation wrapper function (OWF) generation and result flattening.
//!
//! For each imported web service operation, WSMED automatically generates an
//! OWF (Fig. 2 in the paper): a function that calls the operation via the
//! `cwo` built-in and flattens the nested XML result into a stream of typed
//! tuples. The OWF also defines an SQL **view** of the operation whose
//! columns are the input parameters followed by the flattened output columns
//! — queries constrain the input columns with equality predicates
//! (`gp.place='Atlanta'`) and read the output columns.

use wsmed_store::{Schema, SqlType, StoreResult, Tuple, Value, ValueBatch};

use crate::{OperationDef, TypeNode, WsdlError, WsdlResult};

/// How to flatten a converted response value into tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlattenSpec {
    /// Record fields to descend through from the response root; sequences
    /// encountered along the way are iterated (nested-loop flattening).
    pub path: Vec<String>,
    /// What the values at the end of the path look like.
    pub leaf: LeafKind,
}

/// The shape of the values reached by [`FlattenSpec::path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafKind {
    /// A record whose scalar fields become the output columns.
    Row(Vec<(String, SqlType)>),
    /// A single scalar value (one output column).
    Scalar(String, SqlType),
}

/// An operation wrapper function: the unit the parallelizer wraps in plan
/// functions and ships to query processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwfDef {
    /// View/function name (same as the operation name, as in the paper).
    pub name: String,
    /// Service name from the WSDL (`GeoPlaces`, `USZip`, …).
    pub service: String,
    /// URI of the WSDL document (identifies the provider on the network).
    pub wsdl_uri: String,
    /// Operation name invoked through `cwo`.
    pub operation: String,
    /// Input parameters (bound in queries via equality predicates or join
    /// dependencies — the `-` adornments).
    pub inputs: Vec<(String, SqlType)>,
    /// Flattened output columns (the `+` adornments).
    pub columns: Vec<(String, SqlType)>,
    /// How to flatten the converted response value.
    pub flatten: FlattenSpec,
}

impl OwfDef {
    /// Derives the OWF for an operation, or explains why its result shape
    /// cannot be flattened.
    pub fn derive(op: &OperationDef, service: &str, wsdl_uri: &str) -> WsdlResult<OwfDef> {
        let mut path = Vec::new();
        let mut cur: &TypeNode = &op.output;
        let leaf = loop {
            // Repetition is handled by iteration at runtime; unwrap it here.
            while let TypeNode::Repeated { element } = cur {
                cur = element;
            }
            match cur {
                TypeNode::Scalar { name, ty } => break LeafKind::Scalar(name.clone(), *ty),
                TypeNode::Record { fields, .. } if cur.is_scalar_record() => {
                    let columns = fields
                        .iter()
                        .map(|f| match f {
                            TypeNode::Scalar { name, ty } => (name.clone(), *ty),
                            _ => unreachable!("is_scalar_record guarantees scalar fields"),
                        })
                        .collect();
                    break LeafKind::Row(columns);
                }
                TypeNode::Record { name, fields } => match fields.as_slice() {
                    [] => {
                        return Err(WsdlError::NotFlattenable {
                            operation: op.name.clone(),
                            reason: format!("record {name:?} has no fields"),
                        })
                    }
                    [only] => {
                        path.push(only.name().to_owned());
                        cur = only;
                    }
                    _ => {
                        return Err(WsdlError::NotFlattenable {
                            operation: op.name.clone(),
                            reason: format!(
                                "record {name:?} branches into {} non-scalar fields",
                                fields.len()
                            ),
                        })
                    }
                },
                TypeNode::Repeated { .. } => unreachable!("repetition unwrapped above"),
            }
        };
        let columns = match &leaf {
            LeafKind::Row(cols) => cols.clone(),
            LeafKind::Scalar(name, ty) => vec![(name.clone(), *ty)],
        };
        Ok(OwfDef {
            name: op.name.clone(),
            service: service.to_owned(),
            wsdl_uri: wsdl_uri.to_owned(),
            operation: op.name.clone(),
            inputs: op.inputs.clone(),
            columns,
            flatten: FlattenSpec { path, leaf },
        })
    }

    /// Schema of the flattened output stream.
    pub fn output_schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|(n, t)| (std::sync::Arc::from(n.as_str()), *t))
                .collect(),
        )
    }

    /// Schema of the SQL view: input columns first, then output columns.
    pub fn view_schema(&self) -> Schema {
        Schema::new(
            self.inputs
                .iter()
                .chain(self.columns.iter())
                .map(|(n, t)| (std::sync::Arc::from(n.as_str()), *t))
                .collect(),
        )
    }

    /// Flattens a converted response value (from
    /// [`wsmed_store::xml_to_value`] applied to the `<Op>Response` element)
    /// into output tuples.
    ///
    /// Missing fields or empty leaves yield zero rows rather than errors:
    /// a web service reporting "no matches" returns an empty result element,
    /// which the XML→value conversion renders as an empty string.
    pub fn flatten(&self, response: &Value) -> StoreResult<Vec<Tuple>> {
        let mut frontier: Vec<&Value> = vec![response];
        for step in &self.flatten.path {
            let mut next = Vec::new();
            for value in frontier {
                for item in iterate(value) {
                    if let Value::Record(record) = item {
                        if let Some(v) = record.get_opt(step) {
                            next.push(v);
                        }
                    }
                    // Non-records (e.g. the empty string of an empty result
                    // element) contribute no rows.
                }
            }
            frontier = next;
        }

        let mut rows = Vec::new();
        for value in frontier {
            for item in iterate(value) {
                match &self.flatten.leaf {
                    LeafKind::Scalar(_, ty) => {
                        if let Some(tuple) = scalar_row(item, *ty) {
                            rows.push(tuple);
                        }
                    }
                    LeafKind::Row(cols) => {
                        if let Value::Record(record) = item {
                            let mut values = Vec::with_capacity(cols.len());
                            for (name, ty) in cols {
                                values.push(match record.get_opt(name) {
                                    Some(v) => coerce(v, *ty),
                                    None => Value::Null,
                                });
                            }
                            rows.push(Tuple::new(values));
                        }
                    }
                }
            }
        }
        Ok(rows)
    }

    /// Flattens a converted response value into a columnar [`ValueBatch`].
    ///
    /// This is the batch-at-a-time counterpart of [`OwfDef::flatten`]: every
    /// row produced by one response shares the OWF's output schema, so the
    /// flattened stream is always uniform-arity and columnarizes without a
    /// row fallback. Consumers iterate results through
    /// [`ValueBatch::row`] views or hand the batch to the columnar wire
    /// encoder whole.
    pub fn flatten_batch(&self, response: &Value) -> StoreResult<ValueBatch> {
        let rows = self.flatten(response)?;
        Ok(ValueBatch::from_tuples(&rows)
            .expect("OWF flattening always produces uniform-arity rows"))
    }
}

/// Iterates a value: sequences/bags yield their elements, everything else
/// yields itself once.
fn iterate(value: &Value) -> Box<dyn Iterator<Item = &Value> + '_> {
    match value {
        Value::Sequence(items) | Value::Bag(items) => Box::new(items.iter()),
        other => Box::new(std::iter::once(other)),
    }
}

/// Converts a leaf scalar into a one-column row; empty strings (an empty
/// result element) yield no row.
fn scalar_row(value: &Value, ty: SqlType) -> Option<Tuple> {
    match value {
        Value::Str(s) if s.is_empty() => None,
        Value::Record(_) => None,
        other => Some(Tuple::new(vec![coerce(other, ty)])),
    }
}

/// Coerces an XML-sourced value (usually a string) to its declared type.
fn coerce(value: &Value, ty: SqlType) -> Value {
    match value {
        Value::Str(s) => match ty {
            SqlType::Charstring => value.clone(),
            _ => ty.value_from_text(s),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsmed_store::xml_to_value;
    use wsmed_xml::parse;

    fn states_op() -> OperationDef {
        OperationDef {
            name: "GetAllStates".into(),
            inputs: vec![],
            output: TypeNode::Record {
                name: "GetAllStatesResponse".into(),
                fields: vec![TypeNode::Record {
                    name: "GetAllStatesResult".into(),
                    fields: vec![TypeNode::Repeated {
                        element: Box::new(TypeNode::Record {
                            name: "GeoPlaceDetails".into(),
                            fields: vec![
                                TypeNode::Scalar {
                                    name: "Name".into(),
                                    ty: SqlType::Charstring,
                                },
                                TypeNode::Scalar {
                                    name: "State".into(),
                                    ty: SqlType::Charstring,
                                },
                                TypeNode::Scalar {
                                    name: "LatDegrees".into(),
                                    ty: SqlType::Real,
                                },
                            ],
                        }),
                    }],
                }],
            },
            doc: None,
        }
    }

    fn zip_op() -> OperationDef {
        OperationDef {
            name: "GetInfoByState".into(),
            inputs: vec![("USState".into(), SqlType::Charstring)],
            output: TypeNode::Record {
                name: "GetInfoByStateResponse".into(),
                fields: vec![TypeNode::Scalar {
                    name: "GetInfoByStateResult".into(),
                    ty: SqlType::Charstring,
                }],
            },
            doc: None,
        }
    }

    #[test]
    fn derive_nested_record_path() {
        let owf = OwfDef::derive(&states_op(), "GeoPlaces", "urn:geo").unwrap();
        assert_eq!(
            owf.flatten.path,
            vec!["GetAllStatesResult", "GeoPlaceDetails"]
        );
        assert_eq!(
            owf.columns,
            vec![
                ("Name".to_owned(), SqlType::Charstring),
                ("State".to_owned(), SqlType::Charstring),
                ("LatDegrees".to_owned(), SqlType::Real),
            ]
        );
        assert!(matches!(owf.flatten.leaf, LeafKind::Row(_)));
    }

    #[test]
    fn derive_scalar_result() {
        let owf = OwfDef::derive(&zip_op(), "USZip", "urn:zip").unwrap();
        // The response record has a single scalar field, so it is itself the
        // row shape: no descent, one column.
        assert_eq!(owf.flatten.path, Vec::<String>::new());
        assert!(
            matches!(&owf.flatten.leaf, LeafKind::Row(cols) if cols.len() == 1 && cols[0].0 == "GetInfoByStateResult")
        );
        assert_eq!(owf.columns.len(), 1);
    }

    #[test]
    fn view_schema_is_inputs_then_outputs() {
        let owf = OwfDef::derive(&zip_op(), "USZip", "urn:zip").unwrap();
        let schema = owf.view_schema();
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.name(0), "USState");
        assert_eq!(schema.name(1), "GetInfoByStateResult");
    }

    #[test]
    fn flatten_nested_rows() {
        let owf = OwfDef::derive(&states_op(), "GeoPlaces", "urn:geo").unwrap();
        let xml = "<GetAllStatesResponse><GetAllStatesResult>\
            <GeoPlaceDetails><Name>Colorado</Name><State>CO</State><LatDegrees>39.0</LatDegrees></GeoPlaceDetails>\
            <GeoPlaceDetails><Name>Georgia</Name><State>GA</State><LatDegrees>33.0</LatDegrees></GeoPlaceDetails>\
            </GetAllStatesResult></GetAllStatesResponse>";
        let value = xml_to_value(&parse(xml).unwrap());
        let rows = owf.flatten(&value).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1), &Value::str("CO"));
        assert_eq!(rows[1].get(2), &Value::Real(33.0));
    }

    #[test]
    fn flatten_batch_matches_row_flatten() {
        let owf = OwfDef::derive(&states_op(), "GeoPlaces", "urn:geo").unwrap();
        let xml = "<GetAllStatesResponse><GetAllStatesResult>\
            <GeoPlaceDetails><Name>Colorado</Name><State>CO</State><LatDegrees>39.0</LatDegrees></GeoPlaceDetails>\
            <GeoPlaceDetails><Name>Georgia</Name><LatDegrees>33.0</LatDegrees></GeoPlaceDetails>\
            </GetAllStatesResult></GetAllStatesResponse>";
        let value = xml_to_value(&parse(xml).unwrap());
        let batch = owf.flatten_batch(&value).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.to_tuples(), owf.flatten(&value).unwrap());
        // The missing <State> becomes a null slot in a typed string column.
        assert_eq!(batch.row(1).get(1), &Value::Null);
        // An empty result flattens to an empty batch, not an error.
        let empty = xml_to_value(
            &parse("<GetAllStatesResponse><GetAllStatesResult/></GetAllStatesResponse>").unwrap(),
        );
        assert!(owf.flatten_batch(&empty).unwrap().is_empty());
    }

    #[test]
    fn flatten_single_row_when_sequence_has_one_element() {
        let owf = OwfDef::derive(&states_op(), "GeoPlaces", "urn:geo").unwrap();
        let xml = "<GetAllStatesResponse><GetAllStatesResult>\
            <GeoPlaceDetails><Name>X</Name><State>XX</State><LatDegrees>1.0</LatDegrees></GeoPlaceDetails>\
            </GetAllStatesResult></GetAllStatesResponse>";
        let value = xml_to_value(&parse(xml).unwrap());
        let rows = owf.flatten(&value).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn flatten_empty_result_yields_no_rows() {
        let owf = OwfDef::derive(&states_op(), "GeoPlaces", "urn:geo").unwrap();
        let value = xml_to_value(
            &parse("<GetAllStatesResponse><GetAllStatesResult/></GetAllStatesResponse>").unwrap(),
        );
        assert!(owf.flatten(&value).unwrap().is_empty());
        let value = xml_to_value(&parse("<GetAllStatesResponse/>").unwrap());
        assert!(owf.flatten(&value).unwrap().is_empty());
    }

    #[test]
    fn flatten_scalar_result() {
        let owf = OwfDef::derive(&zip_op(), "USZip", "urn:zip").unwrap();
        let value = xml_to_value(
            &parse("<GetInfoByStateResponse><GetInfoByStateResult>80840,80901</GetInfoByStateResult></GetInfoByStateResponse>").unwrap(),
        );
        let rows = owf.flatten(&value).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::str("80840,80901"));
    }

    #[test]
    fn flatten_missing_field_yields_null_column() {
        let owf = OwfDef::derive(&states_op(), "GeoPlaces", "urn:geo").unwrap();
        let xml = "<GetAllStatesResponse><GetAllStatesResult>\
            <GeoPlaceDetails><Name>X</Name></GeoPlaceDetails>\
            </GetAllStatesResult></GetAllStatesResponse>";
        let value = xml_to_value(&parse(xml).unwrap());
        let rows = owf.flatten(&value).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Null);
        assert_eq!(rows[0].get(2), &Value::Null);
    }

    #[test]
    fn branching_record_is_not_flattenable() {
        let op = OperationDef {
            name: "Branchy".into(),
            inputs: vec![],
            output: TypeNode::Record {
                name: "BranchyResponse".into(),
                fields: vec![
                    TypeNode::Record {
                        name: "A".into(),
                        fields: vec![],
                    },
                    TypeNode::Record {
                        name: "B".into(),
                        fields: vec![],
                    },
                ],
            },
            doc: None,
        };
        let err = OwfDef::derive(&op, "S", "u").unwrap_err();
        assert!(matches!(err, WsdlError::NotFlattenable { .. }));
    }

    #[test]
    fn empty_record_is_not_flattenable() {
        let op = OperationDef {
            name: "Empty".into(),
            inputs: vec![],
            output: TypeNode::Record {
                name: "EmptyResponse".into(),
                fields: vec![],
            },
            doc: None,
        };
        assert!(matches!(
            OwfDef::derive(&op, "S", "u").unwrap_err(),
            WsdlError::NotFlattenable { .. }
        ));
    }
}
