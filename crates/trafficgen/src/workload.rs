//! Population-realistic workload generation.
//!
//! A [`Workload`] is the full, pre-materialized transcript of one load
//! run: for each arrival, *when* it lands (from an [`ArrivalProfile`]),
//! *who* sends it (a tenant drawn uniformly), and *what* it asks (a query
//! template drawn from a shape mix, with parameters drawn from a seeded
//! Zipf popularity distribution over the dataset's states). Everything is
//! a pure function of `(spec, states)`, so two generations with the same
//! seed are byte-identical — the property the replay determinism tests
//! pin down via [`Workload::transcript`].

use wsmed_netsim::DetRng;
use wsmed_sql::SqlTemplate;
use wsmed_store::Value;

use crate::arrival::ArrivalProfile;
use crate::zipf::ZipfSampler;

/// Query1 with the search radius parameterized: places within `{distance}`
/// km of each Atlanta (the paper's Fig. 1 shape).
const QUERY1_TEMPLATE: &str = "\
    Select gl.placename, gl.state \
    From GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl \
    Where gs.State=gp.state and gp.distance={distance} \
      and gp.placeTypeToFind='City' and gp.place='Atlanta' \
      and gl.placeName=gp.ToPlace+', '+gp.ToState \
      and gl.MaxItems=100 and gl.imagePresence='true'";

/// Query2's dependent chain pinned to one `{state}`: the zip and state of
/// 'USAF Academy' via that state's zip list (the paper's Fig. 3 shape,
/// parameter-skewed like the cache ablation's workload).
const QUERY2_TEMPLATE: &str = "\
    select gp.ToState, gp.zip \
    From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
    Where gi.USState={state} and gi.GetInfoByStateResult=gc.zipstr \
      and gc.zipcode=gp.zip and gp.ToPlace='USAF Academy'";

/// Query3's three-level flight chain pinned to one `{state}`: every
/// delayed departure from that state's airports.
const QUERY3_TEMPLATE: &str = "\
    select d.FlightNo, a.Code, fs.DelayMinutes \
    From GetAllStates gs, GetAirports a, GetDepartures d, GetFlightStatus fs \
    Where a.stateAbbr={state} and a.Code = d.airportCode \
      and d.FlightNo = fs.flightNo and fs.Status = 'Delayed' \
    order by d.FlightNo";

/// Search radii for Query1, most-popular first (Zipf rank order).
const DISTANCES: [f64; 6] = [15.0, 10.0, 25.0, 5.0, 40.0, 60.0];

/// The query shapes a workload can mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TemplateKind {
    /// Paper Query1 with a Zipf-drawn search radius.
    Query1Places,
    /// Paper Query2 pinned to a Zipf-drawn state.
    Query2ZipState,
    /// Query3 (flight chain) pinned to a Zipf-drawn state.
    Query3FlightsState,
}

impl TemplateKind {
    /// Stable short name for transcripts and reports.
    pub fn name(&self) -> &'static str {
        match self {
            TemplateKind::Query1Places => "q1-places",
            TemplateKind::Query2ZipState => "q2-zip",
            TemplateKind::Query3FlightsState => "q3-flights",
        }
    }

    /// The template SQL text with `{placeholder}` slots.
    pub fn template_text(&self) -> &'static str {
        match self {
            TemplateKind::Query1Places => QUERY1_TEMPLATE,
            TemplateKind::Query2ZipState => QUERY2_TEMPLATE,
            TemplateKind::Query3FlightsState => QUERY3_TEMPLATE,
        }
    }
}

/// Everything needed to (re)generate a workload deterministically.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Master seed; every stream (arrivals, shuffle, draws) is keyed off it.
    pub seed: u64,
    /// Run length in model seconds.
    pub duration_model_secs: f64,
    /// The open-loop arrival process.
    pub profile: ArrivalProfile,
    /// Number of tenants; each arrival is assigned one uniformly.
    pub tenants: usize,
    /// Zipf exponent for parameter popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Query-shape mix as `(kind, weight)`; weights need not sum to 1.
    pub mix: Vec<(TemplateKind, f64)>,
}

impl WorkloadSpec {
    /// A balanced three-shape mix at the given seed/profile/duration.
    pub fn standard(seed: u64, profile: ArrivalProfile, duration_model_secs: f64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            duration_model_secs,
            profile,
            tenants: 4,
            zipf_exponent: 1.1,
            mix: vec![
                (TemplateKind::Query1Places, 0.2),
                (TemplateKind::Query2ZipState, 0.5),
                (TemplateKind::Query3FlightsState, 0.3),
            ],
        }
    }
}

/// One scheduled query injection.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// Position in arrival order (0-based).
    pub index: usize,
    /// Scheduled arrival on the model clock, seconds from run start.
    pub arrival_model_secs: f64,
    /// The arrival profile's phase label at the arrival instant.
    pub phase: &'static str,
    /// Tenant name (`t0`, `t1`, ...).
    pub tenant: String,
    /// The query shape drawn for this arrival.
    pub template: TemplateKind,
    /// The rendered parameter, human-readable (e.g. `state=CO`).
    pub params: String,
    /// The fully rendered SQL.
    pub sql: String,
}

/// A fully materialized open-loop workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The spec this workload was generated from.
    pub spec: WorkloadSpec,
    /// States in popularity order (rank 0 = hottest).
    pub popularity: Vec<String>,
    /// The injections, in arrival order.
    pub injections: Vec<Injection>,
}

impl Workload {
    /// Generates the workload: arrivals from the profile, popularity from
    /// a seeded shuffle of `states`, parameters and shapes from seeded
    /// Zipf/weighted draws. Pure in `(spec, states)`.
    ///
    /// # Panics
    /// Panics if the spec has no tenants, an empty mix, or `states` is
    /// empty.
    pub fn generate(spec: WorkloadSpec, states: &[String]) -> Workload {
        assert!(spec.tenants > 0, "workload needs at least one tenant");
        assert!(!spec.mix.is_empty(), "workload needs a non-empty mix");
        assert!(!states.is_empty(), "workload needs candidate states");

        // Popularity ranking: a seeded Fisher-Yates shuffle, so the hot
        // states are an arbitrary (but reproducible) subset rather than
        // the alphabetically-first ones.
        let mut popularity: Vec<String> = states.to_vec();
        let mut shuffle_rng = DetRng::keyed(spec.seed, "popularity-shuffle", 0);
        for i in (1..popularity.len()).rev() {
            let j = shuffle_rng.below(i as u64 + 1) as usize;
            popularity.swap(i, j);
        }

        let state_zipf = ZipfSampler::new(popularity.len(), spec.zipf_exponent);
        let distance_zipf = ZipfSampler::new(DISTANCES.len(), spec.zipf_exponent);
        let mix_total: f64 = spec.mix.iter().map(|(_, w)| w).sum();
        assert!(mix_total > 0.0, "mix weights must sum positive");

        let templates: Vec<(TemplateKind, SqlTemplate)> = spec
            .mix
            .iter()
            .map(|(kind, _)| {
                (
                    *kind,
                    SqlTemplate::parse(kind.template_text()).expect("built-in template parses"),
                )
            })
            .collect();

        let arrivals = spec.profile.arrivals(spec.seed, spec.duration_model_secs);
        let mut draw_rng = DetRng::keyed(spec.seed, "workload-draws", 0);
        let mut injections = Vec::with_capacity(arrivals.len());
        for (index, &arrival_model_secs) in arrivals.iter().enumerate() {
            let tenant = format!("t{}", draw_rng.below(spec.tenants as u64));
            // Weighted shape draw from the mix.
            let mut pick = draw_rng.next_f64() * mix_total;
            let mut chosen = 0usize;
            for (i, (_, w)) in spec.mix.iter().enumerate() {
                chosen = i;
                pick -= w;
                if pick < 0.0 {
                    break;
                }
            }
            let (kind, template) = &templates[chosen];
            let (params, sql) = match kind {
                TemplateKind::Query1Places => {
                    let d = DISTANCES[distance_zipf.sample(&mut draw_rng)];
                    (
                        format!("distance={d}"),
                        template
                            .render(&[("distance", Value::Real(d))])
                            .expect("distance binds"),
                    )
                }
                TemplateKind::Query2ZipState | TemplateKind::Query3FlightsState => {
                    let state = &popularity[state_zipf.sample(&mut draw_rng)];
                    (
                        format!("state={state}"),
                        template
                            .render(&[("state", Value::str(state))])
                            .expect("state binds"),
                    )
                }
            };
            injections.push(Injection {
                index,
                arrival_model_secs,
                phase: spec.profile.phase_of(arrival_model_secs),
                tenant,
                template: *kind,
                params,
                sql,
            });
        }
        Workload {
            spec,
            popularity,
            injections,
        }
    }

    /// A byte-stable transcript of the whole workload: one line per
    /// injection with arrival time (9 decimal places), phase, tenant,
    /// shape, and parameters. Equal transcripts ⇔ equal workloads.
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        for inj in &self.injections {
            out.push_str(&format!(
                "{}|{:.9}|{}|{}|{}|{}\n",
                inj.index,
                inj.arrival_model_secs,
                inj.phase,
                inj.tenant,
                inj.template.name(),
                inj.params,
            ));
        }
        out
    }

    /// The distinct rendered SQL texts, in first-appearance order (for
    /// plan precompilation).
    pub fn unique_sqls(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for inj in &self.injections {
            if !seen.contains(&inj.sql) {
                seen.push(inj.sql.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states() -> Vec<String> {
        ["CO", "GA", "TX", "CA", "NY", "WA", "FL", "OH"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    fn spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec::standard(seed, ArrivalProfile::Poisson { rate: 4.0 }, 50.0)
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = Workload::generate(spec(9), &states());
        let b = Workload::generate(spec(9), &states());
        assert_eq!(a.transcript(), b.transcript());
        assert_eq!(a.injections, b.injections);
        let c = Workload::generate(spec(10), &states());
        assert_ne!(a.transcript(), c.transcript());
    }

    #[test]
    fn mix_weights_are_respected() {
        let w = Workload::generate(spec(3), &states());
        assert!(w.injections.len() > 100);
        let count = |k: TemplateKind| {
            w.injections.iter().filter(|i| i.template == k).count() as f64
                / w.injections.len() as f64
        };
        assert!((count(TemplateKind::Query1Places) - 0.2).abs() < 0.1);
        assert!((count(TemplateKind::Query2ZipState) - 0.5).abs() < 0.12);
        assert!((count(TemplateKind::Query3FlightsState) - 0.3).abs() < 0.1);
    }

    #[test]
    fn hot_state_dominates_parameter_draws() {
        let w = Workload::generate(spec(5), &states());
        let hot = format!("state={}", w.popularity[0]);
        let cold = format!("state={}", w.popularity.last().expect("non-empty"));
        let hot_n = w.injections.iter().filter(|i| i.params == hot).count();
        let cold_n = w.injections.iter().filter(|i| i.params == cold).count();
        assert!(hot_n > 2 * cold_n, "{hot_n} hot vs {cold_n} cold");
    }

    #[test]
    fn rendered_sql_quotes_states() {
        let w = Workload::generate(spec(2), &states());
        let q2 = w
            .injections
            .iter()
            .find(|i| i.template == TemplateKind::Query2ZipState)
            .expect("mix includes q2");
        assert!(q2.sql.contains("gi.USState='"));
        assert!(!q2.sql.contains('{'), "no unexpanded placeholders");
    }

    #[test]
    fn unique_sqls_deduplicate() {
        let w = Workload::generate(spec(4), &states());
        let uniq = w.unique_sqls();
        let mut sorted = uniq.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(uniq.len(), sorted.len());
        assert!(uniq.len() < w.injections.len());
    }
}
