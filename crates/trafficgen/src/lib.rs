#![deny(missing_docs)]

//! # wsmed-trafficgen
//!
//! The open-loop traffic harness for the WSMED mediator: everything needed
//! to pose a *population* of queries at the multi-query mediator the way a
//! real client fleet would, and to reduce the outcome to
//! latency-percentile numbers a regression gate can assert on.
//!
//! The paper's experiments (§VI) time one query at a time; a mediator
//! shared by many tenants instead faces a *stream* whose arrival process
//! does not care how long queries take. The layers here, bottom-up:
//!
//! * [`ZipfSampler`] — seeded skewed popularity over parameter ranks;
//! * [`ArrivalProfile`] — seeded open-loop arrival processes on the model
//!   clock (Poisson, diurnal, square-wave bursts) via thinning;
//! * [`Workload`] / [`WorkloadSpec`] — a fully materialized, byte-stable
//!   transcript of arrivals × tenants × query templates × parameter
//!   draws ([`TemplateKind`] renders paper-shaped SQL through
//!   [`wsmed_sql::SqlTemplate`]);
//! * [`replay`] — injects the workload against a [`wsmed_core::Wsmed`] at
//!   a wall time-scale, attributing each query's latency from its
//!   *scheduled* arrival so queueing shows up in the tail;
//! * [`LoadReport`] — exact nearest-rank percentiles, goodput and shed
//!   rate per arrival phase, plus [`SubsystemCounters`] scoped to the
//!   replay.
//!
//! Every stage is a pure function of its seed, which is what lets tests
//! assert byte-identical transcripts and deterministic replay projections.

mod arrival;
mod report;
mod runner;
mod workload;
mod zipf;

pub use arrival::ArrivalProfile;
pub use report::{exact_quantile, fnv1a, LoadReport, PhaseReport, SubsystemCounters};
pub use runner::{replay, InjectionOutcome, OutcomeKind};
pub use workload::{Injection, TemplateKind, Workload, WorkloadSpec};
pub use zipf::ZipfSampler;
