//! Latency-percentile load reports.
//!
//! A [`LoadReport`] condenses one open-loop replay into the numbers a
//! regression gate can assert on: per-phase latency percentiles (exact
//! nearest-rank over completed queries, in model seconds), goodput
//! (completions per model second of phase time), shed rate, and a row of
//! per-subsystem counters (cache, pool, breakers, admission, provider
//! calls). The percentile math is deliberately the exact sorted-vector
//! definition — no streaming sketch — because replays are small enough to
//! keep every sample and gates must not flake on estimator error.

use crate::runner::{InjectionOutcome, OutcomeKind};
use crate::workload::Workload;

/// Exact nearest-rank quantile: the smallest sample such that at least
/// `p·n` samples are ≤ it (`sorted[⌈p·n⌉ - 1]`). `sorted` must be
/// ascending. Returns 0.0 on an empty slice (gates treat "no samples" as
/// "nothing to assert on", not a panic mid-report).
pub fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile p out of range");
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// FNV-1a over a byte string — the digest used to compare transcripts and
/// outcome sequences without storing either.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Aggregates for one arrival phase (or the whole run, phase `all`).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase label (`steady`, `peak`, `burst`, ..., or `all`).
    pub phase: String,
    /// Queries injected during the phase.
    pub injected: usize,
    /// Queries that ran to completion.
    pub completed: usize,
    /// Queries shed by admission control.
    pub shed: usize,
    /// Queries that failed for non-admission reasons.
    pub failed: usize,
    /// Result rows across completed queries.
    pub rows: u64,
    /// Model-time latency percentiles over *completed* queries, seconds.
    pub p50: f64,
    /// 95th percentile, model seconds.
    pub p95: f64,
    /// 99th percentile, model seconds.
    pub p99: f64,
    /// 99.9th percentile, model seconds.
    pub p999: f64,
    /// Completions per model second of phase time.
    pub goodput_qps: f64,
    /// Shed fraction of injected queries (0 when nothing injected).
    pub shed_rate: f64,
}

impl PhaseReport {
    fn build(
        phase: &str,
        outcomes: &[&InjectionOutcome],
        phase_model_secs: f64,
        time_scale: f64,
    ) -> PhaseReport {
        let mut latencies: Vec<f64> = outcomes
            .iter()
            .filter(|o| matches!(o.kind, OutcomeKind::Completed { .. }))
            .map(|o| o.latency_model_secs(time_scale))
            .collect();
        latencies.sort_by(f64::total_cmp);
        let completed = latencies.len();
        let shed = outcomes
            .iter()
            .filter(|o| o.kind == OutcomeKind::Shed)
            .count();
        let failed = outcomes.len() - completed - shed;
        let rows = outcomes
            .iter()
            .filter_map(|o| match o.kind {
                OutcomeKind::Completed { rows } => Some(rows as u64),
                _ => None,
            })
            .sum();
        PhaseReport {
            phase: phase.to_owned(),
            injected: outcomes.len(),
            completed,
            shed,
            failed,
            rows,
            p50: exact_quantile(&latencies, 0.50),
            p95: exact_quantile(&latencies, 0.95),
            p99: exact_quantile(&latencies, 0.99),
            p999: exact_quantile(&latencies, 0.999),
            goodput_qps: if phase_model_secs > 0.0 {
                completed as f64 / phase_model_secs
            } else {
                0.0
            },
            shed_rate: if outcomes.is_empty() {
                0.0
            } else {
                shed as f64 / outcomes.len() as f64
            },
        }
    }

    /// Renders the phase as a JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"phase\": \"{}\", \"injected\": {}, \"completed\": {}, \"shed\": {}, \
             \"failed\": {}, \"rows\": {}, \"p50_model_s\": {:.6}, \"p95_model_s\": {:.6}, \
             \"p99_model_s\": {:.6}, \"p999_model_s\": {:.6}, \"goodput_qps\": {:.4}, \
             \"shed_rate\": {:.4}}}",
            self.phase,
            self.injected,
            self.completed,
            self.shed,
            self.failed,
            self.rows,
            self.p50,
            self.p95,
            self.p99,
            self.p999,
            self.goodput_qps,
            self.shed_rate,
        )
    }
}

/// Mediator-wide subsystem counters captured after a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubsystemCounters {
    /// Call-cache hits (completed-entry answers).
    pub cache_hits: u64,
    /// Call-cache misses that reached the transport.
    pub cache_misses: u64,
    /// Cache hits on entries produced by a *different* query.
    pub cross_query_hits: u64,
    /// Child processes acquired warm from the pool.
    pub warm_acquires: u64,
    /// Child processes spawned cold.
    pub cold_spawns: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
    /// Queries rejected at admission.
    pub shed_queries: u64,
    /// Calls rejected by in-flight budgets.
    pub shed_calls: u64,
    /// Web-service calls that reached the simulated providers.
    pub provider_calls: u64,
    /// Parameters pruned by semi-join prune stages (summed over runs).
    pub pruned_params: u64,
}

impl SubsystemCounters {
    /// Snapshots the mediator's *lifetime-monotonic* counters (breakers,
    /// admission, provider calls); subtract a "before" snapshot to scope
    /// to one replay. Cache/pool/prune attribution is deliberately *not*
    /// read here — the mediator-level cache and pool counters reset at the
    /// start of every run, so snapshot diffs across a replay would wrap;
    /// [`LoadReport::build`] sums those from each run's own
    /// [`wsmed_core::ExecutionReport`] attribution instead.
    pub fn collect(med: &wsmed_core::Wsmed, network: &wsmed_netsim::Network) -> SubsystemCounters {
        let admission = med.admission().stats();
        SubsystemCounters {
            breaker_opens: med.breaker_totals().opens,
            shed_queries: admission.shed_queries,
            shed_calls: admission.shed_calls,
            provider_calls: network.total_metrics().calls,
            ..SubsystemCounters::default()
        }
    }

    /// Counter-wise difference (`self - before`), for scoping a snapshot
    /// pair to one replay.
    pub fn since(&self, before: &SubsystemCounters) -> SubsystemCounters {
        SubsystemCounters {
            cache_hits: self.cache_hits - before.cache_hits,
            cache_misses: self.cache_misses - before.cache_misses,
            cross_query_hits: self.cross_query_hits - before.cross_query_hits,
            warm_acquires: self.warm_acquires - before.warm_acquires,
            cold_spawns: self.cold_spawns - before.cold_spawns,
            breaker_opens: self.breaker_opens - before.breaker_opens,
            shed_queries: self.shed_queries - before.shed_queries,
            shed_calls: self.shed_calls - before.shed_calls,
            provider_calls: self.provider_calls - before.provider_calls,
            pruned_params: self.pruned_params - before.pruned_params,
        }
    }

    /// Renders the counters as a JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"cache_hits\": {}, \"cache_misses\": {}, \"cross_query_hits\": {}, \
             \"warm_acquires\": {}, \"cold_spawns\": {}, \"breaker_opens\": {}, \
             \"shed_queries\": {}, \"shed_calls\": {}, \"provider_calls\": {}, \
             \"pruned_params\": {}}}",
            self.cache_hits,
            self.cache_misses,
            self.cross_query_hits,
            self.warm_acquires,
            self.cold_spawns,
            self.breaker_opens,
            self.shed_queries,
            self.shed_calls,
            self.provider_calls,
            self.pruned_params,
        )
    }
}

/// The full report of one open-loop replay.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Mediator configuration label (`bare`, `full`, ...).
    pub config: String,
    /// Arrival profile name (`poisson`, `diurnal`, `square`).
    pub profile: String,
    /// Wall seconds per model second the replay ran at.
    pub time_scale: f64,
    /// Run length in model seconds.
    pub duration_model_secs: f64,
    /// FNV-1a digest of the workload transcript.
    pub transcript_digest: u64,
    /// Whole-run aggregates (phase label `all`).
    pub overall: PhaseReport,
    /// Per-phase aggregates, in the profile's phase order.
    pub phases: Vec<PhaseReport>,
    /// Subsystem counters scoped to this replay.
    pub counters: SubsystemCounters,
    /// Per-injection outcome labels + row counts, in injection order
    /// (the deterministic projection of the replay).
    outcome_lines: Vec<String>,
}

impl LoadReport {
    /// Builds the report from a workload and its replay outcomes.
    /// `counters` should already be scoped to the replay (see
    /// [`SubsystemCounters::since`]).
    ///
    /// # Panics
    /// Panics if `outcomes` does not cover exactly the workload's
    /// injections (accounting must sum, by construction).
    pub fn build(
        config: &str,
        workload: &Workload,
        outcomes: &[InjectionOutcome],
        time_scale: f64,
        mut counters: SubsystemCounters,
    ) -> LoadReport {
        assert_eq!(
            outcomes.len(),
            workload.injections.len(),
            "one outcome per injection"
        );
        counters.pruned_params = outcomes.iter().map(|o| o.pruned_params).sum();
        counters.cache_hits = outcomes.iter().map(|o| o.cache.hits).sum();
        counters.cache_misses = outcomes.iter().map(|o| o.cache.misses).sum();
        counters.cross_query_hits = outcomes.iter().map(|o| o.cache.cross_query_hits).sum();
        counters.warm_acquires = outcomes.iter().map(|o| o.pool.warm_acquires).sum();
        counters.cold_spawns = outcomes.iter().map(|o| o.pool.cold_spawns).sum();
        let all: Vec<&InjectionOutcome> = outcomes.iter().collect();
        let duration = workload.spec.duration_model_secs;
        let overall = PhaseReport::build("all", &all, duration, time_scale);
        let mut phases = Vec::new();
        for phase in workload.spec.profile.phases() {
            let in_phase: Vec<&InjectionOutcome> =
                outcomes.iter().filter(|o| o.phase == *phase).collect();
            phases.push(PhaseReport::build(
                phase,
                &in_phase,
                workload.spec.profile.phase_model_seconds(phase, duration),
                time_scale,
            ));
        }
        let outcome_lines = outcomes
            .iter()
            .map(|o| {
                let rows = match o.kind {
                    OutcomeKind::Completed { rows } => rows,
                    _ => 0,
                };
                format!("{}|{}|{}", o.index, o.kind.label(), rows)
            })
            .collect();
        LoadReport {
            config: config.to_owned(),
            profile: workload.spec.profile.name().to_owned(),
            time_scale,
            duration_model_secs: duration,
            transcript_digest: fnv1a(workload.transcript().as_bytes()),
            overall,
            phases,
            counters,
            outcome_lines,
        }
    }

    /// Renders the whole report as a JSON object (one arm of a
    /// `BENCH_load.json` section).
    pub fn json(&self) -> String {
        let phases: Vec<String> = self.phases.iter().map(|p| p.json()).collect();
        format!(
            "{{\"config\": \"{}\", \"profile\": \"{}\", \"time_scale\": {}, \
             \"duration_model_s\": {}, \"transcript_digest\": \"{:016x}\", \
             \"overall\": {}, \"phases\": [{}], \"counters\": {}}}",
            self.config,
            self.profile,
            self.time_scale,
            self.duration_model_secs,
            self.transcript_digest,
            self.overall.json(),
            phases.join(", "),
            self.counters.json(),
        )
    }

    /// The seed-determinism projection of the replay: workload transcript
    /// digest, per-injection outcome kind and row count, and the
    /// accounting totals. Two same-seed replays on equivalently
    /// configured, quota-free mediators must produce byte-identical
    /// projections; wall-derived latencies are deliberately excluded.
    pub fn deterministic_json(&self) -> String {
        format!(
            "{{\"transcript_digest\": \"{:016x}\", \"outcomes_digest\": \"{:016x}\", \
             \"injected\": {}, \"completed\": {}, \"shed\": {}, \"failed\": {}, \"rows\": {}}}",
            self.transcript_digest,
            fnv1a(self.outcome_lines.join("\n").as_bytes()),
            self.overall.injected,
            self.overall.completed,
            self.overall.shed,
            self.overall.failed,
            self.overall.rows,
        )
    }

    /// A human-readable percentile table (one row per phase).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:10} {:>8} {:>8} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}\n",
            "phase",
            "injected",
            "complete",
            "shed",
            "fail",
            "p50",
            "p95",
            "p99",
            "p999",
            "qps",
            "shed%"
        ));
        for p in std::iter::once(&self.overall).chain(self.phases.iter()) {
            out.push_str(&format!(
                "{:10} {:>8} {:>8} {:>6} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.2} {:>6.1}%\n",
                p.phase,
                p.injected,
                p.completed,
                p.shed,
                p.failed,
                p.p50,
                p.p95,
                p.p99,
                p.p999,
                p.goodput_qps,
                p.shed_rate * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn quantiles_match_sorted_vector_definition() {
        // Heavy tail with ties, against hand-computed nearest-rank values.
        let mut v = vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 10.0, 100.0, 1000.0];
        v.sort_by(f64::total_cmp);
        assert_eq!(exact_quantile(&v, 0.50), 2.0); // rank ceil(5) = 5
        assert_eq!(exact_quantile(&v, 0.95), 1000.0); // rank ceil(9.5) = 10
        assert_eq!(exact_quantile(&v, 0.99), 1000.0);
        assert_eq!(exact_quantile(&v, 0.10), 1.0);
        assert_eq!(exact_quantile(&v, 0.0), 1.0); // clamped to rank 1
        assert_eq!(exact_quantile(&v, 1.0), 1000.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let v = [42.0];
        for p in [0.0, 0.5, 0.95, 0.999, 1.0] {
            assert_eq!(exact_quantile(&v, p), 42.0);
        }
    }

    #[test]
    fn empty_samples_yield_zero() {
        assert_eq!(exact_quantile(&[], 0.95), 0.0);
    }

    #[test]
    fn all_ties_collapse_to_the_tie() {
        let v = [7.0; 100];
        for p in [0.5, 0.95, 0.999] {
            assert_eq!(exact_quantile(&v, p), 7.0);
        }
    }

    #[test]
    fn fnv1a_distinguishes_and_repeats() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    fn outcome(index: usize, phase: &'static str, kind: OutcomeKind, ms: u64) -> InjectionOutcome {
        InjectionOutcome {
            index,
            phase,
            tenant: "t0".into(),
            template: crate::workload::TemplateKind::Query2ZipState,
            arrival_model_secs: index as f64,
            latency_wall: Duration::from_millis(ms),
            kind,
            ws_calls: 1,
            pruned_params: 0,
            cache: Default::default(),
            pool: Default::default(),
            report: None,
        }
    }

    #[test]
    fn accounting_sums_exactly_to_injected() {
        use crate::arrival::ArrivalProfile;
        use crate::workload::{Workload, WorkloadSpec};
        let spec = WorkloadSpec::standard(7, ArrivalProfile::Poisson { rate: 2.0 }, 20.0);
        let states: Vec<String> = ["CO", "GA", "TX"].iter().map(|s| s.to_string()).collect();
        let w = Workload::generate(spec, &states);
        let outcomes: Vec<InjectionOutcome> = w
            .injections
            .iter()
            .map(|inj| {
                let kind = match inj.index % 3 {
                    0 => OutcomeKind::Completed { rows: 2 },
                    1 => OutcomeKind::Shed,
                    _ => OutcomeKind::Failed {
                        error: "boom".into(),
                    },
                };
                outcome(inj.index, inj.phase, kind, 10 + inj.index as u64)
            })
            .collect();
        let report = LoadReport::build("test", &w, &outcomes, 1.0, SubsystemCounters::default());
        let o = &report.overall;
        assert_eq!(o.injected, w.injections.len());
        assert_eq!(o.completed + o.shed + o.failed, o.injected);
        let phase_injected: usize = report.phases.iter().map(|p| p.injected).sum();
        assert_eq!(phase_injected, o.injected);
        let phase_completed: usize = report.phases.iter().map(|p| p.completed).sum();
        assert_eq!(phase_completed, o.completed);
        let phase_shed: usize = report.phases.iter().map(|p| p.shed).sum();
        assert_eq!(phase_shed, o.shed);
        assert!((o.shed_rate - o.shed as f64 / o.injected as f64).abs() < 1e-12);
        // Expected rows: 2 per completed query.
        assert_eq!(o.rows, 2 * o.completed as u64);
    }

    #[test]
    fn percentiles_equal_direct_computation_on_adversarial_latencies() {
        use crate::arrival::ArrivalProfile;
        use crate::workload::{Workload, WorkloadSpec};
        let spec = WorkloadSpec::standard(3, ArrivalProfile::Poisson { rate: 3.0 }, 30.0);
        let states: Vec<String> = ["CO", "GA"].iter().map(|s| s.to_string()).collect();
        let w = Workload::generate(spec, &states);
        // Adversarial: many ties at 5ms, one enormous outlier.
        let outcomes: Vec<InjectionOutcome> = w
            .injections
            .iter()
            .map(|inj| {
                let ms = if inj.index == 0 { 60_000 } else { 5 };
                outcome(inj.index, inj.phase, OutcomeKind::Completed { rows: 1 }, ms)
            })
            .collect();
        let scale = 0.5;
        let report = LoadReport::build("test", &w, &outcomes, scale, SubsystemCounters::default());
        let mut lat: Vec<f64> = outcomes
            .iter()
            .map(|o| o.latency_wall.as_secs_f64() / scale)
            .collect();
        lat.sort_by(f64::total_cmp);
        assert_eq!(report.overall.p50, exact_quantile(&lat, 0.50));
        assert_eq!(report.overall.p95, exact_quantile(&lat, 0.95));
        assert_eq!(report.overall.p99, exact_quantile(&lat, 0.99));
        assert_eq!(report.overall.p999, exact_quantile(&lat, 0.999));
        assert_eq!(report.overall.p50, 0.01); // 5ms at scale 0.5
    }

    #[test]
    fn deterministic_json_ignores_latency_but_not_outcomes() {
        use crate::arrival::ArrivalProfile;
        use crate::workload::{Workload, WorkloadSpec};
        let spec = WorkloadSpec::standard(5, ArrivalProfile::Poisson { rate: 2.0 }, 10.0);
        let states: Vec<String> = ["CO", "GA"].iter().map(|s| s.to_string()).collect();
        let w = Workload::generate(spec, &states);
        let make = |ms: u64, rows: usize| -> Vec<InjectionOutcome> {
            w.injections
                .iter()
                .map(|inj| outcome(inj.index, inj.phase, OutcomeKind::Completed { rows }, ms))
                .collect()
        };
        let a = LoadReport::build("x", &w, &make(10, 3), 1.0, SubsystemCounters::default());
        let b = LoadReport::build("x", &w, &make(99, 3), 1.0, SubsystemCounters::default());
        let c = LoadReport::build("x", &w, &make(10, 4), 1.0, SubsystemCounters::default());
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert_ne!(a.deterministic_json(), c.deterministic_json());
    }

    #[test]
    fn json_has_schema_relevant_fields() {
        use crate::arrival::ArrivalProfile;
        use crate::workload::{Workload, WorkloadSpec};
        let spec = WorkloadSpec::standard(1, ArrivalProfile::Poisson { rate: 2.0 }, 5.0);
        let states: Vec<String> = ["CO"].iter().map(|s| s.to_string()).collect();
        let w = Workload::generate(spec, &states);
        let outcomes: Vec<InjectionOutcome> = w
            .injections
            .iter()
            .map(|inj| outcome(inj.index, inj.phase, OutcomeKind::Completed { rows: 1 }, 5))
            .collect();
        let r = LoadReport::build("full", &w, &outcomes, 1.0, SubsystemCounters::default());
        let json = r.json();
        for key in [
            "\"config\"",
            "\"profile\"",
            "\"p95_model_s\"",
            "\"goodput_qps\"",
            "\"shed_rate\"",
            "\"counters\"",
            "\"transcript_digest\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!r.table().is_empty());
    }
}
