//! Open-loop replay of a generated workload against a mediator.
//!
//! The replayer anchors the model clock to a wall [`Instant`], schedules
//! injection *i* at `anchor + arrival_i × time_scale`, and injects it then
//! — whether or not earlier queries have finished. Each injection's
//! latency is attributed from its *scheduled* arrival (not from when the
//! injector thread got around to it), so injector lag and admission
//! queueing both show up in the percentiles, which is the whole point of
//! an open-loop harness.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wsmed_core::{ArrivalOutcome, CacheStats, CoreResult, PoolStats, QueryPlan, Wsmed};

use crate::workload::{TemplateKind, Workload};

/// How one injection terminated, with just enough detail for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Ran to completion, producing this many result rows.
    Completed {
        /// Result rows returned.
        rows: usize,
    },
    /// Shed by admission control.
    Shed,
    /// Failed for a non-admission reason (stringified error).
    Failed {
        /// The error rendered with `Display`.
        error: String,
    },
}

impl OutcomeKind {
    /// A one-word label (`ok`/`shed`/`fail`) for transcripts.
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeKind::Completed { .. } => "ok",
            OutcomeKind::Shed => "shed",
            OutcomeKind::Failed { .. } => "fail",
        }
    }
}

/// The measured fate of one injection.
#[derive(Debug, Clone)]
pub struct InjectionOutcome {
    /// Index of the injection in the workload (arrival order).
    pub index: usize,
    /// The arrival profile's phase label at the scheduled arrival.
    pub phase: &'static str,
    /// The tenant the query ran under.
    pub tenant: String,
    /// The query shape.
    pub template: TemplateKind,
    /// Scheduled arrival on the model clock, seconds from run start.
    pub arrival_model_secs: f64,
    /// Scheduled-arrival → terminal-event wall latency.
    pub latency_wall: Duration,
    /// How the injection terminated.
    pub kind: OutcomeKind,
    /// Web-service calls charged to this run (0 for shed/failed).
    pub ws_calls: u64,
    /// Parameters pruned by the plan's semi-join prune stages.
    pub pruned_params: u64,
    /// Per-run call-cache attribution (zero for shed/failed runs). Unlike
    /// the mediator-level counters these never reset mid-replay, so they
    /// sum correctly across injections.
    pub cache: CacheStats,
    /// Per-run process-pool attribution (zero for shed/failed runs).
    pub pool: PoolStats,
    /// The full execution report of a completed run (result rows, tree,
    /// resilience detail) — `None` for shed/failed injections.
    pub report: Option<Box<wsmed_core::ExecutionReport>>,
}

impl InjectionOutcome {
    /// Scheduled-arrival → terminal latency in model seconds, given the
    /// time scale the replay ran at. Meaningless at `time_scale == 0`
    /// (the sim does not sleep, so wall time measures CPU, not model
    /// latency) — callers must gate percentile assertions on a positive
    /// scale.
    pub fn latency_model_secs(&self, time_scale: f64) -> f64 {
        if time_scale > 0.0 {
            self.latency_wall.as_secs_f64() / time_scale
        } else {
            0.0
        }
    }
}

/// Replays `workload` against `med` open-loop at `time_scale` wall
/// seconds per model second. Returns one outcome per injection, in
/// injection order. Plans are precompiled once per distinct SQL before
/// the clock starts, so compilation cost never pollutes the latencies.
///
/// `time_scale` should match the scale the mediator's network was built
/// with; `0` injects everything immediately (useful for interleaving
/// stress tests where only result bags matter).
pub fn replay(
    med: &Wsmed,
    workload: &Workload,
    time_scale: f64,
) -> CoreResult<Vec<InjectionOutcome>> {
    let mut plans: HashMap<&str, QueryPlan> = HashMap::new();
    for sql in workload.unique_sqls() {
        let inj = workload
            .injections
            .iter()
            .find(|i| i.sql == sql)
            .expect("sql came from an injection");
        plans.insert(inj.sql.as_str(), med.plan_query(&sql)?);
    }

    let outcomes: Mutex<Vec<InjectionOutcome>> = Mutex::new(Vec::new());
    let anchor = Instant::now();
    std::thread::scope(|scope| {
        for inj in &workload.injections {
            let plan = &plans[inj.sql.as_str()];
            let outcomes = &outcomes;
            scope.spawn(move || {
                let target = anchor + Duration::from_secs_f64(inj.arrival_model_secs * time_scale);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                let outcome = med.execute_arrival_for(&inj.tenant, plan, target);
                let latency_wall = outcome.latency_wall();
                let (kind, ws_calls, pruned_params, cache, pool, report) = match outcome {
                    ArrivalOutcome::Completed { report, .. } => (
                        OutcomeKind::Completed {
                            rows: report.rows.len(),
                        },
                        report.ws_calls,
                        report.pruned_params,
                        report.cache,
                        report.pool,
                        Some(report),
                    ),
                    ArrivalOutcome::Shed { .. } => (
                        OutcomeKind::Shed,
                        0,
                        0,
                        CacheStats::default(),
                        PoolStats::default(),
                        None,
                    ),
                    ArrivalOutcome::Failed { error, .. } => (
                        OutcomeKind::Failed {
                            error: error.to_string(),
                        },
                        0,
                        0,
                        CacheStats::default(),
                        PoolStats::default(),
                        None,
                    ),
                };
                outcomes
                    .lock()
                    .expect("no poisoned lock")
                    .push(InjectionOutcome {
                        index: inj.index,
                        phase: inj.phase,
                        tenant: inj.tenant.clone(),
                        template: inj.template,
                        arrival_model_secs: inj.arrival_model_secs,
                        latency_wall,
                        kind,
                        ws_calls,
                        pruned_params,
                        cache,
                        pool,
                        report,
                    });
            });
        }
    });
    let mut outcomes = outcomes.into_inner().expect("no poisoned lock");
    outcomes.sort_by_key(|o| o.index);
    Ok(outcomes)
}
