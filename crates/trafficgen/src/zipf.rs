//! Seeded Zipf popularity sampling.
//!
//! Real query populations are heavily skewed: a few hot parameters (the
//! big airports, the big cities) dominate the stream while a long tail
//! shows up rarely. The sampler here draws ranks from the classic Zipf
//! distribution — weight of rank `r` (0-based) proportional to
//! `1 / (r + 1)^s` — via an inverse-CDF table, so a draw costs one RNG
//! step plus a binary search and is deterministic given the RNG state.

use wsmed_netsim::DetRng;

/// A Zipf(`s`) sampler over ranks `0..n` (rank 0 is the most popular).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative weights, normalized to end at 1.0.
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s ≥ 0`. `s = 0` is
    /// uniform; `s = 1` is the classic Zipf; larger `s` skews harder.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, exponent: f64) -> ZipfSampler {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        assert!(exponent.is_finite() && exponent >= 0.0, "bad exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        ZipfSampler { cdf, exponent }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent this sampler was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The probability mass of rank `r`.
    pub fn weight(&self, rank: usize) -> f64 {
        let prev = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - prev
    }

    /// Draws one rank. Rank 0 is the most likely; weights are strictly
    /// decreasing in rank for `s > 0`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.next_f64();
        // First rank whose cumulative weight exceeds u.
        match self.cdf.binary_search_by(|w| w.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_decrease() {
        for s in [0.5, 1.0, 1.5] {
            let z = ZipfSampler::new(20, s);
            let total: f64 = (0..20).map(|r| z.weight(r)).sum();
            assert!((total - 1.0).abs() < 1e-9);
            for r in 1..20 {
                assert!(
                    z.weight(r) < z.weight(r - 1),
                    "weights must strictly decrease for s={s}"
                );
            }
        }
    }

    #[test]
    fn uniform_exponent_is_flat() {
        let z = ZipfSampler::new(8, 0.0);
        for r in 0..8 {
            assert!((z.weight(r) - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = ZipfSampler::new(30, 1.1);
        let draw = |seed| {
            let mut rng = DetRng::new(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn empirical_ranking_matches_weight_ranking() {
        let z = ZipfSampler::new(10, 1.2);
        let mut rng = DetRng::new(42);
        let mut counts = [0usize; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Empirical frequencies must agree with the analytic weights well
        // within sampling noise, which implies matching rankings.
        for (r, &c) in counts.iter().enumerate() {
            let expect = z.weight(r) * n as f64;
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt() + 10.0,
                "rank {r}: {c} observed vs {expect:.0} expected"
            );
        }
        for r in 1..10 {
            assert!(counts[r] < counts[r - 1], "rank {r} out of order");
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = DetRng::new(1);
        for _ in 0..50 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
