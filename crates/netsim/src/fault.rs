//! Fault injection for providers: prompt faults, outage windows,
//! brownouts, and hangs.
//!
//! The original model only knew *prompt* faults — a call that errors out
//! after its set-up cost. Real wide-area services fail in richer ways, and
//! each shape stresses a different part of the mediator's resilience
//! layer:
//!
//! * **Prompt faults** (`fail_every` / `fail_probability` / `fail_first`)
//!   return [`crate::NetError::ServiceFault`] quickly — retries absorb
//!   them.
//! * **Outage windows** (`down_between`) fail every call that starts while
//!   the provider's *model clock* (cumulative charged model latency, the
//!   same deterministic clock [`crate::CallTrace`] uses) is inside a
//!   window — circuit breakers stop hammering them.
//! * **Brownouts** (`brownout_between` × `brownout_factor`) multiply the
//!   latency of calls inside a window — deadlines and hedges cut them.
//! * **Hangs** (`hang_every` / `hang_probability` × `hang_model_secs`)
//!   add an effectively-infinite model latency to a call; without a
//!   deadline the caller stalls for `hang_model_secs`, with one it is
//!   charged exactly the deadline and observes
//!   [`crate::NetError::Timeout`].
//!
//! Count-based triggers (`fail_every`, `fail_first`, `hang_every`) key off
//! the provider's 1-based call sequence number. Probabilistic triggers use
//! a uniform roll from a deterministic RNG; with `keyed_by_args` the roll
//! is keyed by the *request content* instead of the call sequence, so a
//! given argument tuple fails identically regardless of how concurrent
//! dispatch interleaved the calls — the knob that makes chaos runs
//! replayable.

/// Convention: count-style knobs clamp rather than panic. `every(0)` and
/// `hang_every(0)` mean "every call" (clamped to 1), mirroring
/// `RetryPolicy::attempts(0)` clamping to a single attempt.
fn clamp_every(n: u64) -> u64 {
    n.max(1)
}

/// Describes when and how a provider should misbehave.
///
/// Prompt failures surface as [`crate::NetError::ServiceFault`] from
/// [`crate::Provider::call`]; timed-out calls (hangs or slow calls under a
/// deadline) surface as [`crate::NetError::Timeout`]. The mediator decides
/// whether to retry, skip or abort the query.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Fail every `n`-th call (1-based): `Some(3)` fails calls 3, 6, 9, …
    pub fail_every: Option<u64>,
    /// Fail calls with this probability, decided by the deterministic
    /// per-call RNG. `0.0` never fails.
    pub fail_probability: f64,
    /// Fail the first `n` calls outright (cold-start outage).
    pub fail_first: u64,
    /// Outage windows `(model_t0, model_t1)` on the provider's model
    /// clock: a call starting at model time `t` with `t0 <= t < t1` fails
    /// promptly, like a prompt fault.
    pub down_between: Vec<(f64, f64)>,
    /// Brownout windows on the provider's model clock: a call starting
    /// inside one has its latency multiplied by [`Self::brownout_factor`].
    pub brownout_between: Vec<(f64, f64)>,
    /// Latency multiplier applied inside brownout windows (≥ 1 useful;
    /// the default `1.0` makes brownout windows inert).
    pub brownout_factor: f64,
    /// Hang every `n`-th call (1-based), like `fail_every` but the call
    /// stalls instead of erroring.
    pub hang_every: Option<u64>,
    /// Hang calls with this probability (deterministic roll, separate RNG
    /// stream from `fail_probability`).
    pub hang_probability: f64,
    /// Model seconds a hung call stalls before completing — the finite
    /// stand-in for "infinite". Large enough that any sane per-call
    /// deadline fires first; small enough that a deadline-less run still
    /// terminates (the test suite's anti-hang guard).
    pub hang_model_secs: f64,
    /// Key the probabilistic rolls by a hash of the request content
    /// instead of the call sequence number, so the set of failing
    /// argument tuples is independent of dispatch interleaving.
    pub keyed_by_args: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            fail_every: None,
            fail_probability: 0.0,
            fail_first: 0,
            down_between: Vec::new(),
            brownout_between: Vec::new(),
            brownout_factor: 1.0,
            hang_every: None,
            hang_probability: 0.0,
            hang_model_secs: 600.0,
            keyed_by_args: false,
        }
    }
}

fn in_window(windows: &[(f64, f64)], t: f64) -> bool {
    windows.iter().any(|&(t0, t1)| t >= t0 && t < t1)
}

impl FaultSpec {
    /// A spec that never fails (the default).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Fail every `n`-th call. `0` clamps to `1` (fail every call) —
    /// count-style knobs clamp rather than panic, matching
    /// `RetryPolicy::attempts`.
    pub fn every(n: u64) -> Self {
        FaultSpec {
            fail_every: Some(clamp_every(n)),
            ..Default::default()
        }
    }

    /// Hang every `n`-th call (`0` clamps to `1`).
    pub fn hang_every(n: u64) -> Self {
        FaultSpec {
            hang_every: Some(clamp_every(n)),
            ..Default::default()
        }
    }

    /// Whether this spec can ever fail, hang, or slow a call — `false`
    /// lets the provider skip the chaos bookkeeping entirely.
    pub fn is_active(&self) -> bool {
        self.fail_every.is_some()
            || self.fail_probability > 0.0
            || self.fail_first > 0
            || !self.down_between.is_empty()
            || (!self.brownout_between.is_empty() && self.brownout_factor != 1.0)
            || self.hang_every.is_some()
            || self.hang_probability > 0.0
    }

    /// Decides whether call number `seq` (1-based) fails promptly. `roll`
    /// is a uniform sample in `[0,1)` from the deterministic per-call RNG.
    pub fn should_fail(&self, seq: u64, roll: f64) -> bool {
        if seq <= self.fail_first {
            return true;
        }
        if let Some(n) = self.fail_every {
            if seq.is_multiple_of(n) {
                return true;
            }
        }
        roll < self.fail_probability
    }

    /// Decides whether call number `seq` hangs. `roll` is a uniform sample
    /// from a *separately keyed* deterministic RNG stream.
    pub fn should_hang(&self, seq: u64, roll: f64) -> bool {
        if let Some(n) = self.hang_every {
            if seq.is_multiple_of(n) {
                return true;
            }
        }
        roll < self.hang_probability
    }

    /// Whether the provider is down at model time `t` (cumulative charged
    /// model latency on the provider's clock).
    pub fn down_at(&self, t: f64) -> bool {
        in_window(&self.down_between, t)
    }

    /// The latency multiplier at model time `t` (1.0 outside brownouts).
    pub fn latency_factor_at(&self, t: f64) -> f64 {
        if in_window(&self.brownout_between, t) {
            self.brownout_factor.max(0.0)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let f = FaultSpec::none();
        assert!(!f.is_active());
        for seq in 1..100 {
            assert!(!f.should_fail(seq, 0.0));
            assert!(!f.should_hang(seq, 0.0));
        }
    }

    #[test]
    fn every_n_fails_multiples() {
        let f = FaultSpec::every(3);
        let failed: Vec<u64> = (1..=9).filter(|&s| f.should_fail(s, 0.99)).collect();
        assert_eq!(failed, vec![3, 6, 9]);
    }

    #[test]
    fn fail_first_covers_prefix() {
        let f = FaultSpec {
            fail_first: 2,
            ..Default::default()
        };
        assert!(f.should_fail(1, 0.9));
        assert!(f.should_fail(2, 0.9));
        assert!(!f.should_fail(3, 0.9));
    }

    #[test]
    fn probability_uses_roll() {
        let f = FaultSpec {
            fail_probability: 0.5,
            ..Default::default()
        };
        assert!(f.should_fail(1, 0.4));
        assert!(!f.should_fail(1, 0.6));
    }

    #[test]
    fn every_zero_clamps_to_every_call() {
        // Count-style knobs clamp, never panic (the RetryPolicy
        // convention): every(0) means "fail every call".
        let f = FaultSpec::every(0);
        assert_eq!(f.fail_every, Some(1));
        assert!((1..=5).all(|s| f.should_fail(s, 0.99)));
        assert_eq!(FaultSpec::hang_every(0).hang_every, Some(1));
    }

    #[test]
    fn hang_every_n_hangs_multiples() {
        let f = FaultSpec::hang_every(4);
        let hung: Vec<u64> = (1..=8).filter(|&s| f.should_hang(s, 0.99)).collect();
        assert_eq!(hung, vec![4, 8]);
        // Hangs are not prompt failures.
        assert!(!f.should_fail(4, 0.99));
    }

    #[test]
    fn outage_window_half_open() {
        let f = FaultSpec {
            down_between: vec![(10.0, 20.0)],
            ..Default::default()
        };
        assert!(f.is_active());
        assert!(!f.down_at(9.999));
        assert!(f.down_at(10.0));
        assert!(f.down_at(19.999));
        assert!(!f.down_at(20.0));
    }

    #[test]
    fn brownout_factor_applies_inside_window() {
        let f = FaultSpec {
            brownout_between: vec![(0.0, 5.0), (10.0, 15.0)],
            brownout_factor: 10.0,
            ..Default::default()
        };
        assert_eq!(f.latency_factor_at(2.0), 10.0);
        assert_eq!(f.latency_factor_at(7.0), 1.0);
        assert_eq!(f.latency_factor_at(12.0), 10.0);
        // Factor 1.0 windows are inert and don't count as active chaos.
        let inert = FaultSpec {
            brownout_between: vec![(0.0, 5.0)],
            ..Default::default()
        };
        assert!(!inert.is_active());
    }
}
