//! Fault injection for providers, used by failure-injection tests.

/// Describes when a provider should fail calls.
///
/// Failures surface as [`crate::NetError::ServiceFault`] from
/// [`crate::Provider::call`]; the mediator decides whether to retry, skip or
/// abort the query.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Fail every `n`-th call (1-based): `Some(3)` fails calls 3, 6, 9, …
    pub fail_every: Option<u64>,
    /// Fail calls with this probability, decided by the deterministic
    /// per-call RNG. `0.0` never fails.
    pub fail_probability: f64,
    /// Fail the first `n` calls outright (cold-start outage).
    pub fail_first: u64,
}

impl FaultSpec {
    /// A spec that never fails (the default).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Fail every `n`-th call.
    pub fn every(n: u64) -> Self {
        assert!(n > 0, "fail_every must be positive");
        FaultSpec {
            fail_every: Some(n),
            ..Default::default()
        }
    }

    /// Decides whether call number `seq` (1-based) fails. `roll` is a uniform
    /// sample in `[0,1)` from the deterministic per-call RNG.
    pub fn should_fail(&self, seq: u64, roll: f64) -> bool {
        if seq <= self.fail_first {
            return true;
        }
        if let Some(n) = self.fail_every {
            if seq.is_multiple_of(n) {
                return true;
            }
        }
        roll < self.fail_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let f = FaultSpec::none();
        for seq in 1..100 {
            assert!(!f.should_fail(seq, 0.0));
        }
    }

    #[test]
    fn every_n_fails_multiples() {
        let f = FaultSpec::every(3);
        let failed: Vec<u64> = (1..=9).filter(|&s| f.should_fail(s, 0.99)).collect();
        assert_eq!(failed, vec![3, 6, 9]);
    }

    #[test]
    fn fail_first_covers_prefix() {
        let f = FaultSpec {
            fail_first: 2,
            ..Default::default()
        };
        assert!(f.should_fail(1, 0.9));
        assert!(f.should_fail(2, 0.9));
        assert!(!f.should_fail(3, 0.9));
    }

    #[test]
    fn probability_uses_roll() {
        let f = FaultSpec {
            fail_probability: 0.5,
            ..Default::default()
        };
        assert!(f.should_fail(1, 0.4));
        assert!(!f.should_fail(1, 0.6));
    }

    #[test]
    #[should_panic(expected = "fail_every must be positive")]
    fn every_zero_panics() {
        let _ = FaultSpec::every(0);
    }
}
