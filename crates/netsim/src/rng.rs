//! Small deterministic RNG used for per-call jitter.
//!
//! We hash `(seed, provider name, call sequence)` through SplitMix64 so a
//! call's jitter depends only on its identity, never on thread interleaving.
//! This keeps fan-out sweeps comparable: configuration A and B see the same
//! per-call latencies, differing only in how calls overlap.

/// A SplitMix64 generator. Cheap, decent quality, and `Copy`.
#[derive(Debug, Clone, Copy)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Creates a generator keyed by a seed plus an arbitrary label and
    /// sequence number — the "identity hash" used for per-call jitter.
    pub fn keyed(seed: u64, label: &str, seq: u64) -> Self {
        let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in label.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        h ^= seq.wrapping_mul(0xA24B_AED4_963E_E407);
        DetRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for simulation jitter.
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keyed_depends_on_all_parts() {
        let a = DetRng::keyed(1, "geo", 0).next_u64();
        let b = DetRng::keyed(2, "geo", 0).next_u64();
        let c = DetRng::keyed(1, "zip", 0).next_u64();
        let d = DetRng::keyed(1, "geo", 1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::new(42);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            let x = r.uniform(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&x), "{x}");
        }
    }

    #[test]
    fn uniform_roughly_uniform() {
        let mut r = DetRng::new(1234);
        let n = 100_000;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            let x = r.next_f64();
            buckets[(x * 10.0) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let frac = b as f64 / n as f64;
            assert!(
                (0.08..0.12).contains(&frac),
                "bucket {i} has fraction {frac}"
            );
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
