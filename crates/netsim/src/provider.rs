//! A simulated web-service provider: capacity, latency, faults, metrics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Mutex, RwLock};

use crate::{CallStats, DetRng, FaultSpec, LatencyModel, NetError, NetResult, SimConfig};

/// Per-call options for [`Provider::call_with_opts`].
///
/// The plain [`Provider::call`] uses the default: no deadline, chaos rolls
/// keyed by call sequence number.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallOpts {
    /// Cut the call off once its model latency would exceed this many
    /// model seconds: the caller is charged exactly the deadline and gets
    /// [`NetError::Timeout`]. `None` waits the full latency (hangs
    /// included).
    pub deadline_model_secs: Option<f64>,
    /// Content hash of the request, used to key probabilistic chaos rolls
    /// when the installed [`FaultSpec::keyed_by_args`] is set — making
    /// the failing argument set independent of dispatch interleaving.
    pub args_key: u64,
}

/// Static description of a provider, used to register it on a network.
#[derive(Debug, Clone)]
pub struct ProviderSpec {
    /// Provider name, e.g. `"codebump.com"` — the host part of the paper's
    /// service URIs.
    pub name: String,
    /// Number of concurrent calls served at full speed. Beyond this the
    /// server degrades by processor sharing.
    pub capacity: usize,
    /// Latency model used for operations without a specific override.
    pub default_latency: LatencyModel,
    /// Per-operation latency overrides, keyed by operation name.
    pub op_latency: HashMap<String, LatencyModel>,
    /// Exponent applied to the overload ratio: congestion is
    /// `max(1, in_flight/capacity) ^ congestion_exponent`. `1.0` is pure
    /// processor sharing; values above 1 model queueing/thrashing, which is
    /// what makes very wide fan-outs *lose* (paper §V, Fig. 16/17 corners).
    pub congestion_exponent: f64,
}

impl ProviderSpec {
    /// Creates a spec with a uniform latency model for all operations.
    pub fn new(name: impl Into<String>, capacity: usize, latency: LatencyModel) -> Self {
        assert!(capacity > 0, "provider capacity must be positive");
        ProviderSpec {
            name: name.into(),
            capacity,
            default_latency: latency,
            op_latency: HashMap::new(),
            congestion_exponent: 1.0,
        }
    }

    /// Builder-style: sets a latency override for one operation.
    #[must_use]
    pub fn with_op_latency(mut self, op: impl Into<String>, latency: LatencyModel) -> Self {
        self.op_latency.insert(op.into(), latency);
        self
    }

    /// Builder-style: sets the congestion exponent (must be ≥ 1).
    #[must_use]
    pub fn with_congestion_exponent(mut self, exponent: f64) -> Self {
        assert!(exponent >= 1.0, "congestion exponent must be >= 1");
        self.congestion_exponent = exponent;
        self
    }
}

/// A live provider on a [`crate::Network`].
#[derive(Debug)]
pub struct Provider {
    spec: ProviderSpec,
    in_flight: AtomicUsize,
    seq: AtomicU64,
    fault: RwLock<FaultSpec>,
    metrics: crate::ProviderMetrics,
    trace: RwLock<Option<std::sync::Arc<crate::CallTrace>>>,
    /// The provider's deterministic model clock: cumulative model latency
    /// charged by its calls (successes, faults' set-up costs, and
    /// deadline charges alike). Outage and brownout windows in the
    /// installed [`FaultSpec`] are evaluated against this clock — like
    /// [`crate::CallTrace`] offsets, it never reads wall time, so
    /// identically-seeded runs see identical windows at any time scale.
    model_clock: Mutex<f64>,
}

impl Provider {
    pub(crate) fn new(spec: ProviderSpec) -> Self {
        Provider {
            spec,
            in_flight: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            fault: RwLock::new(FaultSpec::none()),
            metrics: crate::ProviderMetrics::default(),
            trace: RwLock::new(None),
            model_clock: Mutex::new(0.0),
        }
    }

    /// The provider's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The provider's full-speed concurrency capacity.
    pub fn capacity(&self) -> usize {
        self.spec.capacity
    }

    /// The latency model that applies to `op`.
    pub fn latency_model(&self, op: &str) -> &LatencyModel {
        self.spec
            .op_latency
            .get(op)
            .unwrap_or(&self.spec.default_latency)
    }

    /// Installs (or clears) a fault-injection spec.
    pub fn set_fault(&self, fault: FaultSpec) {
        *self.fault.write() = fault;
    }

    /// The currently installed fault-injection spec (a clone). Lets
    /// topology scenarios merge brownout windows into whatever chaos the
    /// test already configured instead of clobbering it.
    pub fn fault(&self) -> FaultSpec {
        self.fault.read().clone()
    }

    /// Starts tracing calls into a fresh buffer of the given capacity,
    /// returning a handle to read it. Replaces any previous trace.
    pub fn start_trace(&self, capacity: usize) -> std::sync::Arc<crate::CallTrace> {
        let trace = std::sync::Arc::new(crate::CallTrace::new(capacity));
        *self.trace.write() = Some(std::sync::Arc::clone(&trace));
        trace
    }

    /// Stops tracing (the returned handle stays readable).
    pub fn stop_trace(&self) {
        *self.trace.write() = None;
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> crate::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Calls currently in flight (for tests and live introspection).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The provider's model clock: cumulative model latency charged so far
    /// (the time base for [`FaultSpec`] outage/brownout windows).
    pub fn model_time(&self) -> f64 {
        *self.model_clock.lock()
    }

    fn advance_model_clock(&self, latency: f64) {
        *self.model_clock.lock() += latency;
    }

    /// Performs one call to operation `op`.
    ///
    /// `serve` produces the response and its payload size in bytes; it runs
    /// *inside* the simulated service so its wall-clock cost should be
    /// negligible — all meaningful time comes from the latency model.
    ///
    /// Returns the response together with [`CallStats`] describing the model
    /// latency the call experienced.
    pub fn call<R>(
        &self,
        config: &SimConfig,
        op: &str,
        request_bytes: usize,
        serve: impl FnOnce() -> (R, usize),
    ) -> NetResult<(R, CallStats)> {
        self.call_with_opts(config, op, request_bytes, CallOpts::default(), serve)
    }

    /// [`Self::call`] with per-call options: a model-time deadline and an
    /// argument-content key for chaos rolls.
    ///
    /// RNG discipline: the pre-existing per-call stream (keyed by provider,
    /// operation and call sequence) draws exactly the same values in
    /// exactly the same order as before the chaos model existed — one
    /// fault roll, then the latency jitter — so a run with an inactive
    /// [`FaultSpec`] and no deadline is bit-identical to the historical
    /// behaviour. Hang rolls and argument-keyed fault rolls come from
    /// *separately keyed* streams.
    pub fn call_with_opts<R>(
        &self,
        config: &SimConfig,
        op: &str,
        request_bytes: usize,
        opts: CallOpts,
        serve: impl FnOnce() -> (R, usize),
    ) -> NetResult<(R, CallStats)> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut rng = DetRng::keyed(config.seed, &format!("{}/{op}", self.spec.name), seq);
        let fault_roll = rng.next_f64();
        let model = self.latency_model(op);
        let spec = self.fault.read().clone();
        let chaos_key = if spec.keyed_by_args {
            opts.args_key
        } else {
            seq
        };

        let fail_roll = if spec.keyed_by_args && spec.fail_probability > 0.0 {
            DetRng::keyed(
                config.seed,
                &format!("{}/{op}/fault", self.spec.name),
                chaos_key,
            )
            .next_f64()
        } else {
            fault_roll
        };
        let down = !spec.down_between.is_empty() && spec.down_at(self.model_time());
        if down || spec.should_fail(seq, fail_roll) {
            self.metrics.record_fault();
            // A failed call still pays its set-up cost before erroring
            // out; the charge advances the model clock, so outage windows
            // eventually pass even when every call during them fails.
            config.sleep_model(model.setup);
            self.advance_model_clock(model.setup);
            return Err(NetError::ServiceFault {
                provider: self.spec.name.clone(),
                operation: op.to_owned(),
                call_seq: seq,
            });
        }

        let in_flight = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let overload = (in_flight as f64 / self.spec.capacity as f64).max(1.0);
        let congestion = overload.powf(self.spec.congestion_exponent);

        let (response, response_bytes) = serve();
        let mut latency = model.latency(request_bytes, response_bytes, congestion, &mut rng);
        if !spec.brownout_between.is_empty() {
            latency *= spec.latency_factor_at(self.model_time());
        }
        if spec.hang_every.is_some() || spec.hang_probability > 0.0 {
            let hang_roll = DetRng::keyed(
                config.seed,
                &format!("{}/{op}/hang", self.spec.name),
                chaos_key,
            )
            .next_f64();
            if spec.should_hang(seq, hang_roll) {
                latency += spec.hang_model_secs;
            }
        }

        if let Some(deadline) = opts.deadline_model_secs {
            if latency > deadline {
                // The caller is charged exactly the deadline, never the
                // (possibly effectively infinite) hang latency.
                config.sleep_model(deadline);
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                self.advance_model_clock(deadline);
                self.metrics.record_timeout();
                return Err(NetError::Timeout {
                    provider: self.spec.name.clone(),
                    operation: op.to_owned(),
                    call_seq: seq,
                });
            }
        }
        config.sleep_model(latency);

        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.advance_model_clock(latency);

        let stats = CallStats {
            model_latency: latency,
            in_flight_at_start: in_flight,
            request_bytes,
            response_bytes,
        };
        self.metrics.record_call(&stats);
        if let Some(trace) = self.trace.read().as_ref() {
            trace.record(seq, op, in_flight, latency);
        }
        Ok((response, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn test_provider(capacity: usize) -> Provider {
        Provider::new(ProviderSpec::new(
            "test.example",
            capacity,
            LatencyModel {
                setup: 0.1,
                per_kib: 0.01,
                server_mean: 0.4,
                jitter_frac: 0.0,
            },
        ))
    }

    #[test]
    fn single_call_latency_matches_model() {
        let p = test_provider(4);
        let cfg = SimConfig::default();
        let ((), stats) = p.call(&cfg, "Op", 512, || ((), 512)).unwrap();
        // 0.1 setup + 1 KiB * 0.01 + 0.4 server at congestion 1
        assert!((stats.model_latency - 0.51).abs() < 1e-9, "{stats:?}");
        assert_eq!(stats.in_flight_at_start, 1);
    }

    #[test]
    fn op_override_is_used() {
        let spec = ProviderSpec::new("p", 1, LatencyModel::fixed(1.0))
            .with_op_latency("Fast", LatencyModel::fixed(0.25));
        let p = Provider::new(spec);
        let cfg = SimConfig::default();
        let (_, slow) = p.call(&cfg, "Slow", 0, || ((), 0)).unwrap();
        let (_, fast) = p.call(&cfg, "Fast", 0, || ((), 0)).unwrap();
        assert!((slow.model_latency - 1.0).abs() < 1e-9);
        assert!((fast.model_latency - 0.25).abs() < 1e-9);
    }

    #[test]
    fn congestion_inflates_concurrent_calls() {
        // With capacity 1 and several truly concurrent calls, at least one
        // call must observe in_flight > 1 and hence a larger latency.
        let p = Arc::new(test_provider(1));
        let cfg = SimConfig::new(0.001, 7); // real (tiny) sleeps to force overlap
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&p);
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                p.call(&cfg, "Op", 0, || ((), 0)).unwrap().1
            }));
        }
        let stats: Vec<CallStats> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let max_in_flight = stats.iter().map(|s| s.in_flight_at_start).max().unwrap();
        assert!(max_in_flight > 1, "calls never overlapped");
        let base = 0.1 + 0.4; // congestion-1 latency
        let worst = stats.iter().map(|s| s.model_latency).fold(0.0, f64::max);
        assert!(worst > base + 1e-9, "no call saw congestion: {stats:?}");
    }

    #[test]
    fn fault_every_second_call() {
        let p = test_provider(2);
        p.set_fault(FaultSpec::every(2));
        let cfg = SimConfig::default();
        assert!(p.call(&cfg, "Op", 0, || ((), 0)).is_ok());
        let err = p.call(&cfg, "Op", 0, || ((), 0)).unwrap_err();
        match err {
            NetError::ServiceFault {
                provider,
                operation,
                call_seq,
            } => {
                assert_eq!(provider, "test.example");
                assert_eq!(operation, "Op");
                assert_eq!(call_seq, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(p.call(&cfg, "Op", 0, || ((), 0)).is_ok());
        let m = p.metrics();
        assert_eq!(m.calls, 2);
        assert_eq!(m.faults, 1);
    }

    #[test]
    fn in_flight_returns_to_zero() {
        let p = test_provider(2);
        let cfg = SimConfig::default();
        for _ in 0..10 {
            p.call(&cfg, "Op", 0, || ((), 0)).unwrap();
        }
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn latencies_are_deterministic_for_same_seed() {
        let make = || {
            let p = Provider::new(ProviderSpec::new(
                "d",
                2,
                LatencyModel {
                    setup: 0.1,
                    per_kib: 0.0,
                    server_mean: 0.5,
                    jitter_frac: 0.3,
                },
            ));
            let cfg = SimConfig::new(0.0, 1234);
            (0..20)
                .map(|_| p.call(&cfg, "Op", 0, || ((), 0)).unwrap().1.model_latency)
                .collect::<Vec<f64>>()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn tracing_records_calls() {
        let p = test_provider(2);
        let cfg = SimConfig::default();
        p.call(&cfg, "Before", 0, || ((), 0)).unwrap();
        let trace = p.start_trace(100);
        p.call(&cfg, "Op", 0, || ((), 0)).unwrap();
        p.call(&cfg, "Op", 0, || ((), 0)).unwrap();
        p.stop_trace();
        p.call(&cfg, "After", 0, || ((), 0)).unwrap();
        let records = trace.records();
        assert_eq!(records.len(), 2, "only calls during tracing recorded");
        assert!(records.iter().all(|r| r.operation == "Op"));
        assert!(records[0].model_latency > 0.0);
    }

    #[test]
    fn hang_without_deadline_inflates_latency() {
        let p = test_provider(4);
        p.set_fault(FaultSpec {
            hang_every: Some(2),
            hang_model_secs: 500.0,
            ..Default::default()
        });
        let cfg = SimConfig::default();
        let (_, fast) = p.call(&cfg, "Op", 0, || ((), 0)).unwrap();
        let (_, hung) = p.call(&cfg, "Op", 0, || ((), 0)).unwrap();
        assert!(fast.model_latency < 1.0, "{fast:?}");
        assert!(hung.model_latency > 500.0, "{hung:?}");
        assert_eq!(p.metrics().timeouts, 0);
    }

    #[test]
    fn deadline_cuts_hang_and_charges_exactly_the_deadline() {
        let p = test_provider(4);
        p.set_fault(FaultSpec {
            hang_every: Some(1),
            hang_model_secs: 500.0,
            ..Default::default()
        });
        let cfg = SimConfig::default();
        let before = p.model_time();
        let opts = CallOpts {
            deadline_model_secs: Some(2.0),
            args_key: 0,
        };
        let err = p
            .call_with_opts(&cfg, "Op", 0, opts, || ((), 0))
            .unwrap_err();
        match err {
            NetError::Timeout {
                provider,
                operation,
                call_seq,
            } => {
                assert_eq!(provider, "test.example");
                assert_eq!(operation, "Op");
                assert_eq!(call_seq, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Charged exactly the deadline on the provider's model clock.
        assert!((p.model_time() - before - 2.0).abs() < 1e-9);
        let m = p.metrics();
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.calls, 0);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn deadline_leaves_fast_calls_untouched() {
        let p = test_provider(4);
        let cfg = SimConfig::default();
        let opts = CallOpts {
            deadline_model_secs: Some(10.0),
            args_key: 0,
        };
        let with = p.call_with_opts(&cfg, "Op", 0, opts, || ((), 0)).unwrap().1;
        // Same seed and stream position as an undeadlined provider's first
        // call: the deadline must not perturb the latency draw.
        let q = test_provider(4);
        let without = q.call(&cfg, "Op", 0, || ((), 0)).unwrap().1;
        assert_eq!(with.model_latency, without.model_latency);
        assert_eq!(p.metrics().timeouts, 0);
    }

    #[test]
    fn outage_window_fails_calls_until_clock_passes() {
        let p = test_provider(4);
        // Each clean call charges ~0.5 model s; the window [1.0, 2.0)
        // covers roughly calls 3..4.
        p.set_fault(FaultSpec {
            down_between: vec![(1.0, 2.0)],
            ..Default::default()
        });
        let cfg = SimConfig::default();
        let mut outcomes = Vec::new();
        for _ in 0..16 {
            outcomes.push(p.call(&cfg, "Op", 0, || ((), 0)).is_ok());
        }
        let faults = outcomes.iter().filter(|ok| !**ok).count();
        assert!(faults > 0, "window never hit: {outcomes:?}");
        // The clock keeps advancing through the outage (set-up charges),
        // so later calls succeed again.
        assert!(
            *outcomes.last().unwrap(),
            "outage never ended: {outcomes:?}"
        );
        assert_eq!(p.metrics().faults as usize, faults);
    }

    #[test]
    fn brownout_multiplies_latency_inside_window() {
        let p = test_provider(4);
        p.set_fault(FaultSpec {
            brownout_between: vec![(0.0, 0.6)],
            brownout_factor: 10.0,
            ..Default::default()
        });
        let cfg = SimConfig::default();
        // First call starts at clock 0 (inside): 0.5 * 10 = 5.0.
        let (_, slow) = p.call(&cfg, "Op", 0, || ((), 0)).unwrap();
        assert!((slow.model_latency - 5.0).abs() < 1e-9, "{slow:?}");
        // Clock is now 5.0, outside the window: normal latency.
        let (_, normal) = p.call(&cfg, "Op", 0, || ((), 0)).unwrap();
        assert!((normal.model_latency - 0.5).abs() < 1e-9, "{normal:?}");
    }

    #[test]
    fn keyed_by_args_ties_failure_to_request_content() {
        let spec = FaultSpec {
            fail_probability: 0.5,
            keyed_by_args: true,
            ..Default::default()
        };
        let cfg = SimConfig::default();
        // The same args_key must fail (or pass) identically no matter how
        // many calls preceded it — run it at different seq positions.
        let verdict_at = |warmup: u64, key: u64| {
            let p = test_provider(4);
            p.set_fault(spec.clone());
            for _ in 0..warmup {
                let opts = CallOpts {
                    deadline_model_secs: None,
                    args_key: 0xFEED,
                };
                let _ = p.call_with_opts(&cfg, "Op", 0, opts, || ((), 0));
            }
            let opts = CallOpts {
                deadline_model_secs: None,
                args_key: key,
            };
            p.call_with_opts(&cfg, "Op", 0, opts, || ((), 0)).is_ok()
        };
        for key in [1u64, 2, 3, 4, 5, 6, 7, 8] {
            assert_eq!(
                verdict_at(0, key),
                verdict_at(3, key),
                "verdict for key {key} depended on call ordering"
            );
        }
    }

    #[test]
    fn inactive_chaos_spec_preserves_historical_latencies() {
        // A FaultSpec with only inert chaos fields must not perturb the
        // per-call RNG stream: latencies match a clean provider's exactly.
        let cfg = SimConfig::new(0.0, 1234);
        let latencies = |spec: Option<FaultSpec>| {
            let p = Provider::new(ProviderSpec::new(
                "d",
                2,
                LatencyModel {
                    setup: 0.1,
                    per_kib: 0.0,
                    server_mean: 0.5,
                    jitter_frac: 0.3,
                },
            ));
            if let Some(spec) = spec {
                p.set_fault(spec);
            }
            (0..20)
                .map(|_| p.call(&cfg, "Op", 0, || ((), 0)).unwrap().1.model_latency)
                .collect::<Vec<f64>>()
        };
        let inert = FaultSpec {
            brownout_between: vec![(0.0, 100.0)],
            brownout_factor: 1.0,
            keyed_by_args: true,
            ..Default::default()
        };
        assert_eq!(latencies(None), latencies(Some(inert)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ProviderSpec::new("bad", 0, LatencyModel::fixed(1.0));
    }

    #[test]
    fn congestion_exponent_superlinear() {
        // Serial calls never overlap, so the exponent alone can't be seen
        // from call(); verify the spec math directly instead.
        let spec =
            ProviderSpec::new("p", 2, LatencyModel::fixed(1.0)).with_congestion_exponent(1.5);
        assert_eq!(spec.congestion_exponent, 1.5);
        let overload: f64 = 4.0; // 8 in flight at capacity 2
        assert!((overload.powf(spec.congestion_exponent) - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "congestion exponent must be >= 1")]
    fn sublinear_exponent_rejected() {
        let _ = ProviderSpec::new("p", 2, LatencyModel::fixed(1.0)).with_congestion_exponent(0.5);
    }
}
