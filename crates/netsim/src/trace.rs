//! Per-call latency traces: the time-series view of provider saturation.
//!
//! When enabled on a provider, every successful call appends a
//! [`TraceRecord`] — its *model-time* offset since the trace was enabled,
//! how many calls were in flight, and the model latency it experienced. The
//! congestion story behind Fig. 16/17 (latency climbing with in-flight
//! count, then flattening at the saturation plateau) becomes directly
//! plottable; `wsmed-bench`'s `congestion_trace` binary exports CSV.
//!
//! Offsets advance a per-trace *model clock* — the cumulative model
//! latency of the calls recorded so far — rather than reading a wall
//! clock, so traces of the same seeded run are identical across machines
//! and time scales (including `--scale 0` runs, where wall offsets would
//! all collapse to ~0).

use parking_lot::Mutex;

/// One traced call.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Call sequence number at the provider (1-based).
    pub seq: u64,
    /// Operation name.
    pub operation: String,
    /// Model seconds since the trace was enabled when the call started:
    /// the cumulative model latency of the previously recorded calls.
    pub model_offset_secs: f64,
    /// Calls in flight at the provider when this call started (incl. it).
    pub in_flight: usize,
    /// Model latency the call experienced.
    pub model_latency: f64,
}

/// A bounded in-memory trace buffer.
#[derive(Debug)]
pub struct CallTrace {
    inner: Mutex<TraceInner>,
    capacity: usize,
}

#[derive(Debug)]
struct TraceInner {
    /// Cumulative model latency of the recorded calls — the trace's clock.
    model_clock: f64,
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl CallTrace {
    /// Creates a trace buffer holding up to `capacity` records; further
    /// records are counted but dropped.
    pub fn new(capacity: usize) -> Self {
        CallTrace {
            inner: Mutex::new(TraceInner {
                model_clock: 0.0,
                records: Vec::new(),
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Appends a record (called by the provider).
    pub(crate) fn record(&self, seq: u64, operation: &str, in_flight: usize, latency: f64) {
        let mut inner = self.inner.lock();
        if inner.records.len() >= self.capacity {
            inner.dropped += 1;
            return;
        }
        let model_offset_secs = inner.model_clock;
        inner.model_clock += latency;
        inner.records.push(TraceRecord {
            seq,
            operation: operation.to_owned(),
            model_offset_secs,
            in_flight,
            model_latency: latency,
        });
    }

    /// All records so far, in arrival order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.lock().records.clone()
    }

    /// Records dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Renders the trace as CSV
    /// (`seq,operation,model_offset_secs,in_flight,model_latency`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("seq,operation,model_offset_secs,in_flight,model_latency\n");
        for r in self.inner.lock().records.iter() {
            out.push_str(&format!(
                "{},{},{:.6},{},{:.4}\n",
                r.seq, r.operation, r.model_offset_secs, r.in_flight, r.model_latency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_model_offsets() {
        let trace = CallTrace::new(10);
        trace.record(1, "Op", 1, 0.5);
        trace.record(2, "Op", 2, 0.9);
        trace.record(3, "Op", 1, 0.1);
        let records = trace.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 1);
        // Offsets are the deterministic model clock, not wall time: each
        // call starts where the cumulative latency of its predecessors ends.
        assert_eq!(records[0].model_offset_secs, 0.0);
        assert_eq!(records[1].model_offset_secs, 0.5);
        assert_eq!(records[2].model_offset_secs, 1.4);
        assert_eq!(records[1].in_flight, 2);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let trace = CallTrace::new(3);
        for i in 0..5 {
            trace.record(i, "Op", 1, 0.1);
        }
        assert_eq!(trace.records().len(), 3);
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let trace = CallTrace::new(4);
        trace.record(1, "GetPlacesInside", 3, 1.25);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "seq,operation,model_offset_secs,in_flight,model_latency"
        );
        assert_eq!(lines[1], "1,GetPlacesInside,0.000000,3,1.2500");
    }
}
