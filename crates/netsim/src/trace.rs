//! Per-call latency traces: the time-series view of provider saturation.
//!
//! When enabled on a provider, every successful call appends a
//! [`TraceRecord`] — when it started (relative to trace enablement), how
//! many calls were in flight, and the model latency it experienced. The
//! congestion story behind Fig. 16/17 (latency climbing with in-flight
//! count, then flattening at the saturation plateau) becomes directly
//! plottable; `wsmed-bench`'s `congestion_trace` binary exports CSV.

use std::time::Instant;

use parking_lot::Mutex;

/// One traced call.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Call sequence number at the provider (1-based).
    pub seq: u64,
    /// Operation name.
    pub operation: String,
    /// Wall seconds since the trace was enabled when the call started.
    pub offset_secs: f64,
    /// Calls in flight at the provider when this call started (incl. it).
    pub in_flight: usize,
    /// Model latency the call experienced.
    pub model_latency: f64,
}

/// A bounded in-memory trace buffer.
#[derive(Debug)]
pub struct CallTrace {
    inner: Mutex<TraceInner>,
    capacity: usize,
}

#[derive(Debug)]
struct TraceInner {
    started: Instant,
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl CallTrace {
    /// Creates a trace buffer holding up to `capacity` records; further
    /// records are counted but dropped.
    pub fn new(capacity: usize) -> Self {
        CallTrace {
            inner: Mutex::new(TraceInner {
                started: Instant::now(),
                records: Vec::new(),
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Appends a record (called by the provider).
    pub(crate) fn record(&self, seq: u64, operation: &str, in_flight: usize, latency: f64) {
        let mut inner = self.inner.lock();
        if inner.records.len() >= self.capacity {
            inner.dropped += 1;
            return;
        }
        let offset_secs = inner.started.elapsed().as_secs_f64();
        inner.records.push(TraceRecord {
            seq,
            operation: operation.to_owned(),
            offset_secs,
            in_flight,
            model_latency: latency,
        });
    }

    /// All records so far, in arrival order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.lock().records.clone()
    }

    /// Records dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Renders the trace as CSV (`seq,operation,offset_secs,in_flight,latency`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("seq,operation,offset_secs,in_flight,model_latency\n");
        for r in self.inner.lock().records.iter() {
            out.push_str(&format!(
                "{},{},{:.6},{},{:.4}\n",
                r.seq, r.operation, r.offset_secs, r.in_flight, r.model_latency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_offsets() {
        let trace = CallTrace::new(10);
        trace.record(1, "Op", 1, 0.5);
        std::thread::sleep(std::time::Duration::from_millis(5));
        trace.record(2, "Op", 2, 0.9);
        let records = trace.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert!(records[1].offset_secs > records[0].offset_secs);
        assert_eq!(records[1].in_flight, 2);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let trace = CallTrace::new(3);
        for i in 0..5 {
            trace.record(i, "Op", 1, 0.1);
        }
        assert_eq!(trace.records().len(), 3);
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let trace = CallTrace::new(4);
        trace.record(1, "GetPlacesInside", 3, 1.25);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("seq,"));
        assert!(lines[1].starts_with("1,GetPlacesInside,"));
        assert!(lines[1].ends_with("3,1.2500"));
    }
}
