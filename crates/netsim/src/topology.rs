//! Replicated provider topology: replica groups, scripted membership
//! scenarios, and load-triggered autoscaling.
//!
//! The paper's §V argument — an interior optimum fanout exists because
//! server capacity is finite — assumes a *static* provider. This module
//! makes the provider side elastic so the adaptive controller can be shown
//! to track a **moving** optimum: a [`ReplicaGroup`] fronts N real
//! [`Provider`]s (each with its own capacity, latency model, and
//! [`FaultSpec`]), and a [`TopologyScenario`] scripts membership changes
//! against **model time** — replica leave/rejoin at scheduled instants,
//! rolling brownouts sweeping across replicas, and standby capacity
//! activated by sustained in-flight pressure ([`AutoscalePolicy`]).
//!
//! Design contract:
//!
//! * **Replica 0 is the original provider.** [`crate::Network::replicate`]
//!   wraps the already-registered provider as the first replica, so a
//!   caller that never consults the group (no router installed) keeps the
//!   exact historical single-provider behaviour, bit for bit.
//! * **Deterministic.** Scenario events fire when the caller-supplied
//!   model clock passes their scheduled instant ([`ReplicaGroup::poll`]);
//!   nothing here reads wall time or draws randomness, so same-seed runs
//!   replay identical membership histories at any time scale.
//! * **Graceful drain.** A departed replica stays registered on the
//!   network and finishes its in-flight calls; `Leave` only removes it
//!   from the routable set. `Rejoin` restores it with its metrics and
//!   model clock intact — exactly the "replica returns" case the
//!   moving-optimum experiment needs.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::{FaultSpec, Provider};

/// One replica's routable state inside a [`ReplicaGroup`].
#[derive(Debug)]
struct Slot {
    provider: Arc<Provider>,
    /// Routable right now. Inactive replicas drain: in-flight calls
    /// complete, new routed calls go elsewhere.
    active: bool,
    /// Held in reserve for autoscaling: inactive until sustained pressure
    /// activates it (never re-activated by a scenario `Rejoin` race).
    standby: bool,
}

/// A point-in-time view of one replica, for routers, shells, and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaStatus {
    /// The replica's provider name (unique on the network).
    pub replica: String,
    /// Whether the replica is currently routable.
    pub active: bool,
    /// Whether the replica is a standby held for autoscaling.
    pub standby: bool,
    /// The replica's full-speed concurrency capacity.
    pub capacity: usize,
    /// Calls in flight at the replica right now.
    pub in_flight: usize,
}

/// A membership transition observed by [`ReplicaGroup::poll`],
/// [`ReplicaGroup::note_pressure`], or a direct leave/rejoin call. Routers
/// turn these into trace events.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipChange {
    /// The logical group name.
    pub group: String,
    /// The replica that changed state.
    pub replica: String,
    /// `true` when the replica became routable, `false` when it left.
    pub joined: bool,
}

/// One scripted topology action.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyAction {
    /// Remove the replica from the routable set (graceful drain).
    Leave {
        /// Replica provider name.
        replica: String,
    },
    /// Restore a departed (or standby) replica to the routable set.
    Rejoin {
        /// Replica provider name.
        replica: String,
    },
    /// Slow the replica down: merge a brownout window of the given length
    /// and latency factor into its installed [`FaultSpec`], starting at
    /// the replica's model clock when the event fires.
    Brownout {
        /// Replica provider name.
        replica: String,
        /// Window length on the replica's model clock, model seconds.
        for_model_secs: f64,
        /// Latency multiplier inside the window (≥ 1 slows it down).
        factor: f64,
    },
}

/// One scenario event: an action scheduled at a model-time instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyEvent {
    /// Model time (on the clock passed to [`ReplicaGroup::poll`]) at or
    /// after which the action fires.
    pub at_model_secs: f64,
    /// What happens.
    pub action: TopologyAction,
}

/// A deterministic membership script for one [`ReplicaGroup`]. Events are
/// applied in schedule order as the model clock passes them; the script
/// never reads wall time, so same-seed runs replay identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyScenario {
    /// Scenario name (surfaced by the shell's `topology scenario`).
    pub name: String,
    /// The scheduled events. Sorted by [`TopologyEvent::at_model_secs`]
    /// on install; ties fire in listed order.
    pub events: Vec<TopologyEvent>,
}

impl TopologyScenario {
    /// An empty scenario with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyScenario {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Builder-style: schedules `action` at model time `at`.
    #[must_use]
    pub fn at(mut self, at: f64, action: TopologyAction) -> Self {
        self.events.push(TopologyEvent {
            at_model_secs: at,
            action,
        });
        self
    }

    /// The moving-optimum flap: `replica` leaves at `leave_at` and rejoins
    /// at `rejoin_at` (the "replica returns at t₂" script).
    pub fn flap(replica: &str, leave_at: f64, rejoin_at: f64) -> Self {
        TopologyScenario::new(format!("flap({replica})"))
            .at(
                leave_at,
                TopologyAction::Leave {
                    replica: replica.to_owned(),
                },
            )
            .at(
                rejoin_at,
                TopologyAction::Rejoin {
                    replica: replica.to_owned(),
                },
            )
    }

    /// A rolling brownout: starting at `start`, each replica in turn is
    /// browned out for `dur` model seconds at the given latency factor,
    /// staggered by `stagger` so the slowdown sweeps across the group.
    pub fn rolling_brownout(
        replicas: &[String],
        start: f64,
        stagger: f64,
        dur: f64,
        factor: f64,
    ) -> Self {
        let mut s = TopologyScenario::new("rolling_brownout");
        for (i, replica) in replicas.iter().enumerate() {
            s = s.at(
                start + stagger * i as f64,
                TopologyAction::Brownout {
                    replica: replica.clone(),
                    for_model_secs: dur,
                    factor,
                },
            );
        }
        s
    }
}

#[derive(Debug)]
struct ScenarioState {
    scenario: TopologyScenario,
    next: usize,
}

/// Activates standby replicas under sustained in-flight pressure. The
/// router reports one pressure observation per routing decision
/// ([`ReplicaGroup::note_pressure`]); after `sustain` *consecutive*
/// saturated observations one standby replica is brought online and the
/// streak resets. An unsaturated observation also resets the streak, so
/// transient spikes do not scale the group out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalePolicy {
    /// Consecutive saturated routing decisions required per activation.
    pub sustain: u64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy { sustain: 16 }
    }
}

#[derive(Debug)]
struct AutoscaleState {
    policy: AutoscalePolicy,
    streak: u64,
}

/// A logical provider name fronting N replica [`Provider`]s. Created with
/// [`crate::Network::replicate`]; consumed by the client-side router.
#[derive(Debug)]
pub struct ReplicaGroup {
    name: String,
    slots: RwLock<Vec<Slot>>,
    scenario: Mutex<Option<ScenarioState>>,
    autoscale: Mutex<Option<AutoscaleState>>,
}

impl ReplicaGroup {
    pub(crate) fn new(name: &str, replicas: Vec<Arc<Provider>>) -> Self {
        ReplicaGroup {
            name: name.to_owned(),
            slots: RwLock::new(
                replicas
                    .into_iter()
                    .map(|provider| Slot {
                        provider,
                        active: true,
                        standby: false,
                    })
                    .collect(),
            ),
            scenario: Mutex::new(None),
            autoscale: Mutex::new(None),
        }
    }

    /// The logical provider name (equals replica 0's provider name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total replicas, active or not.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True when the group has no replicas (never the case for groups
    /// built by [`crate::Network::replicate`]).
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }

    /// Currently routable replicas, in slot order. Empty when every
    /// replica has left — routers fall back to replica 0 then.
    pub fn active(&self) -> Vec<Arc<Provider>> {
        self.slots
            .read()
            .iter()
            .filter(|s| s.active)
            .map(|s| Arc::clone(&s.provider))
            .collect()
    }

    /// The primary (replica 0) — the provider the group was built around.
    pub fn primary(&self) -> Arc<Provider> {
        Arc::clone(&self.slots.read()[0].provider)
    }

    /// Looks up any replica (active or not) by provider name.
    pub fn replica(&self, name: &str) -> Option<Arc<Provider>> {
        self.slots
            .read()
            .iter()
            .find(|s| s.provider.name() == name)
            .map(|s| Arc::clone(&s.provider))
    }

    /// A point-in-time view of every replica, in slot order.
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.slots
            .read()
            .iter()
            .map(|s| ReplicaStatus {
                replica: s.provider.name().to_owned(),
                active: s.active,
                standby: s.standby,
                capacity: s.provider.capacity(),
                in_flight: s.provider.in_flight(),
            })
            .collect()
    }

    /// Sum of active replicas' capacities — the group-level effective
    /// capacity the cost-based planner should see.
    pub fn effective_capacity(&self) -> usize {
        self.slots
            .read()
            .iter()
            .filter(|s| s.active)
            .map(|s| s.provider.capacity())
            .sum()
    }

    fn transition(&self, replica: &str, active: bool, standby: bool) -> Option<MembershipChange> {
        let mut slots = self.slots.write();
        let slot = slots.iter_mut().find(|s| s.provider.name() == replica)?;
        if slot.active == active {
            return None;
        }
        slot.active = active;
        slot.standby = standby;
        Some(MembershipChange {
            group: self.name.clone(),
            replica: replica.to_owned(),
            joined: active,
        })
    }

    /// Removes `replica` from the routable set (graceful drain: in-flight
    /// calls complete, the provider stays registered). Returns the change,
    /// or `None` when the replica is unknown or already inactive.
    pub fn leave(&self, replica: &str) -> Option<MembershipChange> {
        self.transition(replica, false, false)
    }

    /// Restores a departed or standby `replica` to the routable set.
    /// Returns the change, or `None` when unknown or already active.
    pub fn rejoin(&self, replica: &str) -> Option<MembershipChange> {
        self.transition(replica, true, false)
    }

    /// Marks `replica` as an autoscaling standby: inactive until
    /// [`ReplicaGroup::note_pressure`] activates it. Returns the resulting
    /// leave-change, or `None` when unknown or already inactive.
    pub fn hold_standby(&self, replica: &str) -> Option<MembershipChange> {
        self.transition(replica, false, true)
    }

    /// Installs (replacing any previous) membership script. Events are
    /// sorted by schedule time; the script starts unfired.
    pub fn install_scenario(&self, mut scenario: TopologyScenario) {
        scenario
            .events
            .sort_by(|a, b| a.at_model_secs.total_cmp(&b.at_model_secs));
        *self.scenario.lock() = Some(ScenarioState { scenario, next: 0 });
    }

    /// Name of the installed scenario, if any.
    pub fn scenario_name(&self) -> Option<String> {
        self.scenario
            .lock()
            .as_ref()
            .map(|s| s.scenario.name.clone())
    }

    /// Applies every scenario event scheduled at or before model time
    /// `now`, in schedule order, and returns the membership changes that
    /// resulted (brownouts change latency, not membership). Riding the
    /// call path — routers poll before each selection — keeps scenario
    /// advancement deterministic in model time.
    pub fn poll(&self, now: f64) -> Vec<MembershipChange> {
        let mut due = Vec::new();
        {
            let mut guard = self.scenario.lock();
            if let Some(state) = guard.as_mut() {
                while state.next < state.scenario.events.len()
                    && state.scenario.events[state.next].at_model_secs <= now
                {
                    due.push(state.scenario.events[state.next].action.clone());
                    state.next += 1;
                }
            }
        }
        let mut changes = Vec::new();
        for action in due {
            match action {
                TopologyAction::Leave { replica } => changes.extend(self.leave(&replica)),
                TopologyAction::Rejoin { replica } => changes.extend(self.rejoin(&replica)),
                TopologyAction::Brownout {
                    replica,
                    for_model_secs,
                    factor,
                } => {
                    if let Some(p) = self.replica(&replica) {
                        // The brownout window lives on the replica's own
                        // model clock; merge it into the installed spec so
                        // scripted slowdowns compose with test chaos.
                        let start = p.model_time();
                        let mut spec: FaultSpec = p.fault();
                        spec.brownout_between.push((start, start + for_model_secs));
                        spec.brownout_factor = factor;
                        p.set_fault(spec);
                    }
                }
            }
        }
        changes
    }

    /// Installs (or clears) the autoscale policy. Standby replicas are
    /// marked separately with [`ReplicaGroup::hold_standby`].
    pub fn set_autoscale(&self, policy: Option<AutoscalePolicy>) {
        *self.autoscale.lock() = policy.map(|policy| AutoscaleState { policy, streak: 0 });
    }

    /// One pressure observation from the router: `saturated` means every
    /// active replica was at or over capacity when the routing decision
    /// was taken. After `sustain` consecutive saturated observations the
    /// first standby replica is activated and returned.
    pub fn note_pressure(&self, saturated: bool) -> Option<MembershipChange> {
        let mut guard = self.autoscale.lock();
        let state = guard.as_mut()?;
        if !saturated {
            state.streak = 0;
            return None;
        }
        state.streak += 1;
        if state.streak < state.policy.sustain {
            return None;
        }
        state.streak = 0;
        let standby = {
            let slots = self.slots.read();
            slots
                .iter()
                .find(|s| s.standby && !s.active)
                .map(|s| s.provider.name().to_owned())
        }?;
        drop(guard);
        self.rejoin(&standby)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatencyModel, Network, ProviderSpec, SimConfig};

    fn group_of(n: usize) -> (Arc<Network>, Arc<ReplicaGroup>) {
        let net = Network::new(SimConfig::default());
        net.register(ProviderSpec::new("svc", 2, LatencyModel::fixed(0.5)))
            .unwrap();
        let extras = (1..n)
            .map(|i| ProviderSpec::new(format!("svc#{i}"), 2, LatencyModel::fixed(0.5)))
            .collect();
        let group = net.replicate("svc", extras).unwrap();
        (net, group)
    }

    #[test]
    fn leave_and_rejoin_toggle_routability() {
        let (_net, group) = group_of(3);
        assert_eq!(group.len(), 3);
        assert_eq!(group.effective_capacity(), 6);

        let change = group.leave("svc#1").expect("leave changes membership");
        assert!(!change.joined);
        assert_eq!(change.replica, "svc#1");
        assert_eq!(group.effective_capacity(), 4);
        assert_eq!(group.active().len(), 2);
        // Leaving again is a no-op.
        assert!(group.leave("svc#1").is_none());
        assert!(group.leave("nope").is_none());

        let change = group.rejoin("svc#1").expect("rejoin changes membership");
        assert!(change.joined);
        assert_eq!(group.effective_capacity(), 6);
        assert!(group.rejoin("svc#1").is_none());
    }

    #[test]
    fn departed_replica_still_serves_in_flight_style_calls() {
        // Leave is a drain, not an outage: the provider object still works.
        let (net, group) = group_of(2);
        group.leave("svc#1").unwrap();
        let p = net.provider("svc#1").unwrap();
        let cfg = net.config().clone();
        assert!(p.call(&cfg, "Op", 0, || ((), 0)).is_ok());
        assert_eq!(group.active().len(), 1);
    }

    #[test]
    fn scenario_fires_events_in_model_time_order() {
        let (_net, group) = group_of(2);
        group.install_scenario(TopologyScenario::flap("svc#1", 10.0, 20.0));
        assert_eq!(group.scenario_name().as_deref(), Some("flap(svc#1)"));

        assert!(group.poll(9.9).is_empty());
        let changes = group.poll(10.0);
        assert_eq!(changes.len(), 1);
        assert!(!changes[0].joined);
        assert_eq!(group.active().len(), 1);
        // Events never refire.
        assert!(group.poll(15.0).is_empty());
        // A late poll catches up on everything due, in order.
        let changes = group.poll(50.0);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].joined);
        assert_eq!(group.active().len(), 2);
    }

    #[test]
    fn scenario_replay_is_deterministic() {
        // Same scenario + same poll instants => identical change history.
        let run = || {
            let (_net, group) = group_of(3);
            group.install_scenario(
                TopologyScenario::new("mix")
                    .at(
                        5.0,
                        TopologyAction::Leave {
                            replica: "svc#2".into(),
                        },
                    )
                    .at(
                        1.0,
                        TopologyAction::Leave {
                            replica: "svc#1".into(),
                        },
                    )
                    .at(
                        8.0,
                        TopologyAction::Rejoin {
                            replica: "svc#1".into(),
                        },
                    ),
            );
            let mut history = Vec::new();
            for step in 0..12 {
                for c in group.poll(step as f64) {
                    history.push(format!("{}:{}:{}", step, c.replica, c.joined));
                }
            }
            history
        };
        let first = run();
        assert_eq!(
            first,
            vec!["1:svc#1:false", "5:svc#2:false", "8:svc#1:true"]
        );
        assert_eq!(first, run());
    }

    #[test]
    fn brownout_event_merges_window_into_installed_fault() {
        let (net, group) = group_of(2);
        // Pre-existing chaos must survive the scripted brownout.
        let p = net.provider("svc#1").unwrap();
        p.set_fault(FaultSpec {
            fail_first: 1,
            ..Default::default()
        });
        group.install_scenario(TopologyScenario::rolling_brownout(
            &["svc".into(), "svc#1".into()],
            0.0,
            5.0,
            30.0,
            8.0,
        ));
        let changes = group.poll(6.0);
        assert!(changes.is_empty(), "brownouts are not membership changes");
        let spec = p.fault();
        assert_eq!(spec.fail_first, 1);
        assert_eq!(spec.brownout_factor, 8.0);
        assert_eq!(spec.brownout_between.len(), 1);
        // First call at model clock 0 is inside the window: 0.5 * 8.
        let cfg = net.config().clone();
        let _ = p.call(&cfg, "Op", 0, || ((), 0)); // fail_first consumes call 1
        let (_, stats) = p.call(&cfg, "Op", 0, || ((), 0)).unwrap();
        assert!(stats.model_latency > 3.9, "{stats:?}");
    }

    #[test]
    fn autoscale_activates_standby_after_sustained_pressure() {
        let (_net, group) = group_of(3);
        group.hold_standby("svc#2").unwrap();
        assert_eq!(group.effective_capacity(), 4);
        group.set_autoscale(Some(AutoscalePolicy { sustain: 3 }));

        assert!(group.note_pressure(true).is_none());
        assert!(group.note_pressure(true).is_none());
        // An unsaturated observation resets the streak.
        assert!(group.note_pressure(false).is_none());
        assert!(group.note_pressure(true).is_none());
        assert!(group.note_pressure(true).is_none());
        let change = group.note_pressure(true).expect("third in a row scales");
        assert!(change.joined);
        assert_eq!(change.replica, "svc#2");
        assert_eq!(group.effective_capacity(), 6);
        // No standby left: further pressure is a no-op.
        for _ in 0..10 {
            assert!(group.note_pressure(true).is_none());
        }
    }

    #[test]
    fn status_reports_every_slot() {
        let (_net, group) = group_of(2);
        group.hold_standby("svc#1").unwrap();
        let status = group.status();
        assert_eq!(status.len(), 2);
        assert!(status[0].active && !status[0].standby);
        assert_eq!(status[0].replica, "svc");
        assert!(!status[1].active && status[1].standby);
        assert_eq!(status[1].capacity, 2);
        assert_eq!(status[1].in_flight, 0);
    }
}
