#![deny(missing_docs)]

//! # wsmed-netsim
//!
//! Simulated wide-area network and web-service providers.
//!
//! The ICDE 2009 WSMED evaluation called real public SOAP services over the
//! 2008 internet. Those endpoints no longer exist, so this crate substitutes
//! a calibrated simulation that preserves the two properties the paper's
//! operators actually depend on:
//!
//! 1. **High per-call latency and message set-up cost** (§I): every call pays
//!    a fixed setup cost plus a payload-proportional transfer cost plus
//!    server processing time with seeded jitter.
//! 2. **An interior optimum for the number of parallel calls** (§V): each
//!    provider has a *capacity* — the number of concurrent calls it serves at
//!    full speed. Beyond capacity, server time degrades by processor sharing
//!    (`n/capacity`), so throughput stops improving and eventually regresses.
//!    Together with client-side process-management costs this reproduces the
//!    Fig. 16/17 landscape where a near-balanced bushy tree wins.
//!
//! All latencies are expressed in **model seconds**. A global
//! [`SimConfig::time_scale`] maps model seconds to wall-clock sleeps, so the
//! paper's ~2400-second experiments replay in seconds (or, with scale 0, in
//! pure-functional time for unit tests — latencies are still *computed* and
//! recorded in metrics, just not slept).
//!
//! Determinism: jitter is derived from a per-call hash of
//! `(seed, provider, call sequence number)`, so a given configuration always
//! produces the same model latencies regardless of thread interleaving.

mod fault;
mod latency;
mod metrics;
mod network;
mod provider;
mod rng;
mod topology;
mod trace;

pub use fault::FaultSpec;
pub use latency::LatencyModel;
pub use metrics::{CallStats, MetricsSnapshot, ProviderMetrics};
pub use network::{NetError, NetResult, Network};
pub use provider::{CallOpts, Provider, ProviderSpec};
pub use rng::DetRng;
pub use topology::{
    AutoscalePolicy, MembershipChange, ReplicaGroup, ReplicaStatus, TopologyAction, TopologyEvent,
    TopologyScenario,
};
pub use trace::{CallTrace, TraceRecord};

use std::sync::Arc;
use std::time::Duration;

/// Global simulation parameters shared by every provider on a [`Network`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Wall-clock seconds slept per model second. `0.0` disables sleeping
    /// entirely (latencies are still computed and recorded).
    pub time_scale: f64,
    /// Seed for deterministic per-call jitter.
    pub seed: u64,
    /// Client-side cost model (query-process management overheads).
    pub client: ClientCostModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            time_scale: 0.0,
            seed: 0x5EED,
            client: ClientCostModel::default(),
        }
    }
}

impl SimConfig {
    /// Convenience constructor: given scale and seed, default client costs.
    pub fn new(time_scale: f64, seed: u64) -> Self {
        SimConfig {
            time_scale,
            seed,
            client: ClientCostModel::default(),
        }
    }

    /// Sleeps for `model_seconds` of simulated time (scaled to wall time).
    pub fn sleep_model(&self, model_seconds: f64) {
        debug_assert!(model_seconds >= 0.0, "negative model time {model_seconds}");
        if self.time_scale > 0.0 && model_seconds > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(model_seconds * self.time_scale));
        }
    }
}

/// Client-side overheads of the WSMED query-process runtime, in model
/// seconds. The paper ran on a single-core 3 GHz Pentium 4, where starting
/// query processes and dispatching messages had real costs; these constants
/// model that machine so the optimum-fanout shape does not degenerate into
/// "more processes are always better" on a modern multicore.
#[derive(Debug, Clone)]
pub struct ClientCostModel {
    /// Cost to start one query process (fork + plan installation handshake).
    pub process_startup: f64,
    /// Cost for a parent to dispatch one message (parameter tuple or result).
    pub message_dispatch: f64,
    /// Marginal cost per tuple carried inside a message frame. With
    /// batching, one frame of `n` tuples costs
    /// `message_dispatch + n * tuple_dispatch`, so shipping fewer, larger
    /// frames amortizes the per-frame overhead without making tuples free.
    pub tuple_dispatch: f64,
    /// Cost per KiB to ship a serialized plan function to a child.
    pub plan_ship_per_kib: f64,
}

impl Default for ClientCostModel {
    fn default() -> Self {
        // Calibrated against the paper's §V numbers; see DESIGN.md.
        ClientCostModel {
            process_startup: 0.25,
            message_dispatch: 0.002,
            tuple_dispatch: 0.0002,
            plan_ship_per_kib: 0.02,
        }
    }
}

/// Builds a network with the given config; providers are registered later.
pub fn network(config: SimConfig) -> Arc<Network> {
    Network::new(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_model_zero_scale_is_instant() {
        let cfg = SimConfig::default();
        let t0 = std::time::Instant::now();
        cfg.sleep_model(1_000_000.0);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn sleep_model_scales() {
        let cfg = SimConfig::new(0.001, 1);
        let t0 = std::time::Instant::now();
        cfg.sleep_model(20.0); // 20 model seconds at 1/1000 = 20ms
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(18), "slept only {dt:?}");
    }

    #[test]
    fn default_client_costs_are_positive() {
        let c = ClientCostModel::default();
        assert!(c.process_startup > 0.0);
        assert!(c.message_dispatch > 0.0);
        assert!(c.plan_ship_per_kib > 0.0);
    }
}
