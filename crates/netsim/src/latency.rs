//! The per-call latency model.

use crate::DetRng;

/// Latency parameters of one web-service operation, in model seconds.
///
/// A call's model latency is
///
/// ```text
/// setup + (request_bytes + response_bytes) / 1024 * per_kib
///       + server_mean * jitter * congestion
/// ```
///
/// where `jitter` is uniform in `[1 - jitter_frac, 1 + jitter_frac]` and
/// `congestion = max(1, in_flight / capacity)` is supplied by the provider
/// (processor sharing beyond capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-call message set-up cost (connection, SOAP envelope, HTTP).
    pub setup: f64,
    /// Transfer cost per KiB of request plus response payload.
    pub per_kib: f64,
    /// Mean server processing time at or below capacity.
    pub server_mean: f64,
    /// Uniform jitter fraction applied to the server time, in `[0, 1)`.
    pub jitter_frac: f64,
}

impl LatencyModel {
    /// A model with only a fixed cost — handy in tests.
    pub fn fixed(setup: f64) -> Self {
        LatencyModel {
            setup,
            per_kib: 0.0,
            server_mean: 0.0,
            jitter_frac: 0.0,
        }
    }

    /// Computes the model latency of one call.
    ///
    /// `congestion` must be ≥ 1 (the provider clamps it); `rng` supplies the
    /// deterministic per-call jitter.
    pub fn latency(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        congestion: f64,
        rng: &mut DetRng,
    ) -> f64 {
        debug_assert!(congestion >= 1.0, "congestion {congestion} < 1");
        let transfer = (request_bytes + response_bytes) as f64 / 1024.0 * self.per_kib;
        let jitter = if self.jitter_frac > 0.0 {
            rng.uniform(1.0 - self.jitter_frac, 1.0 + self.jitter_frac)
        } else {
            1.0
        };
        self.setup + transfer + self.server_mean * jitter * congestion
    }

    /// The expected (jitter-free) latency at a given congestion level.
    pub fn expected_latency(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        congestion: f64,
    ) -> f64 {
        let transfer = (request_bytes + response_bytes) as f64 / 1024.0 * self.per_kib;
        self.setup + transfer + self.server_mean * congestion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_model_ignores_everything_else() {
        let m = LatencyModel::fixed(0.5);
        let mut rng = DetRng::new(1);
        assert_eq!(m.latency(10_000, 10_000, 8.0, &mut rng), 0.5);
    }

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let m = LatencyModel {
            setup: 0.0,
            per_kib: 0.1,
            server_mean: 0.0,
            jitter_frac: 0.0,
        };
        let mut rng = DetRng::new(1);
        let l1 = m.latency(512, 512, 1.0, &mut rng); // 1 KiB total
        let l2 = m.latency(1024, 1024, 1.0, &mut rng); // 2 KiB total
        assert!((l1 - 0.1).abs() < 1e-12);
        assert!((l2 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn congestion_multiplies_server_time_only() {
        let m = LatencyModel {
            setup: 0.2,
            per_kib: 0.0,
            server_mean: 0.5,
            jitter_frac: 0.0,
        };
        let mut rng = DetRng::new(1);
        let base = m.latency(0, 0, 1.0, &mut rng);
        let loaded = m.latency(0, 0, 3.0, &mut rng);
        assert!((base - 0.7).abs() < 1e-12);
        assert!((loaded - (0.2 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn jitter_stays_in_band() {
        let m = LatencyModel {
            setup: 0.0,
            per_kib: 0.0,
            server_mean: 1.0,
            jitter_frac: 0.2,
        };
        let mut rng = DetRng::new(99);
        for _ in 0..10_000 {
            let l = m.latency(0, 0, 1.0, &mut rng);
            assert!((0.8..1.2).contains(&l), "latency {l} outside jitter band");
        }
    }

    #[test]
    fn expected_latency_matches_zero_jitter() {
        let m = LatencyModel {
            setup: 0.1,
            per_kib: 0.05,
            server_mean: 0.4,
            jitter_frac: 0.0,
        };
        let mut rng = DetRng::new(3);
        let got = m.latency(2048, 0, 2.0, &mut rng);
        let want = m.expected_latency(2048, 0, 2.0);
        assert!((got - want).abs() < 1e-12);
    }
}
