//! Lock-free call metrics, recorded per provider and aggregated per network.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Statistics about one completed call, returned alongside its response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallStats {
    /// Model latency this call experienced, in model seconds.
    pub model_latency: f64,
    /// Number of calls in flight at this provider when the call started
    /// (including this one).
    pub in_flight_at_start: usize,
    /// Request payload size in bytes.
    pub request_bytes: usize,
    /// Response payload size in bytes.
    pub response_bytes: usize,
}

/// Accumulated metrics for one provider. All counters are monotonic.
#[derive(Debug, Default)]
pub struct ProviderMetrics {
    calls: AtomicU64,
    faults: AtomicU64,
    timeouts: AtomicU64,
    request_bytes: AtomicU64,
    response_bytes: AtomicU64,
    /// Sum of model latencies in microseconds (fixed-point to stay atomic).
    latency_micros: AtomicU64,
    max_in_flight: AtomicUsize,
}

impl ProviderMetrics {
    pub(crate) fn record_call(&self, stats: &CallStats) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.request_bytes
            .fetch_add(stats.request_bytes as u64, Ordering::Relaxed);
        self.response_bytes
            .fetch_add(stats.response_bytes as u64, Ordering::Relaxed);
        self.latency_micros
            .fetch_add((stats.model_latency * 1e6) as u64, Ordering::Relaxed);
        self.max_in_flight
            .fetch_max(stats.in_flight_at_start, Ordering::Relaxed);
    }

    pub(crate) fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            calls: self.calls.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
            total_model_latency: self.latency_micros.load(Ordering::Relaxed) as f64 / 1e6,
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data snapshot of [`ProviderMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Successful calls completed.
    pub calls: u64,
    /// Calls that failed due to injected faults.
    pub faults: u64,
    /// Calls cut off by a caller-supplied deadline (hangs included): the
    /// caller was charged the deadline and received
    /// [`crate::NetError::Timeout`].
    pub timeouts: u64,
    /// Total request payload bytes.
    pub request_bytes: u64,
    /// Total response payload bytes.
    pub response_bytes: u64,
    /// Sum of model latencies over all successful calls, in model seconds.
    pub total_model_latency: f64,
    /// Highest concurrent in-flight count observed.
    pub max_in_flight: usize,
}

impl MetricsSnapshot {
    /// Mean model latency per successful call, or 0 if none completed.
    pub fn mean_latency(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_model_latency / self.calls as f64
        }
    }

    /// Combines two snapshots (used to aggregate across providers).
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            calls: self.calls + other.calls,
            faults: self.faults + other.faults,
            timeouts: self.timeouts + other.timeouts,
            request_bytes: self.request_bytes + other.request_bytes,
            response_bytes: self.response_bytes + other.response_bytes,
            total_model_latency: self.total_model_latency + other.total_model_latency,
            max_in_flight: self.max_in_flight.max(other.max_in_flight),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(latency: f64, in_flight: usize) -> CallStats {
        CallStats {
            model_latency: latency,
            in_flight_at_start: in_flight,
            request_bytes: 100,
            response_bytes: 400,
        }
    }

    #[test]
    fn record_and_snapshot() {
        let m = ProviderMetrics::default();
        m.record_call(&stats(0.5, 2));
        m.record_call(&stats(1.5, 5));
        m.record_fault();
        let s = m.snapshot();
        assert_eq!(s.calls, 2);
        assert_eq!(s.faults, 1);
        assert_eq!(s.request_bytes, 200);
        assert_eq!(s.response_bytes, 800);
        assert_eq!(s.max_in_flight, 5);
        assert!((s.total_model_latency - 2.0).abs() < 1e-3);
        assert!((s.mean_latency() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn mean_latency_empty_is_zero() {
        assert_eq!(MetricsSnapshot::default().mean_latency(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_in_flight() {
        let a = MetricsSnapshot {
            calls: 1,
            faults: 0,
            timeouts: 1,
            request_bytes: 10,
            response_bytes: 20,
            total_model_latency: 0.5,
            max_in_flight: 3,
        };
        let b = MetricsSnapshot {
            calls: 2,
            faults: 1,
            timeouts: 2,
            request_bytes: 5,
            response_bytes: 5,
            total_model_latency: 1.0,
            max_in_flight: 7,
        };
        let c = a.merge(&b);
        assert_eq!(c.calls, 3);
        assert_eq!(c.faults, 1);
        assert_eq!(c.timeouts, 3);
        assert_eq!(c.request_bytes, 15);
        assert_eq!(c.max_in_flight, 7);
        assert!((c.total_model_latency - 1.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let m = Arc::new(ProviderMetrics::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record_call(&stats(0.001, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().calls, 8000);
    }
}
