//! The simulated network: a registry of providers plus global config.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{MetricsSnapshot, Provider, ProviderSpec, ReplicaGroup, SimConfig};

/// Result alias for network operations.
pub type NetResult<T> = Result<T, NetError>;

/// Errors surfaced by the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No provider registered under the given name.
    UnknownProvider(String),
    /// A provider (or replica group) with this name already exists.
    /// Replica join/leave made re-registration a real path, so a silent
    /// overwrite would orphan live `Arc<Provider>` handles mid-drain.
    DuplicateProvider(String),
    /// The provider knows no such operation (raised by the services layer).
    UnknownOperation {
        /// Provider that rejected the call.
        provider: String,
        /// The unknown operation name.
        operation: String,
    },
    /// An injected fault made this call fail.
    ServiceFault {
        /// Provider that failed.
        provider: String,
        /// Operation being invoked.
        operation: String,
        /// 1-based call sequence number at the provider.
        call_seq: u64,
    },
    /// The request payload was malformed (services layer).
    BadRequest {
        /// Provider reporting the problem.
        provider: String,
        /// Description of what was wrong.
        message: String,
    },
    /// The call's model latency exceeded the caller's deadline (a hang or
    /// a slow call under a per-call deadline). The caller was charged
    /// exactly the deadline in model time.
    Timeout {
        /// Provider whose call timed out.
        provider: String,
        /// Operation being invoked.
        operation: String,
        /// 1-based call sequence number at the provider.
        call_seq: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownProvider(name) => write!(f, "unknown provider {name:?}"),
            NetError::DuplicateProvider(name) => {
                write!(f, "provider {name:?} is already registered")
            }
            NetError::UnknownOperation {
                provider,
                operation,
            } => {
                write!(f, "provider {provider:?} has no operation {operation:?}")
            }
            NetError::ServiceFault {
                provider,
                operation,
                call_seq,
            } => write!(
                f,
                "service fault at {provider:?}/{operation:?} (call #{call_seq})"
            ),
            NetError::BadRequest { provider, message } => {
                write!(f, "bad request to {provider:?}: {message}")
            }
            NetError::Timeout {
                provider,
                operation,
                call_seq,
            } => write!(
                f,
                "deadline exceeded at {provider:?}/{operation:?} (call #{call_seq})"
            ),
        }
    }
}

impl std::error::Error for NetError {}

/// The simulated network. Cheap to share: wrap in [`Arc`] and clone handles.
#[derive(Debug)]
pub struct Network {
    config: SimConfig,
    providers: RwLock<HashMap<String, Arc<Provider>>>,
    groups: RwLock<HashMap<String, Arc<ReplicaGroup>>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(config: SimConfig) -> Arc<Self> {
        Arc::new(Network {
            config,
            providers: RwLock::new(HashMap::new()),
            groups: RwLock::new(HashMap::new()),
        })
    }

    /// The simulation config shared by all providers.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Registers a provider. Names are unique: re-registering an existing
    /// name returns [`NetError::DuplicateProvider`] instead of silently
    /// overwriting the live provider (which would orphan in-flight calls
    /// and split the metrics/model clocks). Use [`Network::replicate`] to
    /// scale a logical provider out instead.
    pub fn register(&self, spec: ProviderSpec) -> NetResult<Arc<Provider>> {
        let mut providers = self.providers.write();
        if providers.contains_key(&spec.name) {
            return Err(NetError::DuplicateProvider(spec.name.clone()));
        }
        let provider = Arc::new(Provider::new(spec));
        providers.insert(provider.name().to_owned(), Arc::clone(&provider));
        Ok(provider)
    }

    /// Turns the registered provider `name` into a [`ReplicaGroup`]: the
    /// existing provider becomes replica 0 (so non-routed callers keep the
    /// exact historical behaviour) and each extra spec is registered as an
    /// additional replica. Extra replica names must be unique on the
    /// network — the `"{group}#{i}"` convention keeps them so.
    pub fn replicate(&self, name: &str, extras: Vec<ProviderSpec>) -> NetResult<Arc<ReplicaGroup>> {
        let primary = self.provider(name)?;
        if self.groups.read().contains_key(name) {
            return Err(NetError::DuplicateProvider(name.to_owned()));
        }
        let mut replicas = vec![primary];
        for spec in extras {
            replicas.push(self.register(spec)?);
        }
        let group = Arc::new(ReplicaGroup::new(name, replicas));
        self.groups
            .write()
            .insert(name.to_owned(), Arc::clone(&group));
        Ok(group)
    }

    /// Looks up the replica group fronting logical provider `name`, if one
    /// was created with [`Network::replicate`].
    pub fn group(&self, name: &str) -> Option<Arc<ReplicaGroup>> {
        self.groups.read().get(name).cloned()
    }

    /// Names of all replica groups, sorted.
    pub fn group_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.groups.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Looks up a provider by name.
    pub fn provider(&self, name: &str) -> NetResult<Arc<Provider>> {
        self.providers
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| NetError::UnknownProvider(name.to_owned()))
    }

    /// Names of all registered providers, sorted.
    pub fn provider_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.providers.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Aggregated metrics across all providers.
    pub fn total_metrics(&self) -> MetricsSnapshot {
        self.providers
            .read()
            .values()
            .map(|p| p.metrics())
            .fold(MetricsSnapshot::default(), |acc, m| acc.merge(&m))
    }

    /// Per-provider metrics, sorted by provider name.
    pub fn metrics_by_provider(&self) -> Vec<(String, MetricsSnapshot)> {
        let mut rows: Vec<(String, MetricsSnapshot)> = self
            .providers
            .read()
            .iter()
            .map(|(name, p)| (name.clone(), p.metrics()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Sleeps for `model_seconds` of simulated client-side work.
    pub fn pay_client_cost(&self, model_seconds: f64) {
        self.config.sleep_model(model_seconds);
    }

    /// Total model time charged across all providers — the sum of their
    /// deterministic per-provider model clocks ([`Provider::model_time`]).
    /// Monotone and independent of wall time, so client-side policies
    /// (e.g. circuit-breaker cooldowns) can measure model-time intervals
    /// even at time scale 0.
    pub fn model_time(&self) -> f64 {
        self.providers.read().values().map(|p| p.model_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;

    #[test]
    fn register_and_lookup() {
        let net = Network::new(SimConfig::default());
        net.register(ProviderSpec::new("a.example", 2, LatencyModel::fixed(0.1)))
            .unwrap();
        net.register(ProviderSpec::new("b.example", 2, LatencyModel::fixed(0.1)))
            .unwrap();
        assert!(net.provider("a.example").is_ok());
        assert_eq!(
            net.provider("missing").unwrap_err(),
            NetError::UnknownProvider("missing".into())
        );
        assert_eq!(net.provider_names(), vec!["a.example", "b.example"]);
    }

    #[test]
    fn reregistering_is_rejected() {
        // Regression: register used to silently overwrite the live
        // provider, orphaning existing Arc handles (their in-flight calls
        // and model clock kept running on the ghost). Now it errors.
        let net = Network::new(SimConfig::default());
        let original = net
            .register(ProviderSpec::new("p", 1, LatencyModel::fixed(1.0)))
            .unwrap();
        let err = net
            .register(ProviderSpec::new("p", 9, LatencyModel::fixed(1.0)))
            .unwrap_err();
        assert_eq!(err, NetError::DuplicateProvider("p".into()));
        // The original registration is untouched.
        assert_eq!(net.provider("p").unwrap().capacity(), 1);
        assert!(Arc::ptr_eq(&original, &net.provider("p").unwrap()));
    }

    #[test]
    fn replicate_builds_group_around_existing_provider() {
        let net = Network::new(SimConfig::default());
        let primary = net
            .register(ProviderSpec::new("svc", 2, LatencyModel::fixed(0.5)))
            .unwrap();
        let group = net
            .replicate(
                "svc",
                vec![ProviderSpec::new("svc#1", 4, LatencyModel::fixed(0.25))],
            )
            .unwrap();
        assert_eq!(group.name(), "svc");
        assert_eq!(group.effective_capacity(), 6);
        let actives = group.active();
        assert!(Arc::ptr_eq(&actives[0], &primary));
        // Extra replicas are first-class network providers (their model
        // clocks count toward Network::model_time).
        assert!(net.provider("svc#1").is_ok());
        assert_eq!(net.group_names(), vec!["svc"]);
        // A second group under the same name is rejected, as is a group
        // whose extra replica collides with a registered provider.
        assert!(net.replicate("svc", Vec::new()).is_err());
        assert_eq!(
            net.replicate("missing", Vec::new()).unwrap_err(),
            NetError::UnknownProvider("missing".into())
        );
    }

    #[test]
    fn total_metrics_aggregates() {
        let net = Network::new(SimConfig::default());
        let a = net
            .register(ProviderSpec::new("a", 2, LatencyModel::fixed(0.5)))
            .unwrap();
        let b = net
            .register(ProviderSpec::new("b", 2, LatencyModel::fixed(0.25)))
            .unwrap();
        let cfg = net.config().clone();
        a.call(&cfg, "X", 10, || ((), 20)).unwrap();
        a.call(&cfg, "X", 10, || ((), 20)).unwrap();
        b.call(&cfg, "Y", 5, || ((), 5)).unwrap();
        let total = net.total_metrics();
        assert_eq!(total.calls, 3);
        assert_eq!(total.request_bytes, 25);
        assert!((total.total_model_latency - 1.25).abs() < 1e-3);
        let per = net.metrics_by_provider();
        assert_eq!(per[0].0, "a");
        assert_eq!(per[0].1.calls, 2);
        assert_eq!(per[1].1.calls, 1);
    }

    #[test]
    fn error_display_is_informative() {
        let e = NetError::ServiceFault {
            provider: "p".into(),
            operation: "Op".into(),
            call_seq: 3,
        };
        let s = e.to_string();
        assert!(s.contains("p") && s.contains("Op") && s.contains('3'));
    }
}
