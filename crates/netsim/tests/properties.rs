//! Property tests for the latency/fault models.

use proptest::prelude::*;
use wsmed_netsim::{DetRng, FaultSpec, LatencyModel};

proptest! {
    #[test]
    fn prop_latency_monotone_in_congestion(
        setup in 0.0f64..1.0,
        per_kib in 0.0f64..0.2,
        server in 0.0f64..2.0,
        bytes in 0usize..100_000,
        c1 in 1.0f64..50.0,
        c2 in 1.0f64..50.0,
    ) {
        let model = LatencyModel { setup, per_kib, server_mean: server, jitter_frac: 0.0 };
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let l_lo = model.expected_latency(bytes, bytes, lo);
        let l_hi = model.expected_latency(bytes, bytes, hi);
        prop_assert!(l_lo <= l_hi + 1e-12, "latency decreased with congestion");
    }

    #[test]
    fn prop_latency_nonnegative_and_bounded_by_jitter(
        server in 0.0f64..5.0,
        jitter in 0.0f64..0.99,
        congestion in 1.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let model = LatencyModel {
            setup: 0.1,
            per_kib: 0.01,
            server_mean: server,
            jitter_frac: jitter,
        };
        let mut rng = DetRng::new(seed);
        let latency = model.latency(100, 100, congestion, &mut rng);
        let floor = 0.1 + 200.0 / 1024.0 * 0.01 + server * (1.0 - jitter) * congestion;
        let ceil = 0.1 + 200.0 / 1024.0 * 0.01 + server * (1.0 + jitter) * congestion;
        prop_assert!(latency >= floor - 1e-9, "{latency} < {floor}");
        prop_assert!(latency <= ceil + 1e-9, "{latency} > {ceil}");
    }

    #[test]
    fn prop_fault_spec_first_n_always_fail(first in 0u64..100, seq in 1u64..200) {
        let spec = FaultSpec { fail_first: first, ..Default::default() };
        prop_assert_eq!(spec.should_fail(seq, 0.5), seq <= first);
    }

    #[test]
    fn prop_fault_probability_extremes(seq in 1u64..1000, roll in 0.0f64..1.0) {
        let never = FaultSpec { fail_probability: 0.0, ..Default::default() };
        prop_assert!(!never.should_fail(seq, roll));
        let always = FaultSpec { fail_probability: 1.0 + 1e-9, ..Default::default() };
        prop_assert!(always.should_fail(seq, roll));
    }

    #[test]
    fn prop_keyed_rng_is_pure(seed in any::<u64>(), label in "[a-z]{1,8}", seq in any::<u64>()) {
        let a = DetRng::keyed(seed, &label, seq).next_u64();
        let b = DetRng::keyed(seed, &label, seq).next_u64();
        prop_assert_eq!(a, b);
    }
}
