//! Extending WSMED with your own data-providing web service.
//!
//! Implements a small "Census" service from scratch — WSDL contract,
//! request handling, latency profile — installs it next to the paper's
//! GeoPlaces service, and runs a dependent-join query across both with
//! adaptive parallelization. This is the path a downstream user takes to
//! mediate over services of their own.
//!
//! ```text
//! cargo run --release --example custom_service
//! ```

use std::sync::Arc;

use wsmed::core::{AdaptiveConfig, Wsmed};
use wsmed::netsim::{LatencyModel, Network, ProviderSpec, SimConfig};
use wsmed::services::{
    calibration, scalar_arg, Dataset, DatasetConfig, GeoPlacesService, ServiceRegistry, SoapService,
};
use wsmed::store::SqlType;
use wsmed::wsdl::{OperationDef, TypeNode, WsdlDocument};
use wsmed::xml::Element;

/// A toy census bureau: population estimates per state.
struct CensusService {
    dataset: Arc<Dataset>,
}

impl CensusService {
    const WSDL_URI: &'static str = "http://census.example/CensusService.wsdl";
    const PROVIDER: &'static str = "census.example";
}

impl SoapService for CensusService {
    fn service_name(&self) -> &str {
        "Census"
    }

    fn wsdl_uri(&self) -> &str {
        Self::WSDL_URI
    }

    fn provider_name(&self) -> &str {
        Self::PROVIDER
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument {
            service_name: "Census".into(),
            target_namespace: "http://census.example".into(),
            operations: vec![OperationDef {
                name: "GetPopulation".into(),
                inputs: vec![("stateAbbr".into(), SqlType::Charstring)],
                output: TypeNode::Record {
                    name: "GetPopulationResponse".into(),
                    fields: vec![TypeNode::Record {
                        name: "GetPopulationResult".into(),
                        fields: vec![TypeNode::Repeated {
                            element: Box::new(TypeNode::Record {
                                name: "Estimate".into(),
                                fields: vec![
                                    TypeNode::Scalar {
                                        name: "StateAbbr".into(),
                                        ty: SqlType::Charstring,
                                    },
                                    TypeNode::Scalar {
                                        name: "Population".into(),
                                        ty: SqlType::Integer,
                                    },
                                ],
                            }),
                        }],
                    }],
                },
                doc: Some("Population estimate for a state".into()),
            }],
        }
    }

    fn invoke(&self, operation: &str, request: &Element) -> Result<Element, String> {
        if operation != "GetPopulation" {
            return Err(format!("unknown operation {operation:?}"));
        }
        let abbr = scalar_arg(request, "stateAbbr")?;
        // A deterministic toy estimate derived from the state's position.
        let row = self
            .dataset
            .states()
            .iter()
            .position(|s| s.abbr == abbr)
            .map(|i| {
                Element::new("Estimate")
                    .with_child(Element::text_leaf("StateAbbr", abbr))
                    .with_child(Element::text_leaf(
                        "Population",
                        ((i as i64 + 1) * 731_000).to_string(),
                    ))
            });
        Ok(Element::new("GetPopulationResponse")
            .with_child(Element::new("GetPopulationResult").with_children(row)))
    }
}

fn main() {
    let network = Network::new(SimConfig::new(0.002, 7));
    let dataset = Arc::new(Dataset::generate(DatasetConfig::small()));

    // Install GeoPlaces (for GetAllStates) and our custom Census service.
    let mut registry = ServiceRegistry::new(Arc::clone(&network));
    registry.install(
        Arc::new(GeoPlacesService::new(Arc::clone(&dataset))),
        calibration::geoplaces_spec(),
    );
    registry.install(
        Arc::new(CensusService { dataset }),
        ProviderSpec::new(
            CensusService::PROVIDER,
            4, // serves four calls at full speed, degrades beyond
            LatencyModel {
                setup: 0.1,
                per_kib: 0.01,
                server_mean: 0.3,
                jitter_frac: 0.1,
            },
        )
        .with_congestion_exponent(1.2),
    );

    let mut wsmed = Wsmed::new(registry);
    wsmed
        .import_wsdl(GeoPlacesService::WSDL_URI)
        .expect("geo wsdl");
    let views = wsmed
        .import_wsdl(CensusService::WSDL_URI)
        .expect("census wsdl");
    println!("imported custom views: {views:?}");

    // A dependent join over both services: every state's population.
    let sql = "select gp.StateAbbr, gp.Population \
               from GetAllStates gs, GetPopulation gp \
               where gs.State = gp.stateAbbr";
    println!("\n{}", wsmed.explain(sql, None).expect("explain"));

    let report = wsmed
        .run_adaptive(sql, &AdaptiveConfig::default())
        .expect("adaptive run");
    println!(
        "{} rows via tree {}:",
        report.row_count(),
        report.tree.describe()
    );
    for row in report.rows.iter().take(6) {
        println!("  {row}");
    }
    assert_eq!(report.row_count(), 51);
}
