//! Quickstart: pose an SQL query over dependent web services and let WSMED
//! parallelize it adaptively.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use wsmed::core::{paper, AdaptiveConfig, Wsmed};
use wsmed::netsim::{Network, SimConfig};
use wsmed::services::{install_paper_services, Dataset, DatasetConfig};

fn main() {
    // 1. A simulated web: four data-providing SOAP services with calibrated
    //    latency and saturation behaviour. time_scale 0.002 replays one
    //    model second in 2 ms of wall time.
    let network = Network::new(SimConfig::new(0.002, 42));
    let dataset = Arc::new(Dataset::generate(DatasetConfig::small()));
    let registry = install_paper_services(Arc::clone(&network), dataset);

    // 2. The mediator: import service contracts (WSDL) to get queryable
    //    views — one OWF per web service operation.
    let mut wsmed = Wsmed::new(registry);
    let views = wsmed.import_all_wsdl().expect("WSDL import");
    println!("imported views: {views:?}\n");

    // 3. Ask where 'USAF Academy' is (the paper's Query2). The naive plan
    //    would call GetPlacesInside once per zip code in the USA —
    //    sequentially. AFF_APPLYP builds a process tree and tunes it while
    //    the query runs.
    let sql = paper::QUERY2_SQL;
    println!("SQL:\n  {sql}\n");
    println!("calculus:\n  {}\n", wsmed.calculus(sql).expect("calculus"));

    let report = wsmed
        .run_adaptive(sql, &AdaptiveConfig::default())
        .expect("adaptive execution");

    println!("rows ({}):", report.row_count());
    for row in &report.rows {
        println!("  {row}");
    }
    println!("\nweb service calls: {}", report.ws_calls);
    println!("process tree:      {}", report.tree.describe());
    println!(
        "wall time:         {:?}  (≈ {:.0} simulated seconds of 2008 internet)",
        report.wall,
        report.model_seconds.unwrap_or(0.0)
    );
}
