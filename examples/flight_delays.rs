//! Query3: a three-level dependent web service chain (beyond the paper's
//! two levels) — which airports have the most delayed departures?
//!
//! ```text
//! cargo run --release --example flight_delays
//! ```

use wsmed::core::{paper, AdaptiveConfig};
use wsmed::services::DatasetConfig;

fn main() {
    let setup = paper::setup(0.002, DatasetConfig::small());
    let w = &setup.wsmed;

    // The chain: states → airports → departures → flight status, filtered
    // to delayed flights and aggregated per airport.
    let sql = "select a.Code, count(*), max(fs.DelayMinutes) \
               From GetAllStates gs, GetAirports a, GetDepartures d, GetFlightStatus fs \
               Where gs.State = a.stateAbbr and a.Code = d.airportCode \
                 and d.FlightNo = fs.flightNo and fs.Status = 'Delayed' \
               group by a.Code having count(*) >= 3 \
               order by a.Code limit 15";
    println!("{}", w.explain(sql, Some(&vec![3, 2, 2])).expect("explain"));

    let report = w
        .run_adaptive(sql, &AdaptiveConfig::default())
        .expect("adaptive execution");
    println!(
        "airports with ≥3 delayed departures ({} shown), via tree {}:",
        report.row_count(),
        report.tree.describe()
    );
    println!("{:<8} {:>8} {:>10}", "airport", "delayed", "max delay");
    for row in &report.rows {
        println!(
            "{:<8} {:>8} {:>9}m",
            row.get(0).render(),
            row.get(1).render(),
            row.get(2).render()
        );
    }
    println!(
        "\n{} web service calls across a three-level process tree; first row \
         after {:?} of {:?} total.",
        report.ws_calls,
        report.first_row_wall.unwrap_or_default(),
        report.wall
    );
}
