//! The paper's Query1 end to end: central plan vs manual process trees vs
//! the adaptive operator, with the compiled plans printed.
//!
//! ```text
//! cargo run --release --example atlanta_places
//! ```

use wsmed::core::{paper, AdaptiveConfig};
use wsmed::services::DatasetConfig;

fn main() {
    let scale = 0.002;
    let setup = paper::setup(scale, DatasetConfig::paper());
    let w = &setup.wsmed;
    let sql = paper::QUERY1_SQL;

    println!("{}", w.explain(sql, Some(&vec![5, 4])).expect("explain"));

    // Central: every web service call in sequence (Fig. 6).
    let t0 = std::time::Instant::now();
    let central = w.run_central(sql).expect("central");
    let central_secs = t0.elapsed().as_secs_f64() / scale;
    println!(
        "central:        {central_secs:>7.1} model-s  {} rows, {} calls",
        central.row_count(),
        central.ws_calls
    );

    // Manual trees (Fig. 16): the flat tree, a small tree, the paper's best.
    for fanouts in [vec![4, 0], vec![2, 2], vec![5, 4]] {
        let t0 = std::time::Instant::now();
        let r = w.run_parallel(sql, &fanouts).expect("parallel");
        let secs = t0.elapsed().as_secs_f64() / scale;
        println!(
            "FF_APPLYP {:>6}: {secs:>7.1} model-s  speedup {:>4.1}  tree {}",
            format!("{fanouts:?}"),
            central_secs / secs,
            r.tree.describe()
        );
    }

    // Adaptive (Fig. 21): starts binary, converges near the manual optimum.
    let t0 = std::time::Instant::now();
    let r = w
        .run_adaptive(sql, &AdaptiveConfig::default())
        .expect("adaptive");
    let secs = t0.elapsed().as_secs_f64() / scale;
    println!(
        "AFF_APPLYP p=2 : {secs:>7.1} model-s  speedup {:>4.1}  tree {} (adds {})",
        central_secs / secs,
        r.tree.describe(),
        r.tree.adds
    );

    // Sanity: every strategy returns the same bag of places.
    assert_eq!(r.row_count(), central.row_count());
    println!("\nfirst rows:");
    for row in central.rows.iter().take(5) {
        println!("  {row}");
    }
}
