//! Production features beyond the paper: retry policy for transient
//! faults, per-run call memoization, dispatch-policy ablation, and the
//! extended SQL surface (comparisons, DISTINCT, ORDER BY, LIMIT).
//!
//! ```text
//! cargo run --release --example robust_mediator
//! ```

use wsmed::core::{paper, DispatchPolicy, RetryPolicy};
use wsmed::netsim::FaultSpec;
use wsmed::services::{DatasetConfig, UsZipService, ZipCodesService};

fn main() {
    let mut setup = paper::setup(0.001, DatasetConfig::small());

    // --- extended SQL ------------------------------------------------------
    let northern = setup
        .wsmed
        .run_central(
            "select distinct gs.State, gs.LatDegrees from GetAllStates gs \
             where gs.LatDegrees >= 44.0 order by gs.LatDegrees desc limit 8",
        )
        .expect("northern states");
    println!("northernmost states (lat ≥ 44°):");
    for row in &northern.rows {
        println!("  {} at {}°", row.get(0).render(), row.get(1).render());
    }

    // --- call memoization ---------------------------------------------------
    // A cartesian join re-calls GetInfoByState('CO') once per state row;
    // the cache collapses 51 calls into 1.
    let cartesian = "select gs.State, gi.GetInfoByStateResult \
                     from GetAllStates gs, GetInfoByState gi where gi.USState='CO'";
    let before = setup
        .network
        .provider(UsZipService::PROVIDER)
        .unwrap()
        .metrics()
        .calls;
    setup.wsmed.enable_call_cache(true);
    setup.wsmed.run_central(cartesian).expect("cartesian query");
    let after = setup
        .network
        .provider(UsZipService::PROVIDER)
        .unwrap()
        .metrics()
        .calls;
    println!(
        "\ncartesian join with call cache: {} real USZip call(s) for 51 rows",
        after - before
    );
    setup.wsmed.enable_call_cache(false);

    // --- retry policy ---------------------------------------------------------
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::every(7));
    println!("\nZipCodes now faults every 7th call.");
    match setup.wsmed.run_parallel(paper::QUERY2_SQL, &vec![3, 2]) {
        Err(e) => println!("  without retries: {e}"),
        Ok(_) => println!("  without retries: survived (lucky fault alignment)"),
    }
    setup.wsmed.set_retry_policy(RetryPolicy::attempts(4));
    let ok = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 2])
        .expect("retries absorb transient faults");
    println!(
        "  with 4 attempts:  {} row(s): {}",
        ok.row_count(),
        ok.rows[0]
    );
    zip.set_fault(FaultSpec::none());

    // --- dispatch ablation ----------------------------------------------------
    println!("\ndispatch policies over Query2 {{3,3}}:");
    for policy in [DispatchPolicy::FirstFinished, DispatchPolicy::RoundRobin] {
        setup.wsmed.set_dispatch_policy(policy);
        let t0 = std::time::Instant::now();
        setup
            .wsmed
            .run_parallel(paper::QUERY2_SQL, &vec![3, 3])
            .expect("query2");
        println!("  {policy:?}: {:?}", t0.elapsed());
    }
}
