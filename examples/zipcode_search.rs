//! The paper's Query2 with per-provider metrics and fault injection: what
//! saturates, what it costs, and what happens when a provider misbehaves.
//!
//! ```text
//! cargo run --release --example zipcode_search
//! ```

use wsmed::core::paper;
use wsmed::netsim::FaultSpec;
use wsmed::services::{DatasetConfig, ZipCodesService};

fn main() {
    let scale = 0.002;
    let setup = paper::setup(scale, DatasetConfig::small());
    let w = &setup.wsmed;
    let sql = paper::QUERY2_SQL;

    // Run with the paper's best manual tree for Query2.
    let report = w.run_parallel(sql, &vec![4, 3]).expect("Query2");
    println!(
        "Query2 answer: {:?}",
        report
            .rows
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!(
        "tree: {}   calls: {}\n",
        report.tree.describe(),
        report.ws_calls
    );

    // Which provider did the work, and how congested did it get?
    println!(
        "{:<22} {:>7} {:>9} {:>12} {:>13}",
        "provider", "calls", "faults", "mean lat (s)", "max in-flight"
    );
    for (name, m) in setup.network.metrics_by_provider() {
        println!(
            "{name:<22} {:>7} {:>9} {:>12.2} {:>13}",
            m.calls,
            m.faults,
            m.mean_latency(),
            m.max_in_flight
        );
    }

    // The bottom-level provider (codebump ZipCodes) is the bottleneck: its
    // max in-flight should sit at the level-2 process count.
    let zip_provider = setup
        .network
        .provider(ZipCodesService::PROVIDER)
        .expect("zipcodes provider");
    assert!(zip_provider.metrics().max_in_flight >= 4);

    // Now make the zip service fail every 40th call and watch the query
    // error out cleanly (the mediator surfaces the fault, the process tree
    // shuts down, and the next query still works).
    println!("\ninjecting a fault: ZipCodes fails every 40th call …");
    zip_provider.set_fault(FaultSpec::every(40));
    match w.run_parallel(sql, &vec![4, 3]) {
        Err(e) => println!("query failed as expected: {e}"),
        Ok(_) => println!("query survived (all faulted calls were off the needed path)"),
    }

    zip_provider.set_fault(FaultSpec::none());
    let retry = w
        .run_parallel(sql, &vec![4, 3])
        .expect("retry after clearing fault");
    println!(
        "after clearing the fault: {} row(s) again",
        retry.row_count()
    );
}
